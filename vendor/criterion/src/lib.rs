//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the API subset the `lhnn-bench` suites use — [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size` / `bench_function` / `bench_with_input`
//! / `finish`), [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — as a plain
//! wall-clock harness: each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints min/mean/max per iteration.
//! There is no statistical analysis, plotting, or saved baselines.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times a single benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` for a warm-up pass plus `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark (criterion's
    /// `sample_size`; the stand-in honours it directly).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark a routine under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, |b| f(b));
        self
    }

    /// Benchmark a routine that also receives `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, |b| f(b, input));
        self
    }

    /// End the group (upstream consumes the group to emit summaries; the
    /// stand-in prints per-benchmark lines eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Entry point: collects and runs benchmarks.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards CLI args (e.g. `--bench`, a name filter);
        // honour a bare name filter, ignore flags.
        let filter =
            std::env::args().skip(1).find(|a| !a.starts_with('-')).filter(|a| !a.is_empty());
        Criterion { default_sample_size: 20, filter }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        let sample_size = self.default_sample_size;
        self.run_one(&id, sample_size, |b| f(b));
        self
    }

    fn run_one(&mut self, id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { samples: Vec::with_capacity(sample_size), sample_size };
        f(&mut bencher);
        if bencher.samples.is_empty() {
            println!("{id:<48} (no samples recorded)");
            return;
        }
        let min = bencher.samples.iter().min().unwrap();
        let max = bencher.samples.iter().max().unwrap();
        let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
        println!(
            "{id:<48} time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Group benchmark functions into a single callable, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion { default_sample_size: 3, filter: None };
        let mut group = c.benchmark_group("demo");
        let mut runs = 0usize;
        group.sample_size(5).bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        // one warm-up + five samples
        assert_eq!(runs, 6);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion { default_sample_size: 2, filter: None };
        let mut group = c.benchmark_group("demo");
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("sq", 7u64), &7u64, |b, &n| {
            b.iter(|| seen = n * n);
        });
        group.finish();
        assert_eq!(seen, 49);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { default_sample_size: 2, filter: Some("other".into()) };
        let mut group = c.benchmark_group("demo");
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 0);
    }
}
