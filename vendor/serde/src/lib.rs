//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never routes them through a serde serialiser (model persistence uses the
//! plain-text `lhnn-model v1` format in `lhnn::serialize`). With no registry
//! access at build time, this crate supplies just enough for those derives
//! to compile: empty marker traits plus the derive macros from the sibling
//! `serde_derive` stand-in. If real serde-based serialisation is ever
//! needed, replace this vendored pair with the upstream crates.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that upstream serde could serialise.
pub trait Serialize {}

/// Marker for types that upstream serde could deserialise.
pub trait Deserialize<'de>: Sized {}
