//! Derive shims for the vendored `serde` stand-in.
//!
//! Each derive emits an empty impl of the corresponding marker trait for
//! the annotated type. Implemented directly on `proc_macro` (no `syn` /
//! `quote` — those are unavailable offline): we scan the item's tokens for
//! the `struct` / `enum` / `union` keyword and take the following
//! identifier as the type name. Generic deriving types would need the
//! parameter list propagated; the workspace has none, so that case is a
//! compile error here rather than silent misbehaviour.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name from a `DeriveInput` token stream.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        let name = name.to_string();
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            assert!(
                                p.as_char() != '<',
                                "vendored serde_derive cannot handle generic type `{name}`"
                            );
                        }
                        return name;
                    }
                    other => panic!("expected type name after `{kw}`, found {other:?}"),
                }
            }
        }
    }
    panic!("vendored serde_derive: no struct/enum/union found in derive input");
}

/// Derive the `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap()
}

/// Derive the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}").parse().unwrap()
}
