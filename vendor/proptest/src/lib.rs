//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` inner
//! attribute, numeric [`Range`](std::ops::Range) strategies, tuple
//! strategies, [`collection::vec`], and the `prop_assert!` /
//! `prop_assert_eq!` assertions. Cases are generated from per-case seeded
//! [`rand::rngs::StdRng`] streams, so failures are deterministic and
//! reproducible; there is no shrinking — the failing inputs are printed via
//! the assertion message instead.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of some type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! numeric_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
numeric_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Range, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

#[doc(hidden)]
pub fn __case_rng(case: u64) -> StdRng {
    // Distinct, deterministic stream per case index.
    StdRng::seed_from_u64(0x5bf0_3635_dee9_31d1u64.wrapping_mul(case.wrapping_add(1)))
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..)` body
/// runs for `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::__case_rng(__case as u64);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Skip the current case when its sampled inputs don't satisfy a
/// precondition. The [`proptest!`] runner inlines each case body in a
/// loop, so rejection is simply `continue`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The usual glob import: strategies, config, and the macros.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 2usize..9, f in -1.0f32..1.0) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_hold(v in collection::vec((0u8..4, 0.0f32..1.0), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            for (b, f) in v {
                prop_assert!(b < 4);
                prop_assert!((0.0..1.0).contains(&f));
            }
        }

        #[test]
        fn fixed_size_vec(v in collection::vec(0i32..5, 4)) {
            prop_assert_eq!(v.len(), 4);
        }
    }

    proptest! {
        #[test]
        fn default_config_arm_works(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }
}
