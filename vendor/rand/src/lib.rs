//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this vendored crate
//! re-implements exactly the `rand` 0.8 API subset the workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64, so streams are deterministic,
//! portable and of good statistical quality — but this crate makes no
//! promise of bit-compatibility with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from its standard distribution (uniform in `[0, 1)`
    /// for floats, uniform over all values for integers, fair coin for bool).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// Panics if the range is empty, matching upstream behaviour.
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        R2: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard distribution: uniform floats in `[0, 1)`, uniform integers.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// A distribution that can sample values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening-multiply with rejection of the biased zone (Lemire).
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = x as u128 * bound as u128;
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Types [`Rng::gen_range`] can sample uniformly.
///
/// The single blanket `SampleRange` impl below goes through this trait so
/// that type inference unifies the range's element type with the requested
/// output type — exactly how upstream `rand` keeps unsuffixed float
/// literals like `0.15` inferring as `f32` from surrounding arithmetic.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u: $t = Standard.sample(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u: $t = Standard.sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand does for small seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the only `SliceRandom` method the workspace uses).
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-1.5f32..=1.5);
            assert!((-1.5..=1.5).contains(&f));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
