//! Congestion attribution: from a congestion map back to the nets that
//! cause it — the information a routability-driven placer acts on (the
//! optimisation loop the paper's introduction describes).
//!
//! Routes a design with per-net path tracking, then lists the most
//! frequently implicated nets across overflowed G-cells, together with
//! their G-net spans — the "move these cells / reroute these nets"
//! worklist.
//!
//! ```text
//! cargo run --release --example congestion_attribution
//! ```

use std::collections::HashMap;

use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_netlist::NetId;
use vlsi_place::GlobalPlacer;
use vlsi_route::{route, RouterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SynthConfig {
        name: "attribution".into(),
        n_cells: 900,
        grid_nx: 24,
        grid_ny: 24,
        ..SynthConfig::default()
    };
    let synth = generate(&cfg)?;
    let grid = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &grid)?;
    let rcfg = RouterConfig { keep_paths: true, ..Default::default() };
    let routed = route(&synth.circuit, &placed.placement, &grid, &synth.macro_rects, &rcfg)?;

    println!(
        "routed `{}`: congestion rate {:.1}%, {} overflowed edges",
        cfg.name,
        routed.congestion_rate() * 100.0,
        routed.overflowed_edges
    );

    let attribution = routed.congestion_attribution(&grid);
    println!("{} G-cells have attributable overflow", attribution.len());

    // Rank nets by how many congested cells they are implicated in.
    let mut implicated: HashMap<u32, usize> = HashMap::new();
    for (_, nets) in &attribution {
        for &n in nets {
            *implicated.entry(n).or_default() += 1;
        }
    }
    let mut ranked: Vec<(u32, usize)> = implicated.into_iter().collect();
    ranked.sort_by_key(|&(n, c)| (std::cmp::Reverse(c), n));

    println!("\ntop congestion-causing nets:");
    println!("{:>8} {:>8} {:>8} {:>14}", "net", "cells", "degree", "bbox half-perim");
    for &(net_idx, count) in ranked.iter().take(10) {
        let net = synth.circuit.net(NetId(net_idx));
        let bbox = placed.placement.net_bbox(net);
        println!(
            "{:>8} {:>8} {:>8} {:>14.1}",
            net.name,
            count,
            net.degree(),
            bbox.half_perimeter()
        );
    }
    println!(
        "\na routability-driven placer would spread these nets' cells apart (or a\nrouter would detour them) — and LHNN predicts the same congestion map in\nmilliseconds instead of re-routing every placement iteration."
    );
    Ok(())
}
