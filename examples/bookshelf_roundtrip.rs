//! Bookshelf interchange: write a placed design in the ISPD/DAC contest
//! format, read it back, and route both to confirm the labels agree.
//!
//! Shows how to plug *real* contest benchmarks into the pipeline: drop the
//! `.aux/.nodes/.nets/.pl` files in a directory and call
//! `bookshelf::read_design`.
//!
//! ```text
//! cargo run --release --example bookshelf_roundtrip
//! ```

use vlsi_netlist::bookshelf;
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_place::GlobalPlacer;
use vlsi_route::{route, RouterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SynthConfig {
        name: "roundtrip".into(),
        n_cells: 400,
        grid_nx: 16,
        grid_ny: 16,
        ..SynthConfig::default()
    };
    let synth = generate(&cfg)?;
    let grid = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &grid)?;

    // Write the four Bookshelf files.
    let dir = std::env::temp_dir().join("lhnn_bookshelf_example");
    bookshelf::write_design(&dir, &synth.circuit, &placed.placement)?;
    println!("wrote {}/roundtrip.{{aux,nodes,nets,pl}}", dir.display());

    // Read the design back.
    let (circuit2, placement2) = bookshelf::read_design(&dir, "roundtrip")?;
    circuit2.validate()?;
    println!(
        "read back: {} cells ({} terminals), {} nets, die {:?}",
        circuit2.num_cells(),
        circuit2.num_terminals(),
        circuit2.num_nets(),
        circuit2.die
    );

    // Route original and round-tripped design; labels must match.
    let rcfg = RouterConfig::default();
    let r1 = route(&synth.circuit, &placed.placement, &grid, &synth.macro_rects, &rcfg)?;
    let r2 = route(&circuit2, &placement2, &grid, &synth.macro_rects, &rcfg)?;
    println!("wirelength: original {} vs round-tripped {}", r1.wirelength, r2.wirelength);
    println!(
        "congestion rate: original {:.3}% vs round-tripped {:.3}%",
        r1.congestion_rate() * 100.0,
        r2.congestion_rate() * 100.0
    );
    assert_eq!(r1.wirelength, r2.wirelength, "roundtrip changed the routing problem");
    println!("roundtrip OK — identical routing results");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
