//! Crafted-feature recovery (§3.2 of the paper): one-step message passing
//! on the LH-graph reproduces the hand-designed CNN input maps.
//!
//! The paper argues the LH-graph *subsumes* feature engineering: net
//! density is recovered exactly by a single sum-aggregation from G-net
//! features, pin density and RUDY in expectation. This example verifies
//! all three on a synthetic design and prints the agreement.
//!
//! ```text
//! cargo run --release --example feature_recovery
//! ```

use lh_graph::{
    gcell_channel, recover_net_density, recover_pin_density, recover_rudy, FeatureSet, LhGraph,
    LhGraphConfig,
};
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_place::GlobalPlacer;
use vlsi_route::rudy_maps;

fn pearson(a: &[f32], b: &[f32]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().map(|&x| f64::from(x)).sum::<f64>() / n;
    let mb = b.iter().map(|&x| f64::from(x)).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (f64::from(x) - ma) * (f64::from(y) - mb);
        va += (f64::from(x) - ma).powi(2);
        vb += (f64::from(y) - mb).powi(2);
    }
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SynthConfig {
        name: "recovery".into(),
        n_cells: 900,
        grid_nx: 24,
        grid_ny: 24,
        ..SynthConfig::default()
    };
    let synth = generate(&cfg)?;
    let grid = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &grid)?;
    let graph =
        LhGraph::build(&synth.circuit, &placed.placement, &grid, &LhGraphConfig::default())?;
    let feats = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid)?;
    let n_c = graph.num_gcells();

    // 1. Net density: exact recovery.
    let recovered = recover_net_density(&graph, &feats.gnet);
    let mut max_err = 0.0f32;
    for i in 0..n_c {
        let direct_h = feats.gcell[(i, gcell_channel::NET_DENSITY_H)];
        max_err = max_err.max((recovered[(i, 0)] - direct_h).abs());
    }
    println!(
        "net density:  one-step H·(1/spanV) vs crafted map, max |err| = {max_err:.2e} (exact)"
    );

    // 2. Pin density: recovery in expectation.
    let rec_pin = recover_pin_density(&graph, &feats.gnet);
    let direct_pin: Vec<f32> =
        (0..n_c).map(|i| feats.gcell[(i, gcell_channel::PIN_DENSITY)]).collect();
    let rec_pin_v: Vec<f32> = (0..n_c).map(|i| rec_pin[(i, 0)]).collect();
    println!(
        "pin density:  correlation = {:.3}, total mass {:.0} vs {:.0} (recovered in expectation)",
        pearson(&direct_pin, &rec_pin_v),
        direct_pin.iter().sum::<f32>(),
        rec_pin_v.iter().sum::<f32>()
    );

    // 3. RUDY: recovery vs the real estimator on the same placement.
    let rec_rudy = recover_rudy(&graph, &feats.gnet);
    let real_rudy = rudy_maps(&synth.circuit, &placed.placement, &grid);
    let rec_rudy_v: Vec<f32> = (0..n_c).map(|i| rec_rudy[(i, 0)]).collect();
    println!(
        "rudy:         correlation vs Spindler estimator = {:.3}",
        pearson(&real_rudy.rudy, &rec_rudy_v)
    );
    println!(
        "\nthe LH-graph carries the crafted features implicitly — the FeatureGen\nblock can regenerate (and improve on) them during learning, which is why\nzeroing the G-cell input features barely hurts LHNN (Table 3)."
    );
    Ok(())
}
