//! Ablation in miniature: train the full LHNN and its `-hypermp` ablation
//! on the same small dataset and watch the topological receptive field
//! matter (Table 3's headline effect, at example scale).
//!
//! ```text
//! cargo run --release --example ablation_demo
//! ```

use lh_graph::{FeatureSet, LhGraph, LhGraphConfig, Targets};
use lhnn::{evaluate, train, AblationSpec, Lhnn, LhnnConfig, Sample, TrainConfig};
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_place::GlobalPlacer;
use vlsi_route::{route, RouterConfig};

fn sample(seed: u64) -> Result<Sample, Box<dyn std::error::Error>> {
    let cfg = SynthConfig {
        name: format!("abl{seed}"),
        seed,
        n_cells: 500,
        grid_nx: 16,
        grid_ny: 16,
        ..SynthConfig::default()
    };
    let synth = generate(&cfg)?;
    let grid = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &grid)?;
    let routed = route(
        &synth.circuit,
        &placed.placement,
        &grid,
        &synth.macro_rects,
        &RouterConfig::default(),
    )?;
    let graph =
        LhGraph::build(&synth.circuit, &placed.placement, &grid, &LhGraphConfig::default())?;
    let (gd, nd) = FeatureSet::default_divisors();
    let features =
        FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid)?.scaled_fixed(&gd, &nd);
    Ok(Sample { name: cfg.name, graph, features, targets: Targets::from_labels(&routed.labels) })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train_set: Vec<Sample> = (1..=4).map(sample).collect::<Result<_, _>>()?;
    let test_set: Vec<Sample> = (10..=11).map(sample).collect::<Result<_, _>>()?;
    let cfg = TrainConfig { epochs: 60, ..Default::default() };

    println!("{:<14} {:>8} {:>10}", "variant", "F1", "accuracy");
    for spec in [
        AblationSpec::full(),
        AblationSpec::without_hypermp(),
        AblationSpec::without_latticemp(),
        AblationSpec::without_jointing(),
    ] {
        // Important: train *and* evaluate under the same spec — the
        // ablated relation is absent in both phases, as in the paper.
        let mut model = Lhnn::new(LhnnConfig::default(), 0);
        train(&mut model, &train_set, &spec, &cfg);
        let eval = evaluate(&model, &test_set, &spec);
        println!("{:<14} {:>8.3} {:>10.3}", spec.label(), eval.f1, eval.accuracy);
    }
    println!("\nremoving the HyperMP edges severs the netlist (topological) receptive\nfield — the component the paper identifies as most load-bearing.");
    Ok(())
}
