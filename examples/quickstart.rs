//! Quickstart: the full LHNN pipeline on one small synthetic design.
//!
//! Generates a circuit, places it, routes it for ground-truth congestion
//! labels, builds the LH-graph, trains LHNN briefly and prints test
//! metrics plus an ASCII congestion map.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lh_graph::{ChannelMode, FeatureSet, LhGraph, LhGraphConfig, Targets};
use lhnn::{evaluate, predict_map, train, AblationSpec, Lhnn, LhnnConfig, Sample, TrainConfig};
use lhnn_data::ascii_map;
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_place::GlobalPlacer;
use vlsi_route::{route, RouterConfig};

fn build_sample(seed: u64) -> Result<Sample, Box<dyn std::error::Error>> {
    // 1. A synthetic circuit: 600 cells on a 20×20 G-cell grid.
    let cfg = SynthConfig {
        name: format!("quickstart{seed}"),
        seed,
        n_cells: 600,
        grid_nx: 20,
        grid_ny: 20,
        ..SynthConfig::default()
    };
    let synth = generate(&cfg)?;
    let grid = cfg.grid();

    // 2. Analytic placement (quadratic + spreading).
    let placed = GlobalPlacer::default().place_synth(&synth, &grid)?;
    println!(
        "[{}] placed {} cells, hpwl = {:.0}",
        cfg.name,
        synth.circuit.num_cells(),
        placed.hpwl
    );

    // 3. Global routing → demand + congestion labels.
    let routed = route(
        &synth.circuit,
        &placed.placement,
        &grid,
        &synth.macro_rects,
        &RouterConfig::default(),
    )?;
    println!(
        "[{}] routed, wirelength = {}, congestion rate = {:.1}%",
        cfg.name,
        routed.wirelength,
        routed.congestion_rate() * 100.0
    );

    // 4. LH-graph + features + targets.
    let graph =
        LhGraph::build(&synth.circuit, &placed.placement, &grid, &LhGraphConfig::default())?;
    let (gd, nd) = FeatureSet::default_divisors();
    let features =
        FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid)?.scaled_fixed(&gd, &nd);
    println!(
        "[{}] lh-graph: {} g-cells, {} g-nets ({} filtered)",
        cfg.name,
        graph.num_gcells(),
        graph.num_gnets(),
        graph.dropped_gnets()
    );
    Ok(Sample { name: cfg.name, graph, features, targets: Targets::from_labels(&routed.labels) })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three designs to train on, one held out.
    let train_set: Vec<Sample> = (1..=3).map(build_sample).collect::<Result<_, _>>()?;
    let test_sample = build_sample(9)?;

    // 5. Train LHNN (shortened protocol for the example).
    let mut model =
        Lhnn::new(LhnnConfig { channel_mode: ChannelMode::Uni, ..Default::default() }, 0);
    println!("\ntraining LHNN ({} parameters) for 40 epochs...", model.num_parameters());
    let cfg = TrainConfig { epochs: 40, ..Default::default() };
    let history = train(&mut model, &train_set, &AblationSpec::full(), &cfg);
    println!(
        "loss: {:.4} -> {:.4}",
        history.epoch_loss.first().unwrap_or(&0.0),
        history.epoch_loss.last().unwrap_or(&0.0)
    );

    // 6. Evaluate on the held-out design.
    let eval = evaluate(&model, std::slice::from_ref(&test_sample), &AblationSpec::full());
    println!("\nheld-out design: F1 = {:.3}, accuracy = {:.3}", eval.f1, eval.accuracy);

    // 7. Show label vs prediction.
    let (prob, label) = predict_map(&model, &test_sample, &AblationSpec::full());
    let nx = test_sample.graph.nx();
    let ny = test_sample.graph.ny();
    println!("\nground-truth congestion:");
    println!("{}", ascii_map(&label, nx, ny));
    println!("predicted congestion probability:");
    println!("{}", ascii_map(&prob, nx, ny));
    Ok(())
}
