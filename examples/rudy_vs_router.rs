//! RUDY vs global router: the motivating comparison from the paper's
//! introduction.
//!
//! RUDY (Spindler & Johannes, DATE 2007) is the fast congestion estimator
//! placers use when a full global route is too slow; the paper motivates
//! learned predictors by RUDY's unreliability at *identifying congested
//! regions*. This example quantifies that: it routes a design for ground
//! truth, then scores RUDY's thresholded maps against the real congestion
//! mask, sweeping the threshold.
//!
//! ```text
//! cargo run --release --example rudy_vs_router
//! ```

use neurograd::Confusion;
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_place::GlobalPlacer;
use vlsi_route::{route, rudy_maps, Dir, RouterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SynthConfig {
        name: "rudy_demo".into(),
        n_cells: 1200,
        grid_nx: 32,
        grid_ny: 32,
        ..SynthConfig::default()
    };
    let synth = generate(&cfg)?;
    let grid = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &grid)?;

    let t0 = std::time::Instant::now();
    let routed = route(
        &synth.circuit,
        &placed.placement,
        &grid,
        &synth.macro_rects,
        &RouterConfig::default(),
    )?;
    let route_time = t0.elapsed();

    let t1 = std::time::Instant::now();
    let rudy = rudy_maps(&synth.circuit, &placed.placement, &grid);
    let rudy_time = t1.elapsed();

    println!(
        "global route: {:.1} ms (congestion rate {:.1}%), rudy: {:.2} ms ({}x faster)",
        route_time.as_secs_f64() * 1000.0,
        routed.congestion_rate() * 100.0,
        rudy_time.as_secs_f64() * 1000.0,
        (route_time.as_secs_f64() / rudy_time.as_secs_f64().max(1e-9)) as u64
    );

    // Ground truth: horizontal congestion mask.
    let label: Vec<f32> =
        routed.labels.congestion(Dir::H).iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();

    // Sweep RUDY thresholds and report the best F1 it can achieve.
    println!("\nRUDY-h threshold sweep vs routed congestion mask:");
    println!("{:>10} {:>8} {:>8} {:>8}", "threshold", "F1", "prec", "recall");
    let max_rudy = rudy.rudy_h.iter().fold(0.0f32, |m, &v| m.max(v));
    let mut best = (0.0f64, 0.0f32);
    for i in 1..20 {
        let t = max_rudy * i as f32 / 20.0;
        let conf = Confusion::from_scores(&rudy.rudy_h, &label, t);
        if conf.f1() > best.0 {
            best = (conf.f1(), t);
        }
        println!("{:>10.2} {:>8.3} {:>8.3} {:>8.3}", t, conf.f1(), conf.precision(), conf.recall());
    }
    println!(
        "\nbest RUDY F1 = {:.3} at threshold {:.2} — fast but unreliable, which is\nexactly the gap learned predictors (LHNN) close at a fraction of the\nrouter's cost.",
        best.0, best.1
    );
    Ok(())
}
