//! Model persistence: save/load trained weights as a plain-text format
//! (no external serialisation dependency; see DESIGN.md §5).
//!
//! Format (`lhnn-model v2`): a magic line, a `kind` tag naming the
//! architecture, a header with its hyper-parameters, then one block per
//! parameter tensor:
//!
//! ```text
//! lhnn-model v2
//! kind lhnn
//! hidden 32
//! ...
//! params 42
//! param featuregen.f_c.lin1.weight 4 32
//! 0.01 -0.2 ...
//! ```
//!
//! Backward compatibility: `lhnn-model v1` streams predate the kind tag
//! and always hold LHNN weights, so they load as kind `lhnn`. Unknown
//! kinds and unknown versions are rejected with [`ModelIoError::Format`]
//! before any model is constructed — a bad checkpoint can never poison a
//! registry. [`load_model`] dispatches on the tag and returns the
//! architecture behind the [`CongestionModel`] trait.

use std::io::{BufRead, BufReader, Read, Write};

use lh_graph::ChannelMode;
use neurograd::{Matrix, ParamStore};

use crate::config::LhnnConfig;
use crate::congestion::CongestionModel;
use crate::hybrid::{HybridNet, HybridNetConfig};
use crate::model::Lhnn;

/// Errors from model (de)serialisation.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid `lhnn-model` stream (bad magic, unknown
    /// version or kind, malformed header or payload).
    Format(String),
    /// The stored architecture does not match expectations.
    Mismatch(String),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "model i/o failed: {e}"),
            ModelIoError::Format(m) => write!(f, "invalid model file: {m}"),
            ModelIoError::Mismatch(m) => write!(f, "model architecture mismatch: {m}"),
        }
    }
}

impl std::error::Error for ModelIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

fn mode_str(mode: ChannelMode) -> &'static str {
    match mode {
        ChannelMode::Uni => "uni",
        ChannelMode::Duo => "duo",
    }
}

fn parse_mode(s: &str) -> Result<ChannelMode, ModelIoError> {
    match s {
        "uni" => Ok(ChannelMode::Uni),
        "duo" => Ok(ChannelMode::Duo),
        other => Err(ModelIoError::Format(format!("unknown channel mode `{other}`"))),
    }
}

/// The architecture named by a checkpoint's header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KindTag {
    Lhnn,
    HybridNet,
}

fn next_line(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
    what: &str,
) -> Result<String, ModelIoError> {
    lines
        .next()
        .ok_or_else(|| ModelIoError::Format(format!("unexpected eof before {what}")))?
        .map_err(ModelIoError::Io)
}

fn read_kv(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
    key: &str,
) -> Result<String, ModelIoError> {
    let line = next_line(lines, key)?;
    let (k, v) = line
        .split_once(' ')
        .ok_or_else(|| ModelIoError::Format(format!("expected `{key} <value>`")))?;
    if k != key {
        return Err(ModelIoError::Format(format!("expected key `{key}`, got `{k}`")));
    }
    Ok(v.trim().to_string())
}

fn parse_usize(v: String, key: &str) -> Result<usize, ModelIoError> {
    v.parse().map_err(|_| ModelIoError::Format(format!("bad {key} `{v}`")))
}

/// Reads the magic + kind tag. `lhnn-model v1` streams predate the tag
/// and are always LHNN; `lhnn-model v2` carries an explicit `kind` line.
fn read_header(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
) -> Result<KindTag, ModelIoError> {
    let magic = next_line(lines, "header")?;
    match magic.trim() {
        "lhnn-model v1" => Ok(KindTag::Lhnn),
        "lhnn-model v2" => match read_kv(lines, "kind")?.as_str() {
            "lhnn" => Ok(KindTag::Lhnn),
            "hybridnet" => Ok(KindTag::HybridNet),
            other => Err(ModelIoError::Format(format!("unknown model kind `{other}`"))),
        },
        _ => Err(ModelIoError::Format(format!("bad magic `{magic}`"))),
    }
}

/// Writes every parameter tensor of `store` as `param` blocks.
fn write_params<W: Write>(w: &mut W, store: &ParamStore) -> Result<(), ModelIoError> {
    writeln!(w, "params {}", store.len())?;
    for p in store.iter() {
        let (rows, cols) = p.value.shape();
        writeln!(w, "param {} {} {}", p.name, rows, cols)?;
        let mut line = String::with_capacity(p.value.len() * 10);
        for (i, v) in p.value.as_slice().iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&format!("{v:e}"));
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads `param` blocks into a freshly built architecture's store,
/// verifying tensor names and shapes against it.
fn load_params(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
    store: &mut ParamStore,
) -> Result<(), ModelIoError> {
    let count = parse_usize(read_kv(lines, "params")?, "params")?;
    if store.len() != count {
        return Err(ModelIoError::Mismatch(format!(
            "file has {count} tensors, architecture has {}",
            store.len()
        )));
    }
    for i in 0..count {
        let header = next_line(lines, "param header")?;
        let tok: Vec<&str> = header.split_whitespace().collect();
        if tok.len() != 4 || tok[0] != "param" {
            return Err(ModelIoError::Format(format!("bad param header `{header}`")));
        }
        let name = tok[1];
        let rows: usize =
            tok[2].parse().map_err(|_| ModelIoError::Format(format!("bad rows `{}`", tok[2])))?;
        let cols: usize =
            tok[3].parse().map_err(|_| ModelIoError::Format(format!("bad cols `{}`", tok[3])))?;
        let data_line = next_line(lines, "param data")?;
        let values: Result<Vec<f32>, _> =
            data_line.split_whitespace().map(str::parse::<f32>).collect();
        let values =
            values.map_err(|e| ModelIoError::Format(format!("bad value in `{name}`: {e}")))?;
        let matrix = Matrix::from_vec(rows, cols, values)
            .map_err(|_| ModelIoError::Format(format!("value count mismatch for `{name}`")))?;
        let id = store.id_at(i);
        let param = store.param(id);
        if param.name != name {
            return Err(ModelIoError::Mismatch(format!(
                "tensor {i} is `{}` in the architecture but `{name}` in the file",
                param.name
            )));
        }
        if param.value.shape() != (rows, cols) {
            return Err(ModelIoError::Mismatch(format!(
                "tensor `{name}` has shape {:?} in the architecture but {rows}x{cols} in the file",
                param.value.shape()
            )));
        }
        store.param_mut(id).value = matrix;
    }
    Ok(())
}

impl Lhnn {
    /// Writes the model (kind tag + architecture + weights) to `w`.
    ///
    /// Pass `&mut writer` to keep using the writer afterwards.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save<W: Write>(&self, mut w: W) -> Result<(), ModelIoError> {
        let cfg = self.config();
        writeln!(w, "lhnn-model v2")?;
        writeln!(w, "kind lhnn")?;
        writeln!(w, "hidden {}", cfg.hidden)?;
        writeln!(w, "hypermp_layers {}", cfg.hypermp_layers)?;
        writeln!(w, "latticemp_encode_layers {}", cfg.latticemp_encode_layers)?;
        writeln!(w, "latticemp_joint_layers {}", cfg.latticemp_joint_layers)?;
        writeln!(w, "gcell_in_dim {}", cfg.gcell_in_dim)?;
        writeln!(w, "gnet_in_dim {}", cfg.gnet_in_dim)?;
        writeln!(w, "channel_mode {}", mode_str(cfg.channel_mode))?;
        write_params(&mut w, self.store())
    }

    /// Reads a model previously written by [`Lhnn::save`] (v2, kind
    /// `lhnn`) or by the untagged v1 format.
    ///
    /// # Errors
    ///
    /// Returns [`ModelIoError::Format`] for malformed input and
    /// [`ModelIoError::Mismatch`] when the checkpoint holds a different
    /// kind or its tensors do not match the architecture rebuilt from
    /// the header.
    pub fn load<R: Read>(r: R) -> Result<Lhnn, ModelIoError> {
        let mut lines = BufReader::new(r).lines();
        match read_header(&mut lines)? {
            KindTag::Lhnn => Lhnn::load_body(&mut lines),
            other => Err(ModelIoError::Mismatch(format!(
                "checkpoint holds a {other:?} model, not an Lhnn; use `load_model`"
            ))),
        }
    }

    /// Reads the post-header body (architecture kv lines + tensors).
    fn load_body(
        lines: &mut impl Iterator<Item = std::io::Result<String>>,
    ) -> Result<Lhnn, ModelIoError> {
        let cfg = LhnnConfig {
            hidden: parse_usize(read_kv(lines, "hidden")?, "hidden")?,
            hypermp_layers: parse_usize(read_kv(lines, "hypermp_layers")?, "hypermp_layers")?,
            latticemp_encode_layers: parse_usize(
                read_kv(lines, "latticemp_encode_layers")?,
                "latticemp_encode_layers",
            )?,
            latticemp_joint_layers: parse_usize(
                read_kv(lines, "latticemp_joint_layers")?,
                "latticemp_joint_layers",
            )?,
            gcell_in_dim: parse_usize(read_kv(lines, "gcell_in_dim")?, "gcell_in_dim")?,
            gnet_in_dim: parse_usize(read_kv(lines, "gnet_in_dim")?, "gnet_in_dim")?,
            channel_mode: parse_mode(&read_kv(lines, "channel_mode")?)?,
            // runtime knob, not part of the serialized format
            threads: 0,
        };
        let mut model = Lhnn::new(cfg, 0);
        load_params(lines, Lhnn::store_mut(&mut model))?;
        Ok(model)
    }
}

impl HybridNet {
    /// Writes the model (kind tag + architecture + weights) to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save<W: Write>(&self, mut w: W) -> Result<(), ModelIoError> {
        let cfg = self.config();
        writeln!(w, "lhnn-model v2")?;
        writeln!(w, "kind hybridnet")?;
        writeln!(w, "hidden {}", cfg.hidden)?;
        writeln!(w, "topo_rounds {}", cfg.topo_rounds)?;
        writeln!(w, "geo_layers {}", cfg.geo_layers)?;
        writeln!(w, "gcell_in_dim {}", cfg.gcell_in_dim)?;
        writeln!(w, "gnet_in_dim {}", cfg.gnet_in_dim)?;
        writeln!(w, "channel_mode {}", mode_str(cfg.channel_mode))?;
        write_params(&mut w, CongestionModel::store(self))
    }

    /// Reads a model previously written by [`HybridNet::save`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelIoError::Format`] for malformed input and
    /// [`ModelIoError::Mismatch`] when the checkpoint holds a different
    /// kind or mismatched tensors.
    pub fn load<R: Read>(r: R) -> Result<HybridNet, ModelIoError> {
        let mut lines = BufReader::new(r).lines();
        match read_header(&mut lines)? {
            KindTag::HybridNet => HybridNet::load_body(&mut lines),
            other => Err(ModelIoError::Mismatch(format!(
                "checkpoint holds a {other:?} model, not a HybridNet; use `load_model`"
            ))),
        }
    }

    /// Reads the post-header body (architecture kv lines + tensors).
    fn load_body(
        lines: &mut impl Iterator<Item = std::io::Result<String>>,
    ) -> Result<HybridNet, ModelIoError> {
        let cfg = HybridNetConfig {
            hidden: parse_usize(read_kv(lines, "hidden")?, "hidden")?,
            topo_rounds: parse_usize(read_kv(lines, "topo_rounds")?, "topo_rounds")?,
            geo_layers: parse_usize(read_kv(lines, "geo_layers")?, "geo_layers")?,
            gcell_in_dim: parse_usize(read_kv(lines, "gcell_in_dim")?, "gcell_in_dim")?,
            gnet_in_dim: parse_usize(read_kv(lines, "gnet_in_dim")?, "gnet_in_dim")?,
            channel_mode: parse_mode(&read_kv(lines, "channel_mode")?)?,
            threads: 0,
        };
        let mut model = HybridNet::new(cfg, 0);
        load_params(lines, CongestionModel::store_mut(&mut model))?;
        Ok(model)
    }
}

/// Loads any supported architecture from a checkpoint, dispatching on
/// the kind tag (untagged v1 streams load as LHNN). This is what serving
/// registries and the CLI use, so a checkpoint's architecture never has
/// to be known in advance.
///
/// # Errors
///
/// Returns [`ModelIoError::Format`] for malformed input (including
/// unknown versions or kinds, rejected before any model is built) and
/// [`ModelIoError::Mismatch`] for architecture/tensor disagreements.
pub fn load_model<R: Read>(r: R) -> Result<Box<dyn CongestionModel>, ModelIoError> {
    let mut lines = BufReader::new(r).lines();
    match read_header(&mut lines)? {
        KindTag::Lhnn => Ok(Box::new(Lhnn::load_body(&mut lines)?)),
        KindTag::HybridNet => Ok(Box::new(HybridNet::load_body(&mut lines)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AblationSpec;
    use crate::ops::GraphOps;
    use lh_graph::{FeatureSet, LhGraph, LhGraphConfig};
    use vlsi_netlist::synth::{generate, SynthConfig};
    use vlsi_place::GlobalPlacer;

    fn sample_inputs() -> (GraphOps, FeatureSet) {
        let cfg = SynthConfig { n_cells: 120, grid_nx: 8, grid_ny: 8, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        let graph =
            LhGraph::build(&synth.circuit, &placed.placement, &grid, &LhGraphConfig::default())
                .unwrap();
        let feats = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid)
            .unwrap()
            .normalized();
        (GraphOps::from_graph(&graph, &AblationSpec::full()), feats)
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let (ops, feats) = sample_inputs();
        let model = Lhnn::new(LhnnConfig::default(), 42);
        let before = model.predict(&ops, &feats);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = Lhnn::load(&buf[..]).unwrap();
        let after = loaded.predict(&ops, &feats);
        assert!(before.cls_prob.approx_eq(&after.cls_prob, 1e-6));
        assert!(before.reg.approx_eq(&after.reg, 1e-6));
    }

    #[test]
    fn hybridnet_roundtrip_preserves_predictions() {
        let (ops, feats) = sample_inputs();
        let model = HybridNet::new(HybridNetConfig::default(), 42);
        let before = model.predict(&ops, &feats);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = HybridNet::load(&buf[..]).unwrap();
        let after = loaded.predict(&ops, &feats);
        assert!(before.cls_prob.approx_eq(&after.cls_prob, 1e-6));
        assert!(before.reg.approx_eq(&after.reg, 1e-6));
    }

    #[test]
    fn load_model_dispatches_on_kind() {
        let lhnn = Lhnn::new(LhnnConfig::default(), 0);
        let mut buf = Vec::new();
        lhnn.save(&mut buf).unwrap();
        assert_eq!(load_model(&buf[..]).unwrap().kind(), "lhnn");

        let hybrid = HybridNet::new(HybridNetConfig::default(), 0);
        let mut buf = Vec::new();
        hybrid.save(&mut buf).unwrap();
        assert_eq!(load_model(&buf[..]).unwrap().kind(), "hybridnet");
    }

    #[test]
    fn untagged_v1_stream_loads_as_lhnn() {
        // v1 files predate the kind tag; they must keep loading (as LHNN)
        // through both the typed loader and the dispatching one.
        let model = Lhnn::new(LhnnConfig::default(), 9);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let v1 = String::from_utf8(buf).unwrap().replacen(
            "lhnn-model v2\nkind lhnn\n",
            "lhnn-model v1\n",
            1,
        );
        let loaded = Lhnn::load(v1.as_bytes()).unwrap();
        assert_eq!(loaded.weights_fingerprint(), model.weights_fingerprint());
        assert_eq!(load_model(v1.as_bytes()).unwrap().kind(), "lhnn");
    }

    #[test]
    fn load_rejects_bad_magic() {
        let err = Lhnn::load("not a model".as_bytes()).unwrap_err();
        assert!(matches!(err, ModelIoError::Format(_)));
    }

    #[test]
    fn load_rejects_truncated_file() {
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let truncated = &buf[..buf.len() / 2];
        assert!(Lhnn::load(truncated).is_err());
    }

    #[test]
    fn load_rejects_tampered_shape() {
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // corrupt the first tensor's declared shape
        let tampered = text.replacen(
            "param featuregen.f_c.lin1.weight 4 32",
            "param featuregen.f_c.lin1.weight 5 32",
            1,
        );
        let err = Lhnn::load(tampered.as_bytes()).unwrap_err();
        assert!(matches!(err, ModelIoError::Mismatch(_) | ModelIoError::Format(_)));
    }

    #[test]
    fn load_rejects_unknown_version() {
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap().replacen("lhnn-model v2", "lhnn-model v3", 1);
        let err = Lhnn::load(text.as_bytes()).unwrap_err();
        assert!(matches!(err, ModelIoError::Format(_)), "got {err}");
        assert!(load_model(text.as_bytes()).is_err());
    }

    #[test]
    fn load_rejects_unknown_kind() {
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap().replacen("kind lhnn", "kind alexnet", 1);
        let err = load_model(text.as_bytes()).unwrap_err();
        assert!(matches!(err, ModelIoError::Format(_)), "got {err}");
        let err = Lhnn::load(text.as_bytes()).unwrap_err();
        assert!(matches!(err, ModelIoError::Format(_)), "got {err}");
    }

    #[test]
    fn typed_loaders_reject_cross_kind_checkpoints() {
        let hybrid = HybridNet::new(HybridNetConfig::default(), 0);
        let mut buf = Vec::new();
        hybrid.save(&mut buf).unwrap();
        let err = Lhnn::load(&buf[..]).unwrap_err();
        assert!(matches!(err, ModelIoError::Mismatch(_)), "got {err}");

        let lhnn = Lhnn::new(LhnnConfig::default(), 0);
        let mut buf = Vec::new();
        lhnn.save(&mut buf).unwrap();
        let err = HybridNet::load(&buf[..]).unwrap_err();
        assert!(matches!(err, ModelIoError::Mismatch(_)), "got {err}");
    }

    #[test]
    fn load_rejects_corrupted_header_dims() {
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for (from, to) in [("hidden 32", "hidden banana"), ("gcell_in_dim 4", "gcell_in_dim -4")] {
            let bad = text.replacen(from, to, 1);
            let err = Lhnn::load(bad.as_bytes()).unwrap_err();
            assert!(matches!(err, ModelIoError::Format(_)), "`{to}` gave {err}");
        }
        // a wrong-but-parseable dim must fail as an architecture mismatch,
        // not load garbage
        let bad = text.replacen("gnet_in_dim 4", "gnet_in_dim 5", 1);
        let err = Lhnn::load(bad.as_bytes()).unwrap_err();
        assert!(matches!(err, ModelIoError::Mismatch(_)), "got {err}");
    }

    #[test]
    fn load_rejects_truncation_at_every_header_line() {
        for save in [
            |buf: &mut Vec<u8>| Lhnn::new(LhnnConfig::default(), 0).save(buf).unwrap(),
            |buf: &mut Vec<u8>| HybridNet::new(HybridNetConfig::default(), 0).save(buf).unwrap(),
        ] {
            let mut buf = Vec::new();
            save(&mut buf);
            let text = String::from_utf8(buf).unwrap();
            // cut the stream after each of the first 10 lines; all must
            // error, through both the typed and dispatching loaders
            let mut offset = 0;
            for line in text.lines().take(10) {
                offset += line.len() + 1;
                let cut = &text[..offset.min(text.len())];
                assert!(
                    load_model(cut.as_bytes()).is_err(),
                    "truncation after {offset} bytes was accepted"
                );
            }
        }
    }

    #[test]
    fn load_rejects_corrupted_values() {
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // corrupt a weight payload into a non-number
        let line_start = text.find("param featuregen.f_c.lin1.weight").unwrap();
        let data_start = text[line_start..].find('\n').unwrap() + line_start + 1;
        let data_end = text[data_start..].find(' ').unwrap() + data_start;
        let mut bad = String::new();
        bad.push_str(&text[..data_start]);
        bad.push_str("not_a_float");
        bad.push_str(&text[data_end..]);
        let err = Lhnn::load(bad.as_bytes()).unwrap_err();
        assert!(matches!(err, ModelIoError::Format(_)), "got {err}");
    }

    #[test]
    fn duo_mode_roundtrips() {
        let cfg = LhnnConfig { channel_mode: lh_graph::ChannelMode::Duo, ..Default::default() };
        let model = Lhnn::new(cfg, 1);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = Lhnn::load(&buf[..]).unwrap();
        assert_eq!(loaded.config().channel_mode, lh_graph::ChannelMode::Duo);
    }
}
