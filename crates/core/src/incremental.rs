//! The bounded-radius incremental forward (ROADMAP item 1).
//!
//! [`crate::LatticePipeline`] made graph/feature updates O(dirty rows),
//! but a [`crate::Lhnn`] forward still recomputed every G-cell. The LHNN
//! architecture has a *fixed receptive field*: information travels one
//! hop per sparse aggregation — one `H` hop in FeatureGen, two hops
//! (`B⁻¹Hᵀ` then `D⁻¹H`) per HyperMP block and one `P⁻¹A` hop per
//! LatticeMP block — so a change confined to a dirty set of G-cells and
//! G-nets can only influence rows inside a ≤5-hop halo of that set (with
//! the default 2 HyperMP + 3 LatticeMP stack).
//!
//! [`IncrementalForward`] exploits this: it caches every intermediate
//! activation of the last forward, dilates the pipeline's dirty sets
//! through the operators' sparsity patterns layer by layer
//! ([`lh_graph::halo`]), recomputes only halo rows with the masked
//! row-subset kernels in [`neurograd::kernels`], and splices the result
//! into the cached state.
//!
//! # Bitwise guarantee
//!
//! Every kernel involved computes each output row as an independent,
//! fixed sequence of float operations, so recomputing any superset of the
//! truly-changed rows yields a state **bitwise identical** to a full
//! forward — at any thread count (proptest-enforced in
//! `tests/incremental_forward.rs`). The halo is dilated through each
//! operator's own cached transpose rather than a structurally "dual"
//! sibling, because ablated/sampled operator sets replace matrices
//! asymmetrically.
//!
//! # Invalidation protocol
//!
//! * [`IncrementalForward::note_incremental`] accumulates dirty sets from
//!   `PipelineUpdate::Incremental` outcomes — since stable G-net columns,
//!   that includes size-filter crossings (tombstoned/revived/appended
//!   columns ride the dirty sets; appends grow the cached G-net tensors
//!   in place instead of dropping them).
//! * [`IncrementalForward::note_structural`] (full rebuilds, failed
//!   rebuilds, panics) drops the activation cache completely: columns may
//!   have renumbered, so no splice can be trusted. Each note carries an
//!   [`InvalidationCause`] so stats can split cache drops by origin —
//!   with stable columns, compaction should be the dominant cause.
//! * Each note bumps a sequence number. Callers snapshot the sequence
//!   together with their `(ops, features)` inputs; dirt noted *after* the
//!   snapshot is kept pending across the forward, so a delta applied
//!   while a forward is in flight is never lost.
//!
//! A forward that observes unknown provenance (no cached state, a
//! structural note, a weights hot-swap, or dimension changes) falls back
//! to a full refresh through the same row-subset kernels — which is
//! itself bitwise identical to the tape forward in [`crate::Lhnn`].

use std::sync::Mutex;
use std::time::Instant;

use lh_graph::halo::{dilate, union_sorted};
use lh_graph::{halo, FeatureSet};
use lhnn_obs::{Counter, Histogram, Registry};
use neurograd::{kernels, stable_sigmoid, Matrix};

use crate::congestion::CongestionModel;
use crate::model::{LatticeMpBlock, Lhnn, Prediction};
use crate::ops::GraphOps;

/// The per-model activation cache behind [`IncrementalForward`]: every
/// intermediate tensor of the last forward, full-size, plus masked
/// row-subset refresh paths over them.
///
/// Implementations are produced by their own architecture's
/// [`CongestionModel::new_activation_cache`] and are only ever refreshed
/// by a model whose `kind()` and `weights_fingerprint()` match the cache
/// (the [`IncrementalForward`] paths guard this), so they may downcast
/// the model they are handed.
///
/// Invariant every implementation must keep: after each refresh (full or
/// spliced), every cached tensor equals its full-forward value at
/// **every** row — refreshes recompute a superset of the truly-dirty
/// rows and leave the rest untouched, and each output row is an
/// independent fixed float sequence, so splices stay bitwise identical
/// to full forwards.
pub trait ActivationCache: Send {
    /// The owning architecture's kind tag (matches
    /// [`CongestionModel::kind`]).
    fn kind(&self) -> &'static str;

    /// The weights fingerprint this cache was refreshed under.
    fn weights_version(&self) -> u64;

    /// `(ops fingerprint, features fingerprint)` of the cached forward.
    fn fingerprints(&self) -> (u64, u64);

    /// Stamps the input fingerprints after a successful refresh.
    fn set_fingerprints(&mut self, ops_fp: u64, features_fp: u64);

    /// Cached G-cell row count.
    fn n_c(&self) -> usize;

    /// Cached G-net row count.
    fn n_n(&self) -> usize;

    /// The cached prediction (clones the output tensors).
    fn cached_prediction(&self) -> Prediction;

    /// Widens every G-net-dimensioned tensor to `n_n` rows in place
    /// (stable columns only ever append at the end, so existing rows
    /// keep their cached values row-for-row; new rows are zeroed and
    /// must be unioned into the dirty set by the caller).
    fn grow_gnet_rows(&mut self, n_n: usize);

    /// Recomputes every row through the masked row-subset kernels.
    fn refresh_full(
        &mut self,
        model: &dyn CongestionModel,
        ops: &GraphOps,
        features: &FeatureSet,
        timer: &mut DilateTimer,
    );

    /// Recomputes the dirty rows, dilating them through each
    /// aggregation's receptive field, and splices the result into the
    /// cached state. Returns the final `(gcell, gnet)` halo sizes.
    fn refresh_splice(
        &mut self,
        model: &dyn CongestionModel,
        ops: &GraphOps,
        features: &FeatureSet,
        dirty_gcells: Vec<usize>,
        dirty_gnets: Vec<usize>,
        timer: &mut DilateTimer,
    ) -> (usize, usize);
}

/// Sorted, duplicate-free dirty index sets accumulated from one or more
/// incremental pipeline updates: the G-cell rows and G-net rows whose
/// features or operator rows may have changed since the last forward.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ForwardDirty {
    gcells: Vec<usize>,
    gnets: Vec<usize>,
}

impl ForwardDirty {
    /// Canonicalises (sorts, dedups) arbitrary index lists.
    pub fn new(gcells: Vec<usize>, gnets: Vec<usize>) -> Self {
        Self { gcells: halo::canonicalize(gcells), gnets: halo::canonicalize(gnets) }
    }

    /// Dirty G-cell rows (sorted, unique).
    pub fn gcells(&self) -> &[usize] {
        &self.gcells
    }

    /// Dirty G-net rows (sorted, unique).
    pub fn gnets(&self) -> &[usize] {
        &self.gnets
    }

    /// Whether nothing is dirty.
    pub fn is_empty(&self) -> bool {
        self.gcells.is_empty() && self.gnets.is_empty()
    }

    /// Unions another dirty set into this one.
    pub fn merge(&mut self, other: &ForwardDirty) {
        self.gcells = union_sorted(&self.gcells, &other.gcells);
        self.gnets = union_sorted(&self.gnets, &other.gnets);
    }
}

/// Which path [`IncrementalForward::predict`] took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpliceOutcome {
    /// Input fingerprints matched the cached state: the cached prediction
    /// was returned without recomputing anything.
    Reused,
    /// Halo rows were recomputed and spliced into the cached state.
    Spliced {
        /// G-cell rows recomputed (the final ≤5-hop halo).
        gcell_rows: usize,
        /// G-net rows recomputed.
        gnet_rows: usize,
    },
    /// Full refresh: every row recomputed (first forward, structural
    /// invalidation, weights swap or dimension change).
    Full,
}

/// Why a structural note dropped the activation cache. With stable G-net
/// columns, filter crossings no longer invalidate (they splice), so the
/// expected steady-state mix is compaction-dominated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidationCause {
    /// A size-filter crossing the tombstone path could not absorb
    /// (`RebuildCause::NoLiveColumns` — expected zero on real designs).
    FilterCrossing,
    /// Lazy compaction renumbered the G-net column space.
    Compaction,
    /// The G-cell or G-net dimension changed outside the append protocol
    /// (e.g. a different grid or design was swapped in).
    DimChange,
    /// The pipeline recovered from a previously failed rebuild, or a
    /// panic mid-apply left provenance unknown.
    Poisoned,
}

impl From<&crate::pipeline::RebuildCause> for InvalidationCause {
    fn from(cause: &crate::pipeline::RebuildCause) -> Self {
        use crate::pipeline::RebuildCause;
        match cause {
            RebuildCause::Compaction { .. } => InvalidationCause::Compaction,
            RebuildCause::NoLiveColumns => InvalidationCause::FilterCrossing,
            RebuildCause::PoisonedRecovery => InvalidationCause::Poisoned,
        }
    }
}

/// Lifetime counters of an [`IncrementalForward`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Forwards that recomputed every row.
    pub full_forwards: u64,
    /// Forwards served by halo splicing.
    pub spliced_forwards: u64,
    /// Forwards answered from the cached prediction (fingerprint match).
    pub reused: u64,
    /// Structural notes that dropped the activation cache (all causes).
    pub invalidations: u64,
    /// Cache drops from unpatchable filter crossings
    /// ([`InvalidationCause::FilterCrossing`]).
    pub invalidations_filter_crossing: u64,
    /// Cache drops from lazy compaction
    /// ([`InvalidationCause::Compaction`]).
    pub invalidations_compaction: u64,
    /// Cache drops from dimension changes
    /// ([`InvalidationCause::DimChange`]).
    pub invalidations_dim_change: u64,
    /// Cache drops from poisoned-pipeline recovery
    /// ([`InvalidationCause::Poisoned`]).
    pub invalidations_poisoned: u64,
}

/// Metric handles for one design's incremental forward (resolved once in
/// [`IncrementalForward::with_metrics`]; absent on the plain constructor,
/// which keeps the hot path free of even relaxed loads).
///
/// The stage split follows the predict span hierarchy: `dilate` is the
/// time spent growing dirty sets through operator transposes, `forward`
/// the masked row-subset recompute (total refresh minus dilation), and
/// `splice` the assembly of the served prediction from the cached state.
struct IncrObs {
    dilate: Histogram,
    forward: Histogram,
    splice: Histogram,
    halo_gcells: Histogram,
    halo_gnets: Histogram,
    full: Counter,
    spliced: Counter,
    reused: Counter,
    invalidations: Counter,
    design_full: Counter,
    design_spliced: Counter,
    design_reused: Counter,
    design_invalidations: Counter,
}

impl IncrObs {
    fn new(registry: &Registry, design: &str, model_kind: &str) -> Self {
        let d = &[("design", design), ("model", model_kind)][..];
        Self {
            dilate: registry.stage("dilate"),
            forward: registry.stage("forward"),
            splice: registry.stage("splice"),
            halo_gcells: registry.histogram("lhnn_halo_gcells"),
            halo_gnets: registry.histogram("lhnn_halo_gnets"),
            full: registry.counter("lhnn_full_forwards_total"),
            spliced: registry.counter("lhnn_spliced_forwards_total"),
            reused: registry.counter("lhnn_reused_predictions_total"),
            invalidations: registry.counter("lhnn_invalidations_total"),
            design_full: registry.counter_with("lhnn_design_full_forwards_total", d),
            design_spliced: registry.counter_with("lhnn_design_spliced_forwards_total", d),
            design_reused: registry.counter_with("lhnn_design_reused_total", d),
            design_invalidations: registry.counter_with("lhnn_design_invalidations_total", d),
        }
    }
}

/// Accumulates nanoseconds spent in the dilation sites of one refresh.
/// Timing-only: wraps each site in a clock read when armed and is a plain
/// passthrough when not, so the float work is identical either way.
/// Handed to [`ActivationCache`] refreshes so per-model splice code can
/// attribute its dilation time without owning any metric handles.
#[derive(Debug)]
pub struct DilateTimer {
    armed: bool,
    ns: u128,
}

impl DilateTimer {
    pub(crate) fn new(armed: bool) -> Self {
        Self { armed, ns: 0 }
    }

    /// Runs `f`, attributing its wall time to halo dilation when armed.
    #[inline]
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        if self.armed {
            let t0 = Instant::now();
            let out = f();
            self.ns += t0.elapsed().as_nanos();
            out
        } else {
            f()
        }
    }

    fn us(&self) -> u64 {
        u64::try_from(self.ns / 1_000).unwrap_or(u64::MAX)
    }
}

/// Per-HyperMP-block cached activations (one tensor per forward step).
struct HyperActs {
    hc: Matrix,
    msg_n: Matrix,
    cat_n: Matrix,
    fused_n: Matrix,
    prev_n: Matrix,
    v_n: Matrix,
    hn: Matrix,
    msg_c: Matrix,
    cat_c: Matrix,
    fused_c: Matrix,
    prev_c: Matrix,
    v_c: Matrix,
}

/// Per-LatticeMP-block cached activations.
struct LatticeActs {
    h: Matrix,
    msg: Matrix,
    lin_out: Matrix,
    v_c: Matrix,
}

/// Every intermediate tensor of one LHNN forward, cached full-size.
///
/// Invariant: after each refresh (full or spliced), every tensor equals
/// its full-forward value at **every** row — refreshes recompute a
/// superset of the truly-dirty rows and leave the rest untouched. The
/// `sc_*`/`sy_*` matrices are ResBlock-internal scratch, wholly written
/// and read at identical row lists within one block call, so they carry
/// no cross-forward state.
pub(crate) struct ActivationState {
    weights_version: u64,
    ops_fp: u64,
    features_fp: u64,
    n_c: usize,
    n_n: usize,
    hidden: usize,
    // FeatureGen
    fc: Matrix,
    fn_: Matrix,
    agg: Matrix,
    cat: Matrix,
    v_c1: Matrix,
    v_n1: Matrix,
    hyper: Vec<HyperActs>,
    /// Encode layers followed by joint layers.
    lattice: Vec<LatticeActs>,
    cls_logits: Matrix,
    cls_prob: Matrix,
    reg: Matrix,
    // ResBlock scratch
    sc_c: Matrix,
    sy_c: Matrix,
    sc_n: Matrix,
    sy_n: Matrix,
    // Full row lists for the refresh path (kept allocated).
    all_c: Vec<usize>,
    all_n: Vec<usize>,
}

impl ActivationState {
    pub(crate) fn new(model: &Lhnn, weights_version: u64, n_c: usize, n_n: usize) -> Self {
        let h = model.cfg.hidden;
        let ch = model.cfg.channel_mode.channels();
        let zc = || Matrix::zeros(n_c, h);
        let zn = || Matrix::zeros(n_n, h);
        Self {
            weights_version,
            ops_fp: 0,
            features_fp: 0,
            n_c,
            n_n,
            hidden: h,
            fc: zc(),
            fn_: zn(),
            agg: zc(),
            cat: Matrix::zeros(n_c, 2 * h),
            v_c1: zc(),
            v_n1: zn(),
            hyper: (0..model.hypermp.len())
                .map(|_| HyperActs {
                    hc: zc(),
                    msg_n: zn(),
                    cat_n: Matrix::zeros(n_n, 2 * h),
                    fused_n: zn(),
                    prev_n: zn(),
                    v_n: zn(),
                    hn: zn(),
                    msg_c: zc(),
                    cat_c: Matrix::zeros(n_c, 2 * h),
                    fused_c: zc(),
                    prev_c: zc(),
                    v_c: zc(),
                })
                .collect(),
            lattice: (0..model.lattice_encode.len() + model.lattice_joint.len())
                .map(|_| LatticeActs { h: zc(), msg: zc(), lin_out: zc(), v_c: zc() })
                .collect(),
            cls_logits: Matrix::zeros(n_c, ch),
            cls_prob: Matrix::zeros(n_c, ch),
            reg: Matrix::zeros(n_c, ch),
            sc_c: zc(),
            sy_c: zc(),
            sc_n: zn(),
            sy_n: zn(),
            all_c: (0..n_c).collect(),
            all_n: (0..n_n).collect(),
        }
    }
}

/// Recomputes the forward over the given row lists, growing them through
/// each aggregation's receptive field when `grow` is set (the splice
/// path). With `grow` unset and full row lists this is a full refresh.
/// Returns the final (possibly grown) row lists.
fn refresh(
    st: &mut ActivationState,
    model: &Lhnn,
    ops: &GraphOps,
    features: &FeatureSet,
    mut dc: Vec<usize>,
    mut dn: Vec<usize>,
    grow: bool,
    dilate_t: &mut DilateTimer,
) -> (Vec<usize>, Vec<usize>) {
    let h = model.cfg.hidden;
    let ch = model.cfg.channel_mode.channels();
    let store = &model.store;
    let ActivationState {
        fc,
        fn_,
        agg,
        cat,
        v_c1,
        v_n1,
        hyper,
        lattice,
        cls_logits,
        cls_prob,
        reg,
        sc_c,
        sy_c,
        sc_n,
        sy_n,
        ..
    } = st;

    // ---- FeatureGen (Eq. 1–2): one H hop from G-nets onto G-cells ----
    if grow {
        dc = dilate_t.time(|| union_sorted(&dc, &dilate(ops.gnc_sum.transpose_cached(), &dn)));
    }
    model.featuregen.f_n.forward_rows_into(store, &features.gnet, &dn, sc_n, sy_n, fn_);
    model.featuregen.f_c.forward_rows_into(store, &features.gcell, &dc, sc_c, sy_c, fc);
    kernels::spmm_rows_into(&ops.gnc_sum, fn_, &dc, agg.as_mut_slice());
    kernels::concat_rows_into(fc, agg, &dc, cat.as_mut_slice());
    model.featuregen.phi_c.forward_rows_into(store, cat, &dc, v_c1);
    model.featuregen.phi_n.forward_rows_into(store, fn_, &dn, v_n1);

    // ---- HyperMP: a B⁻¹Hᵀ hop then a D⁻¹H hop per block ----
    for (i, block) in model.hypermp.iter().enumerate() {
        let (done, rest) = hyper.split_at_mut(i);
        let la = &mut rest[0];
        let (pc, pn): (&Matrix, &Matrix) =
            if i == 0 { (v_c1, v_n1) } else { (&done[i - 1].v_c, &done[i - 1].v_n) };
        block.res_c_in.forward_rows_into(store, pc, &dc, sc_c, sy_c, &mut la.hc);
        if grow {
            dn = dilate_t.time(|| union_sorted(&dn, &dilate(ops.gcn_mean.transpose_cached(), &dc)));
        }
        kernels::spmm_rows_into(&ops.gcn_mean, &la.hc, &dn, la.msg_n.as_mut_slice());
        kernels::concat_rows_into(&la.msg_n, v_n1, &dn, la.cat_n.as_mut_slice());
        block.fuse_n.forward_rows_into(store, &la.cat_n, &dn, &mut la.fused_n);
        block.res_n_prev.forward_rows_into(store, pn, &dn, sc_n, sy_n, &mut la.prev_n);
        kernels::zip_rows_into(
            la.fused_n.as_slice(),
            la.prev_n.as_slice(),
            &dn,
            h,
            la.v_n.as_mut_slice(),
            |x, y| x + y,
        );
        block.res_n_in.forward_rows_into(store, &la.v_n, &dn, sc_n, sy_n, &mut la.hn);
        if grow {
            dc = dilate_t.time(|| union_sorted(&dc, &dilate(ops.gnc_mean.transpose_cached(), &dn)));
        }
        kernels::spmm_rows_into(&ops.gnc_mean, &la.hn, &dc, la.msg_c.as_mut_slice());
        kernels::concat_rows_into(&la.msg_c, v_c1, &dc, la.cat_c.as_mut_slice());
        block.fuse_c.forward_rows_into(store, &la.cat_c, &dc, &mut la.fused_c);
        block.res_c_prev.forward_rows_into(store, pc, &dc, sc_c, sy_c, &mut la.prev_c);
        kernels::zip_rows_into(
            la.fused_c.as_slice(),
            la.prev_c.as_slice(),
            &dc,
            h,
            la.v_c.as_mut_slice(),
            |x, y| x + y,
        );
    }
    let last_hyper_c: &Matrix = if let Some(l) = hyper.last() { &l.v_c } else { v_c1 };

    // ---- LatticeMP: one P⁻¹A hop per block (encode then joint) ----
    let blocks: Vec<&LatticeMpBlock> =
        model.lattice_encode.iter().chain(model.lattice_joint.iter()).collect();
    debug_assert_eq!(blocks.len(), lattice.len());
    for (i, block) in blocks.into_iter().enumerate() {
        let (done, rest) = lattice.split_at_mut(i);
        let la = &mut rest[0];
        let pc: &Matrix = if i == 0 { last_hyper_c } else { &done[i - 1].v_c };
        block.res.forward_rows_into(store, pc, &dc, sc_c, sy_c, &mut la.h);
        if grow {
            dc = dilate_t
                .time(|| union_sorted(&dc, &dilate(ops.lattice_mean.transpose_cached(), &dc)));
        }
        kernels::spmm_rows_into(&ops.lattice_mean, &la.h, &dc, la.msg.as_mut_slice());
        block.lin.forward_rows_into(store, &la.msg, &dc, &mut la.lin_out);
        kernels::zip_rows_into(
            la.lin_out.as_slice(),
            pc.as_slice(),
            &dc,
            h,
            la.v_c.as_mut_slice(),
            |x, y| x + y,
        );
    }
    let final_c: &Matrix = if let Some(l) = lattice.last() { &l.v_c } else { last_hyper_c };

    // ---- Heads (row-local) ----
    model.cls_head.forward_rows_into(store, final_c, &dc, cls_logits);
    kernels::map_rows_into(cls_logits.as_slice(), &dc, ch, cls_prob.as_mut_slice(), stable_sigmoid);
    model.reg_head.forward_rows_into(store, final_c, &dc, reg);
    (dc, dn)
}

/// Widens a cached tensor to `rows`, keeping existing rows row-for-row.
/// Appended G-net columns always land at the *end* of the stable column
/// space, so the zeroed new rows are recomputed by the splice that
/// unions them into the dirty set.
pub(crate) fn widen_rows(m: &mut Matrix, rows: usize, cols: usize) {
    let mut g = Matrix::zeros(rows, cols);
    g.as_mut_slice()[..m.as_slice().len()].copy_from_slice(m.as_slice());
    *m = g;
}

impl ActivationCache for ActivationState {
    fn kind(&self) -> &'static str {
        "lhnn"
    }

    fn weights_version(&self) -> u64 {
        self.weights_version
    }

    fn fingerprints(&self) -> (u64, u64) {
        (self.ops_fp, self.features_fp)
    }

    fn set_fingerprints(&mut self, ops_fp: u64, features_fp: u64) {
        self.ops_fp = ops_fp;
        self.features_fp = features_fp;
    }

    fn n_c(&self) -> usize {
        self.n_c
    }

    fn n_n(&self) -> usize {
        self.n_n
    }

    fn cached_prediction(&self) -> Prediction {
        Prediction { cls_prob: self.cls_prob.clone(), reg: self.reg.clone() }
    }

    fn grow_gnet_rows(&mut self, n_n: usize) {
        let h = self.hidden;
        widen_rows(&mut self.fn_, n_n, h);
        widen_rows(&mut self.v_n1, n_n, h);
        widen_rows(&mut self.sc_n, n_n, h);
        widen_rows(&mut self.sy_n, n_n, h);
        for la in &mut self.hyper {
            widen_rows(&mut la.msg_n, n_n, h);
            widen_rows(&mut la.cat_n, n_n, 2 * h);
            widen_rows(&mut la.fused_n, n_n, h);
            widen_rows(&mut la.prev_n, n_n, h);
            widen_rows(&mut la.v_n, n_n, h);
            widen_rows(&mut la.hn, n_n, h);
        }
        self.all_n.extend(self.n_n..n_n);
        self.n_n = n_n;
    }

    fn refresh_full(
        &mut self,
        model: &dyn CongestionModel,
        ops: &GraphOps,
        features: &FeatureSet,
        timer: &mut DilateTimer,
    ) {
        let model = model
            .as_any()
            .downcast_ref::<Lhnn>()
            .expect("lhnn activation cache refreshed by a non-lhnn model");
        let dc = std::mem::take(&mut self.all_c);
        let dn = std::mem::take(&mut self.all_n);
        let (dc, dn) = refresh(self, model, ops, features, dc, dn, false, timer);
        self.all_c = dc;
        self.all_n = dn;
    }

    fn refresh_splice(
        &mut self,
        model: &dyn CongestionModel,
        ops: &GraphOps,
        features: &FeatureSet,
        dirty_gcells: Vec<usize>,
        dirty_gnets: Vec<usize>,
        timer: &mut DilateTimer,
    ) -> (usize, usize) {
        let model = model
            .as_any()
            .downcast_ref::<Lhnn>()
            .expect("lhnn activation cache spliced by a non-lhnn model");
        let (dc, dn) = refresh(self, model, ops, features, dirty_gcells, dirty_gnets, true, timer);
        (dc.len(), dn.len())
    }
}

/// Pending dirt plus the note sequence counter, shared between update
/// appliers (brief locks) and the forward (brief locks at entry/exit).
#[derive(Debug, Default)]
struct Notes {
    /// `None` means provenance is unknown (initial state, or a structural
    /// event since the last forward): the next forward must be full.
    pending: Option<ForwardDirty>,
    seq: u64,
    stats: IncrementalStats,
}

/// Cached-activation incremental inference for one hot design.
///
/// Thread-safe: updates note dirt through brief internal locks while
/// [`IncrementalForward::predict`] serialises forwards on its own lock.
/// A panic mid-forward leaves the activation cache empty (taken at
/// entry), so the next predict falls back to a full refresh.
pub struct IncrementalForward {
    notes: Mutex<Notes>,
    act: Mutex<Option<Box<dyn ActivationCache>>>,
    obs: Option<IncrObs>,
}

impl std::fmt::Debug for IncrementalForward {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.notes();
        f.debug_struct("IncrementalForward")
            .field("seq", &n.seq)
            .field("pending", &n.pending)
            .field("stats", &n.stats)
            .finish_non_exhaustive()
    }
}

impl Default for IncrementalForward {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalForward {
    /// An empty cache: the first forward is always full.
    pub fn new() -> Self {
        Self { notes: Mutex::new(Notes::default()), act: Mutex::new(None), obs: None }
    }

    /// Like [`IncrementalForward::new`], with forwards additionally
    /// reported to `registry`: `dilate`/`forward`/`splice` stage spans,
    /// halo-size histograms, and path counters (globally and per
    /// `design`/`model` label pair — `model_kind` should be the served
    /// model's [`CongestionModel::kind`], so mixed-zoo traffic stays
    /// attributable). Recording is timing-only — predictions stay
    /// bitwise identical to the uninstrumented constructor.
    pub fn with_metrics(registry: &Registry, design: &str, model_kind: &str) -> Self {
        let mut inc = Self::new();
        inc.obs = Some(IncrObs::new(registry, design, model_kind));
        inc
    }

    fn notes(&self) -> std::sync::MutexGuard<'_, Notes> {
        // Notes hold plain index sets and counters; a panicking holder
        // cannot leave them torn in a way that breaks the conservative
        // (superset / full-refresh) fallbacks.
        self.notes.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records an incremental update's dirty sets. No-op on the dirt if
    /// provenance is already unknown (the next forward is full anyway).
    pub fn note_incremental(&self, dirty: &ForwardDirty) {
        let mut n = self.notes();
        n.seq += 1;
        if let Some(p) = &mut n.pending {
            p.merge(dirty);
        }
    }

    /// Records a structural event (full rebuild, failed rebuild, panic
    /// mid-apply): drops the activation cache completely — G-net columns
    /// may have renumbered, so no splice against it can be trusted.
    /// `cause` splits the invalidation stats by origin.
    pub fn note_structural(&self, cause: InvalidationCause) {
        {
            let mut n = self.notes();
            n.seq += 1;
            n.pending = None;
            n.stats.invalidations += 1;
            match cause {
                InvalidationCause::FilterCrossing => n.stats.invalidations_filter_crossing += 1,
                InvalidationCause::Compaction => n.stats.invalidations_compaction += 1,
                InvalidationCause::DimChange => n.stats.invalidations_dim_change += 1,
                InvalidationCause::Poisoned => n.stats.invalidations_poisoned += 1,
            }
        }
        if let Some(o) = &self.obs {
            o.invalidations.inc();
            o.design_invalidations.inc();
        }
        // Drop the cached activations now if no forward holds them; an
        // in-flight forward is handled by the pending=None protocol (its
        // successor refreshes in full).
        if let Ok(mut act) = self.act.try_lock() {
            *act = None;
        }
    }

    /// The current note sequence. Snapshot this under the same lock that
    /// guards your `(ops, features)` snapshot and pass it to
    /// [`IncrementalForward::predict`], so dirt noted after the snapshot
    /// survives the forward.
    pub fn seq(&self) -> u64 {
        self.notes().seq
    }

    /// Lifetime counters.
    pub fn stats(&self) -> IncrementalStats {
        self.notes().stats.clone()
    }

    /// Runs the forward for `(ops, features)`, splicing over the dirty
    /// halo when the cached state allows it.
    ///
    /// `model_version` is the caller's fingerprint of the weights
    /// ([`CongestionModel::weights_fingerprint`], typically already
    /// computed by a registry); a version change — including a hot-swap
    /// to a different model kind — invalidates the cache. `seq_snapshot`
    /// is the value of [`IncrementalForward::seq`] captured when the
    /// `(ops, features)` snapshot was taken.
    ///
    /// Returns the prediction — bitwise identical to the model's own
    /// fused `predict` on the same inputs — and the path taken.
    pub fn predict(
        &self,
        model: &dyn CongestionModel,
        model_version: u64,
        ops: &GraphOps,
        features: &FeatureSet,
        seq_snapshot: u64,
    ) -> (Prediction, SpliceOutcome) {
        let mut act = self.act.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let (dirt, seq_at_take) = {
            let mut n = self.notes();
            // Notes arriving during the forward accumulate in the fresh
            // empty set; `finish` reconciles them with the taken dirt.
            (std::mem::replace(&mut n.pending, Some(ForwardDirty::default())), n.seq)
        };
        let ops_fp = ops.fingerprint();
        let features_fp = features.fingerprint();
        let n_c = features.gcell.rows();
        let n_n = features.gnet.rows();

        let mut taken = act.take();

        // Path 1: fingerprints match the cached state — the cached
        // prediction IS the full-forward answer for these inputs.
        let reusable = taken.as_ref().map_or(false, |st| {
            st.weights_version() == model_version && st.fingerprints() == (ops_fp, features_fp)
        });
        if reusable {
            let st = taken.expect("checked above");
            let t_splice = self.obs.as_ref().and_then(|o| o.splice.start());
            let pred = st.cached_prediction();
            *act = Some(st);
            drop(act);
            if let Some(o) = &self.obs {
                o.splice.stop_us(t_splice);
            }
            self.finish(dirt, seq_at_take, seq_snapshot, SpliceOutcome::Reused);
            return (pred, SpliceOutcome::Reused);
        }

        // Path 2: known dirt over a compatible cached state — splice.
        // Stable G-net columns only ever *append* at the end between
        // compactions, so a cached state with fewer G-net rows is still
        // spliceable: its tensors are grown in place and the appended
        // rows join the dirty set below.
        let splice_ok = match (&taken, &dirt) {
            (Some(st), Some(d)) => {
                st.kind() == model.kind()
                    && st.weights_version() == model_version
                    && st.n_c() == n_c
                    && st.n_n() <= n_n
                    && ops.num_gcells == n_c
                    && d.gcells.last().map_or(true, |&r| r < n_c)
                    && d.gnets.last().map_or(true, |&r| r < n_n)
            }
            _ => false,
        };
        let t_refresh = self.obs.as_ref().and_then(|o| o.forward.start());
        let mut dilate_t = DilateTimer::new(t_refresh.is_some());
        let (mut st, outcome) = if splice_ok {
            let mut st = taken.take().expect("checked above");
            let d = dirt.as_ref().expect("checked above");
            let mut dn0 = d.gnets.clone();
            if st.n_n() < n_n {
                let appended: Vec<usize> = (st.n_n()..n_n).collect();
                st.grow_gnet_rows(n_n);
                dn0 = union_sorted(&dn0, &appended);
            }
            let (gcell_rows, gnet_rows) =
                st.refresh_splice(model, ops, features, d.gcells.clone(), dn0, &mut dilate_t);
            let outcome = SpliceOutcome::Spliced { gcell_rows, gnet_rows };
            (st, outcome)
        } else {
            // Path 3: full refresh, reusing allocations when the kind
            // and shapes allow.
            let mut st = match taken.take() {
                Some(st)
                    if st.kind() == model.kind()
                        && st.weights_version() == model_version
                        && st.n_c() == n_c
                        && st.n_n() == n_n =>
                {
                    st
                }
                _ => model.new_activation_cache(model_version, n_c, n_n),
            };
            st.refresh_full(model, ops, features, &mut dilate_t);
            (st, SpliceOutcome::Full)
        };
        if let (Some(o), Some(t0)) = (&self.obs, t_refresh) {
            // The refresh span splits into halo dilation (accumulated at
            // the dilation sites) and the masked row-subset forward.
            let total_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            let dilate_us = dilate_t.us();
            o.dilate.observe(dilate_us);
            o.forward.observe(total_us.saturating_sub(dilate_us));
            if let SpliceOutcome::Spliced { gcell_rows, gnet_rows } = outcome {
                o.halo_gcells.observe(gcell_rows as u64);
                o.halo_gnets.observe(gnet_rows as u64);
            }
        }
        st.set_fingerprints(ops_fp, features_fp);
        let t_splice = self.obs.as_ref().and_then(|o| o.splice.start());
        let pred = st.cached_prediction();
        *act = Some(st);
        drop(act);
        if let Some(o) = &self.obs {
            o.splice.stop_us(t_splice);
        }
        self.finish(dirt, seq_at_take, seq_snapshot, outcome);
        (pred, outcome)
    }

    /// Reconciles pending dirt after a forward. The refreshed state
    /// matches the caller's input snapshot (taken at `seq_snapshot`);
    /// dirt noted after that snapshot — whether before the forward
    /// started (part of `dirt`) or during it (in `pending`) — must stay
    /// pending for the next splice. A superset is always safe.
    fn finish(
        &self,
        dirt: Option<ForwardDirty>,
        seq_at_take: u64,
        seq_snapshot: u64,
        outcome: SpliceOutcome,
    ) {
        let mut n = self.notes();
        if seq_at_take != seq_snapshot {
            match (&mut n.pending, dirt) {
                (Some(p), Some(d)) => p.merge(&d),
                // Unknown dirt past the snapshot, or a structural note
                // landed mid-forward: the next forward must be full.
                (pending, _) => *pending = None,
            }
        }
        match outcome {
            SpliceOutcome::Reused => n.stats.reused += 1,
            SpliceOutcome::Spliced { .. } => n.stats.spliced_forwards += 1,
            SpliceOutcome::Full => n.stats.full_forwards += 1,
        }
        drop(n);
        if let Some(o) = &self.obs {
            match outcome {
                SpliceOutcome::Reused => {
                    o.reused.inc();
                    o.design_reused.inc();
                }
                SpliceOutcome::Spliced { .. } => {
                    o.spliced.inc();
                    o.design_spliced.inc();
                }
                SpliceOutcome::Full => {
                    o.full.inc();
                    o.design_full.inc();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AblationSpec, LhnnConfig};
    use lh_graph::{LhGraph, LhGraphConfig};
    use vlsi_netlist::synth::{generate, SynthConfig};
    use vlsi_place::GlobalPlacer;

    fn sample() -> (GraphOps, FeatureSet) {
        let cfg = SynthConfig { n_cells: 150, grid_nx: 8, grid_ny: 8, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        let graph =
            LhGraph::build(&synth.circuit, &placed.placement, &grid, &LhGraphConfig::default())
                .unwrap();
        let feats = lh_graph::FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid)
            .unwrap()
            .normalized();
        (GraphOps::from_graph(&graph, &AblationSpec::full()), feats)
    }

    #[test]
    fn full_refresh_matches_tape_forward_bitwise() {
        let (ops, feats) = sample();
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let version = model.weights_fingerprint();
        let direct = model.predict(&ops, &feats);
        let inc = IncrementalForward::new();
        let (pred, outcome) = inc.predict(&model, version, &ops, &feats, inc.seq());
        assert_eq!(outcome, SpliceOutcome::Full);
        assert!(direct.cls_prob.approx_eq(&pred.cls_prob, 0.0), "cls diverged from tape forward");
        assert!(direct.reg.approx_eq(&pred.reg, 0.0), "reg diverged from tape forward");
    }

    #[test]
    fn unchanged_inputs_reuse_the_cached_prediction() {
        let (ops, feats) = sample();
        let model = Lhnn::new(LhnnConfig::default(), 1);
        let version = model.weights_fingerprint();
        let inc = IncrementalForward::new();
        let (first, _) = inc.predict(&model, version, &ops, &feats, inc.seq());
        let (again, outcome) = inc.predict(&model, version, &ops, &feats, inc.seq());
        assert_eq!(outcome, SpliceOutcome::Reused);
        assert!(first.cls_prob.approx_eq(&again.cls_prob, 0.0));
        assert_eq!(inc.stats().reused, 1);
    }

    #[test]
    fn structural_note_forces_a_full_refresh() {
        let (ops, feats) = sample();
        let model = Lhnn::new(LhnnConfig::default(), 2);
        let version = model.weights_fingerprint();
        let inc = IncrementalForward::new();
        inc.predict(&model, version, &ops, &feats, inc.seq());
        inc.note_structural(InvalidationCause::Compaction);
        // Fingerprints still match, but the cache was dropped: no reuse.
        let (pred, outcome) = inc.predict(&model, version, &ops, &feats, inc.seq());
        assert_eq!(outcome, SpliceOutcome::Full);
        let direct = model.predict(&ops, &feats);
        assert!(direct.cls_prob.approx_eq(&pred.cls_prob, 0.0));
        let stats = inc.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.invalidations_compaction, 1);
        assert_eq!(stats.invalidations_filter_crossing, 0);
    }

    #[test]
    fn weights_swap_invalidates_the_cache() {
        let (ops, feats) = sample();
        let a = Lhnn::new(LhnnConfig::default(), 3);
        let b = Lhnn::new(LhnnConfig::default(), 4);
        let inc = IncrementalForward::new();
        inc.predict(&a, a.weights_fingerprint(), &ops, &feats, inc.seq());
        let (pred, outcome) = inc.predict(&b, b.weights_fingerprint(), &ops, &feats, inc.seq());
        assert_eq!(outcome, SpliceOutcome::Full, "new weights must not reuse old activations");
        let direct = b.predict(&ops, &feats);
        assert!(direct.cls_prob.approx_eq(&pred.cls_prob, 0.0));
    }

    #[test]
    fn metrics_recording_is_bitwise_invisible() {
        let (ops, feats) = sample();
        let model = Lhnn::new(LhnnConfig::default(), 6);
        let version = model.weights_fingerprint();
        let registry = Registry::new();
        let plain = IncrementalForward::new();
        let observed = IncrementalForward::with_metrics(&registry, "d0", "lhnn");
        let (a, _) = plain.predict(&model, version, &ops, &feats, plain.seq());
        let (b, _) = observed.predict(&model, version, &ops, &feats, observed.seq());
        assert!(a.cls_prob.approx_eq(&b.cls_prob, 0.0), "metrics changed the prediction");
        assert!(a.reg.approx_eq(&b.reg, 0.0));
        observed.predict(&model, version, &ops, &feats, observed.seq());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("lhnn_full_forwards_total"), 1);
        assert_eq!(snap.counter("lhnn_reused_predictions_total"), 1);
        assert_eq!(
            snap.counter("lhnn_design_full_forwards_total{design=\"d0\",model=\"lhnn\"}"),
            1
        );
        assert_eq!(snap.histogram("lhnn_stage_us{stage=\"forward\"}").unwrap().count, 1);
        assert_eq!(snap.histogram("lhnn_stage_us{stage=\"dilate\"}").unwrap().count, 1);
        assert_eq!(snap.histogram("lhnn_stage_us{stage=\"splice\"}").unwrap().count, 2);
    }

    #[test]
    fn dirt_noted_after_the_snapshot_stays_pending() {
        let (ops, feats) = sample();
        let model = Lhnn::new(LhnnConfig::default(), 5);
        let version = model.weights_fingerprint();
        let inc = IncrementalForward::new();
        inc.predict(&model, version, &ops, &feats, inc.seq());
        let snapshot = inc.seq();
        // A delta lands after the snapshot but before the forward: its
        // dirt must survive the forward for the next splice.
        inc.note_incremental(&ForwardDirty::new(vec![3], vec![1]));
        inc.predict(&model, version, &ops, &feats, snapshot);
        let n = inc.notes();
        let pending = n.pending.as_ref().expect("pending must stay known");
        assert_eq!(pending.gcells(), &[3]);
        assert_eq!(pending.gnets(), &[1]);
    }
}
