//! The joint objective of Eq. 3–5.
//!
//! `L = L_reg + L_cls` where `L_reg` is the MSE on the routing-demand map
//! and `L_cls` is binary cross-entropy with the label-imbalance weight
//! `w = y + (1-y)·γ` (γ ∈ (0,1] shrinks the loss of non-congested cells).

use std::sync::Arc;

use neurograd::{Matrix, Tape, Var};

/// Builds the Eq. 5 per-element weights `w = y + (1-y)·γ`.
pub fn class_weights(targets: &Matrix, gamma: f32) -> Matrix {
    targets.map(|y| y + (1.0 - y) * gamma)
}

/// The γ-weighted classification loss (Eq. 5) on logits.
pub fn cls_loss(tape: &mut Tape, logits: Var, congestion: &Matrix, gamma: f32) -> Var {
    let weights = Arc::new(class_weights(congestion, gamma));
    tape.bce_with_logits(logits, Arc::new(congestion.clone()), weights)
}

/// The regression loss (Eq. 4).
pub fn reg_loss(tape: &mut Tape, reg: Var, demand: &Matrix) -> Var {
    tape.mse_loss(reg, Arc::new(demand.clone()))
}

/// The joint objective (Eq. 3). With `jointing = false` the regression
/// branch is dropped (Table 3 ablation) and the loss is `L_cls` alone.
pub fn joint_loss(
    tape: &mut Tape,
    cls_logits: Var,
    reg: Var,
    congestion: &Matrix,
    demand: &Matrix,
    gamma: f32,
    jointing: bool,
) -> Var {
    let l_cls = cls_loss(tape, cls_logits, congestion, gamma);
    if jointing {
        let l_reg = reg_loss(tape, reg, demand);
        tape.add(l_cls, l_reg)
    } else {
        l_cls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_follow_eq5() {
        let y = Matrix::from_rows(&[&[1.0, 0.0, 1.0, 0.0]]);
        let w = class_weights(&y, 0.7);
        assert_eq!(w.as_slice(), &[1.0, 0.7, 1.0, 0.7]);
        // gamma = 1 disables the re-weighting
        assert!(class_weights(&y, 1.0).as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn joint_loss_is_sum_of_parts() {
        let congestion = Matrix::from_rows(&[&[1.0], &[0.0]]);
        let demand = Matrix::from_rows(&[&[0.9], &[0.1]]);
        let build = |jointing: bool| {
            let mut tape = Tape::new();
            let logits = tape.leaf_grad(Matrix::from_rows(&[&[0.4], &[-0.3]]));
            let reg = tape.leaf_grad(Matrix::from_rows(&[&[0.5], &[0.2]]));
            let loss = joint_loss(&mut tape, logits, reg, &congestion, &demand, 0.7, jointing);
            tape.value(loss).item()
        };
        let with = build(true);
        let without = build(false);
        assert!(with > without, "regression term must add loss");
        // the difference equals the mse term: ((0.9-0.5)^2 + (0.1-0.2)^2)/2
        let mse = (0.4f32 * 0.4 + 0.1 * 0.1) / 2.0;
        assert!((with - without - mse).abs() < 1e-5);
    }

    #[test]
    fn gamma_reduces_negative_class_loss() {
        // all-negative labels with confident wrong predictions: lower gamma
        // must shrink the loss
        let congestion = Matrix::from_rows(&[&[0.0], &[0.0]]);
        let loss_at = |gamma: f32| {
            let mut tape = Tape::new();
            let logits = tape.leaf_grad(Matrix::from_rows(&[&[2.0], &[2.0]]));
            let l = cls_loss(&mut tape, logits, &congestion, gamma);
            tape.value(l).item()
        };
        assert!(loss_at(0.3) < loss_at(0.7));
        assert!(loss_at(0.7) < loss_at(1.0));
    }
}
