//! The incremental lattice pipeline: placement-in-the-loop construction.
//!
//! A placer perturbs a few cells and re-queries congestion thousands of
//! times per design. [`LatticePipeline`] keeps the whole
//! netlist → [`LhGraph`] → [`FeatureSet`] → [`GraphOps`] chain *hot*:
//! the first build is the ordinary batch construction, and every
//! subsequent [`LatticePipeline::apply`] patches only what a
//! [`PlacementDelta`] dirtied — re-binned nets, their covered G-cell rows,
//! crossed pin boundaries, and (with stable G-net columns) nets crossing
//! the size filter, which tombstone/revive/append columns in place. A
//! full rebuild only happens when tombstones exceed the lazy-compaction
//! threshold, when a crossing would leave no live column, or when the
//! pipeline recovers from a failed rebuild — [`RebuildCause`] names which.
//!
//! The hard guarantee, mirroring the kernel backend's thread-count
//! invariance: at any point in any delta sequence, the pipeline's graph,
//! features and operator fingerprints are **bitwise identical** to a
//! from-scratch rebuild at the current placement with the pipeline's own
//! column layout (`LhGraph::build_with_columns`) — and to the canonical
//! `LhGraph::build` right after every compaction. Serving caches keyed on
//! those fingerprints therefore behave identically whether a state was
//! reached incrementally or batch-built.

use std::sync::Arc;

use lh_graph::{DeltaOutcome, FeatureSet, LhGraph, LhGraphConfig, StructuralReason};
use lhnn_obs::{Counter, Histogram, Registry};
use vlsi_netlist::{rebin_delta_in_place, Circuit, GcellGrid, NetId, Placement, PlacementDelta};

use crate::config::AblationSpec;
use crate::ops::GraphOps;

/// What one [`LatticePipeline::apply`] call did.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineUpdate {
    /// The delta changed nothing grid-derived (moves within a G-cell, or
    /// no effective moves): graph, features and fingerprints are
    /// untouched, so downstream prediction caches stay hot.
    Noop,
    /// Dirty rows were patched in place.
    Incremental {
        /// G-net rows whose span/features changed (sorted, unique).
        dirty_nets: Vec<usize>,
        /// G-cell rows whose features or operator rows changed (sorted,
        /// unique; includes pin-move source/target bins, and every row
        /// when a terminal moved — the terminal mask repaints globally).
        dirty_gcells: Vec<usize>,
    },
    /// The chain was rebuilt from scratch. Filter crossings no longer end
    /// up here (they tombstone/revive/append columns on the
    /// [`PipelineUpdate::Incremental`] path); see [`RebuildCause`].
    FullRebuild {
        /// Why the incremental path refused the delta.
        cause: RebuildCause,
    },
}

/// Why a [`PipelineUpdate::FullRebuild`] happened. Enum-coded so the
/// fallback path allocates nothing and stats/tests can split rebuilds by
/// cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildCause {
    /// The tombstone fraction crossed
    /// [`LhGraphConfig::max_tombstone_fraction`]: the rebuild compacts the
    /// column space (the only event that renumbers G-net columns).
    Compaction {
        /// Tombstoned columns the compaction reclaims.
        tombstones: usize,
        /// Live columns surviving the compaction.
        live: usize,
    },
    /// A filter crossing would leave no live G-net column — the one
    /// crossing shape that cannot be tombstone-patched.
    NoLiveColumns,
    /// The pipeline was poisoned by a previously failed rebuild and must
    /// rebuild before trusting any incremental state again.
    PoisonedRecovery,
}

impl std::fmt::Display for RebuildCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebuildCause::Compaction { tombstones, live } => {
                write!(f, "compacting {tombstones} tombstoned g-net columns ({live} live)")
            }
            RebuildCause::NoLiveColumns => {
                f.write_str("no g-net column would survive the size filter")
            }
            RebuildCause::PoisonedRecovery => {
                f.write_str("recovering from a previously failed rebuild")
            }
        }
    }
}

impl From<StructuralReason> for RebuildCause {
    fn from(reason: StructuralReason) -> Self {
        match reason {
            StructuralReason::Compaction { tombstones, live } => {
                RebuildCause::Compaction { tombstones, live }
            }
            StructuralReason::NoLiveColumns => RebuildCause::NoLiveColumns,
        }
    }
}

/// Counters over a pipeline's lifetime (diagnostics and bench reporting).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineStats {
    /// Total `apply` calls.
    pub updates: usize,
    /// Deltas that changed nothing grid-derived.
    pub noops: usize,
    /// Deltas served by the incremental patch path.
    pub incremental: usize,
    /// Deltas that forced a full rebuild.
    pub full_rebuilds: usize,
    /// Rebuilds caused by a filter crossing the tombstone path could not
    /// absorb ([`RebuildCause::NoLiveColumns`]). Stable columns should
    /// keep this at zero on realistic designs.
    pub rebuilds_filter_crossing: usize,
    /// Rebuilds caused by lazy compaction
    /// ([`RebuildCause::Compaction`]) — the only event that renumbers
    /// G-net columns.
    pub rebuilds_compaction: usize,
    /// Rebuilds forced while recovering from a previously failed rebuild
    /// ([`RebuildCause::PoisonedRecovery`]).
    pub rebuilds_poisoned: usize,
    /// Size-filter crossings absorbed by the incremental path
    /// (tombstoned + revived/appended columns, summed over updates).
    pub crossings_patched: usize,
    /// Total G-net columns dirtied by incremental updates.
    pub dirty_nets: usize,
    /// Total G-cell rows recomputed by incremental updates.
    pub dirty_gcells: usize,
    /// Set when the pipeline is poisoned: these counters (and any
    /// fingerprints) describe the *pre-failure* placement, not the
    /// current one. See [`LatticePipeline::is_poisoned`].
    pub stale: bool,
}

/// Error returned by [`LatticePipeline::fingerprints`] while the pipeline
/// is poisoned: graph/features/ops describe the pre-failure placement, so
/// handing out their fingerprints as current would let a caller key a
/// cache (or claim parity) on stale state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalePipeline;

impl std::fmt::Display for StalePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pipeline is poisoned (a fallback rebuild failed): fingerprints describe the \
             pre-failure placement; apply a delta that admits a rebuild first"
        )
    }
}

impl std::error::Error for StalePipeline {}

/// Metric handles for one pipeline (resolved once in
/// [`LatticePipeline::set_metrics`]; absent by default). The update span
/// hierarchy mirrors [`LatticePipeline::apply`]: rebin → graph patch →
/// feature patch, with `rebuild` covering the structural fallback.
#[derive(Debug)]
struct PipelineObs {
    rebin: Histogram,
    graph_patch: Histogram,
    feature_patch: Histogram,
    rebuild: Histogram,
    dirty_gcells: Histogram,
    dirty_gnets: Histogram,
    fallbacks: Counter,
    compactions: Counter,
    design_updates: Counter,
    design_noops: Counter,
    design_incremental: Counter,
    design_fallbacks: Counter,
    design_compactions: Counter,
    design_crossings_patched: Counter,
    design_poisoned_rebuilds: Counter,
}

impl PipelineObs {
    fn new(registry: &Registry, design: &str) -> Self {
        let d = &[("design", design)][..];
        Self {
            rebin: registry.stage("rebin"),
            graph_patch: registry.stage("graph_patch"),
            feature_patch: registry.stage("feature_patch"),
            rebuild: registry.stage("rebuild"),
            dirty_gcells: registry.histogram("lhnn_dirty_gcells"),
            dirty_gnets: registry.histogram("lhnn_dirty_gnets"),
            fallbacks: registry.counter("lhnn_fallbacks_total"),
            compactions: registry.counter("lhnn_compactions_total"),
            design_updates: registry.counter_with("lhnn_design_updates_total", d),
            design_noops: registry.counter_with("lhnn_design_noops_total", d),
            design_incremental: registry.counter_with("lhnn_design_incremental_total", d),
            design_fallbacks: registry.counter_with("lhnn_design_fallbacks_total", d),
            design_compactions: registry.counter_with("lhnn_design_compactions_total", d),
            design_crossings_patched: registry
                .counter_with("lhnn_design_crossings_patched_total", d),
            design_poisoned_rebuilds: registry
                .counter_with("lhnn_design_poisoned_rebuilds_total", d),
        }
    }
}

/// The stateful construction pipeline for one design on one grid.
///
/// Owns its [`Placement`] copy; callers mutate it exclusively through
/// [`LatticePipeline::apply`]. Snapshots ([`LatticePipeline::ops`],
/// [`LatticePipeline::features`]) are `Arc`-shared, so an in-flight
/// prediction keeps its inputs alive while the pipeline moves on.
#[derive(Debug)]
pub struct LatticePipeline {
    circuit: Arc<Circuit>,
    grid: GcellGrid,
    graph_cfg: LhGraphConfig,
    ablation: AblationSpec,
    cell_to_nets: Vec<Vec<NetId>>,
    placement: Placement,
    graph: LhGraph,
    features: Arc<FeatureSet>,
    ops: Arc<GraphOps>,
    stats: PipelineStats,
    obs: Option<PipelineObs>,
    /// Set when a fallback rebuild failed: the placement has advanced but
    /// graph/features/ops still describe an older one. Every later
    /// `apply` forces a rebuild until one succeeds, so the stale state
    /// can never leak through the incremental path.
    poisoned: bool,
}

impl LatticePipeline {
    /// Builds the full chain once (the batch path every query used to
    /// take).
    ///
    /// # Errors
    ///
    /// Propagates [`lh_graph`] build failures (empty graph, dimension or
    /// grid-shape mismatches).
    pub fn new(
        circuit: Arc<Circuit>,
        placement: Placement,
        grid: GcellGrid,
        graph_cfg: LhGraphConfig,
        ablation: AblationSpec,
    ) -> lh_graph::Result<Self> {
        let graph = LhGraph::build(&circuit, &placement, &grid, &graph_cfg)?;
        let features = FeatureSet::build(&graph, &circuit, &placement, &grid)?;
        let ops = GraphOps::from_graph(&graph, &ablation);
        let cell_to_nets = circuit.cell_to_nets();
        Ok(Self {
            cell_to_nets,
            circuit,
            grid,
            graph_cfg,
            ablation,
            placement,
            graph,
            features: Arc::new(features),
            ops: Arc::new(ops),
            stats: PipelineStats::default(),
            obs: None,
            poisoned: false,
        })
    }

    /// Reports later updates to `registry`: `rebin`/`graph_patch`/
    /// `feature_patch`/`rebuild` stage spans, dirty-set size histograms,
    /// the workspace-wide `lhnn_fallbacks_total` counter and per-`design`
    /// update counters. Timing-only — graph/feature/fingerprint state is
    /// untouched by recording.
    pub fn set_metrics(&mut self, registry: &Registry, design: &str) {
        self.obs = Some(PipelineObs::new(registry, design));
    }

    /// Convenience constructor with the default graph config and the full
    /// (un-ablated) operator set — the serving configuration.
    pub fn for_serving(
        circuit: Arc<Circuit>,
        placement: Placement,
        grid: GcellGrid,
    ) -> lh_graph::Result<Self> {
        Self::new(circuit, placement, grid, LhGraphConfig::default(), AblationSpec::full())
    }

    /// Applies a placement delta, patching graph, features and operators
    /// incrementally where possible.
    ///
    /// # Errors
    ///
    /// Propagates build failures from the full-rebuild fallback (e.g. the
    /// delta moved every net past the size filter). The placement is
    /// already advanced when that happens, so the pipeline marks itself
    /// poisoned: every later `apply` forces a rebuild (never the
    /// incremental path against the stale graph) until one succeeds —
    /// e.g. after a delta that moves nets back below the filter.
    ///
    /// # Panics
    ///
    /// Panics if the delta references a cell outside the circuit.
    pub fn apply(&mut self, delta: &PlacementDelta) -> lh_graph::Result<PipelineUpdate> {
        self.stats.updates += 1;
        if let Some(o) = &self.obs {
            o.design_updates.inc();
        }
        let t_rebin = self.obs.as_ref().and_then(|o| o.rebin.start());
        let report = rebin_delta_in_place(
            &self.circuit,
            &self.grid,
            &mut self.placement,
            delta,
            &self.cell_to_nets,
        );
        if let Some(o) = &self.obs {
            o.rebin.stop_us(t_rebin);
        }
        if self.poisoned {
            if let Some(o) = &self.obs {
                o.fallbacks.inc();
                o.design_fallbacks.inc();
                o.design_poisoned_rebuilds.inc();
            }
            self.rebuild()?;
            self.stats.full_rebuilds += 1;
            self.stats.rebuilds_poisoned += 1;
            return Ok(PipelineUpdate::FullRebuild { cause: RebuildCause::PoisonedRecovery });
        }
        if report.is_clean() {
            self.stats.noops += 1;
            if let Some(o) = &self.obs {
                o.design_noops.inc();
            }
            return Ok(PipelineUpdate::Noop);
        }
        let t_graph = self.obs.as_ref().and_then(|o| o.graph_patch.start());
        let outcome = self.graph.apply_delta(&self.grid, &self.graph_cfg, &report);
        if let Some(o) = &self.obs {
            o.graph_patch.stop_us(t_graph);
        }
        match outcome? {
            DeltaOutcome::Patched(patch) => {
                let t_feat = self.obs.as_ref().and_then(|o| o.feature_patch.start());
                let features = self.features.apply_delta(
                    &patch,
                    &report,
                    &self.circuit,
                    &self.placement,
                    &self.grid,
                )?;
                // The dirty G-cell set a downstream incremental forward
                // must recompute: net-coverage rows, plus pin-move
                // source/target bins (pin density is ±1-adjusted there),
                // plus every row when a terminal moved (the terminal mask
                // repaints globally).
                let mut dirty_gcells = patch.dirty_rows.clone();
                if report.moved_terminal {
                    dirty_gcells = (0..patch.graph.num_gcells()).collect();
                } else {
                    for pm in &report.pin_moves {
                        if patch.graph.net_column(pm.net).is_some() {
                            dirty_gcells.push(pm.from);
                            dirty_gcells.push(pm.to);
                        }
                    }
                }
                let dirty_gcells = lh_graph::halo::canonicalize(dirty_gcells);
                // Tombstoned columns count as dirty too: their feature
                // rows were zeroed, which changes downstream activations
                // just as a span move does.
                let mut dirty_nets = patch.dirty_cols.clone();
                dirty_nets.extend_from_slice(&patch.tombstoned_cols);
                let dirty_nets = lh_graph::halo::canonicalize(dirty_nets);
                let crossings = patch.crossed_out.len() + patch.crossed_in.len();
                self.ops = Arc::new(self.ops.patch_from(&patch.graph, &self.ablation));
                self.graph = patch.graph;
                self.features = Arc::new(features);
                self.stats.incremental += 1;
                self.stats.crossings_patched += crossings;
                self.stats.dirty_nets += dirty_nets.len();
                self.stats.dirty_gcells += dirty_gcells.len();
                if let Some(o) = &self.obs {
                    o.feature_patch.stop_us(t_feat);
                    o.dirty_gcells.observe(dirty_gcells.len() as u64);
                    o.dirty_gnets.observe(dirty_nets.len() as u64);
                    o.design_incremental.inc();
                    o.design_crossings_patched.add(crossings as u64);
                }
                Ok(PipelineUpdate::Incremental { dirty_nets, dirty_gcells })
            }
            DeltaOutcome::Structural(reason) => {
                let cause = RebuildCause::from(reason);
                // Counted before the attempt: a failed fallback rebuild is
                // still a structural event worth alerting on.
                if let Some(o) = &self.obs {
                    o.fallbacks.inc();
                    o.design_fallbacks.inc();
                    if matches!(cause, RebuildCause::Compaction { .. }) {
                        o.compactions.inc();
                        o.design_compactions.inc();
                    }
                }
                match cause {
                    RebuildCause::Compaction { .. } => self.stats.rebuilds_compaction += 1,
                    // NoLiveColumns is the one crossing shape the tombstone
                    // path cannot absorb, so it books under filter
                    // crossings — honest accounting for the bench grep.
                    RebuildCause::NoLiveColumns => self.stats.rebuilds_filter_crossing += 1,
                    RebuildCause::PoisonedRecovery => unreachable!("not a structural reason"),
                }
                self.rebuild()?;
                self.stats.full_rebuilds += 1;
                Ok(PipelineUpdate::FullRebuild { cause })
            }
        }
    }

    /// Rebuilds the whole chain from scratch at the current placement
    /// (public so benchmarks can measure the batch path against
    /// [`LatticePipeline::apply`]).
    ///
    /// # Errors
    ///
    /// Propagates [`lh_graph`] build failures; until a rebuild succeeds,
    /// the pipeline stays poisoned and refuses the incremental path.
    pub fn rebuild(&mut self) -> lh_graph::Result<()> {
        let t_rebuild = self.obs.as_ref().and_then(|o| o.rebuild.start());
        self.poisoned = true;
        let graph = LhGraph::build(&self.circuit, &self.placement, &self.grid, &self.graph_cfg)?;
        let features = FeatureSet::build(&graph, &self.circuit, &self.placement, &self.grid)?;
        self.ops = Arc::new(GraphOps::from_graph(&graph, &self.ablation));
        self.graph = graph;
        self.features = Arc::new(features);
        self.poisoned = false;
        if let Some(o) = &self.obs {
            o.rebuild.stop_us(t_rebuild);
        }
        Ok(())
    }

    /// The current operator snapshot (cheap `Arc` clone).
    pub fn ops(&self) -> Arc<GraphOps> {
        Arc::clone(&self.ops)
    }

    /// The current raw (unscaled) feature snapshot (cheap `Arc` clone).
    pub fn features(&self) -> Arc<FeatureSet> {
        Arc::clone(&self.features)
    }

    /// The current graph.
    pub fn graph(&self) -> &LhGraph {
        &self.graph
    }

    /// The pipeline's placement copy.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The circuit this pipeline serves.
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.circuit
    }

    /// The G-cell grid.
    pub fn grid(&self) -> &GcellGrid {
        &self.grid
    }

    /// Whether a failed fallback rebuild left graph/features/ops behind
    /// the placement. Reads of [`LatticePipeline::ops`] /
    /// [`LatticePipeline::features`] / [`LatticePipeline::fingerprints`]
    /// describe the *pre-failure* placement until a rebuild succeeds;
    /// serving surfaces must refuse to answer from a poisoned pipeline.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Lifetime counters, tagged stale while the pipeline is poisoned
    /// (the counts then describe the pre-failure placement).
    pub fn stats(&self) -> PipelineStats {
        PipelineStats { stale: self.poisoned, ..self.stats.clone() }
    }

    /// `(operators, features)` content fingerprints — the serving cache
    /// key components. Cheap after an incremental update: patched operator
    /// matrices carry pre-seeded digests (untouched ones answer from their
    /// memoised one); only the dense feature blocks re-hash in full.
    ///
    /// # Errors
    ///
    /// [`StalePipeline`] while the pipeline is poisoned: the fingerprints
    /// would describe the pre-failure placement, not the current one.
    pub fn fingerprints(&self) -> Result<(u64, u64), StalePipeline> {
        if self.poisoned {
            return Err(StalePipeline);
        }
        Ok((self.ops.fingerprint(), self.features.fingerprint()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::synth::{generate, SynthConfig};
    use vlsi_netlist::{CellId, Point};
    use vlsi_place::GlobalPlacer;

    fn pipeline(seed: u64, n_cells: usize, side: u32) -> LatticePipeline {
        let cfg =
            SynthConfig { seed, n_cells, grid_nx: side, grid_ny: side, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        LatticePipeline::for_serving(Arc::new(synth.circuit), placed.placement, grid).unwrap()
    }

    /// From-scratch fingerprints with the pipeline's own column layout
    /// (a plain `build` right after a compaction, as the layout is
    /// canonical then).
    fn rebuilt_fingerprints(p: &LatticePipeline) -> (u64, u64) {
        let graph = LhGraph::build_with_columns(
            p.circuit(),
            p.placement(),
            p.grid(),
            &LhGraphConfig::default(),
            p.graph().kept_nets(),
        )
        .unwrap();
        let features = FeatureSet::build(&graph, p.circuit(), p.placement(), p.grid()).unwrap();
        (GraphOps::from_graph(&graph, &AblationSpec::full()).fingerprint(), features.fingerprint())
    }

    #[test]
    fn noop_delta_keeps_fingerprints_bitwise() {
        let mut p = pipeline(1, 120, 8);
        let before = p.fingerprints().unwrap();
        let id = CellId(0);
        let delta = PlacementDelta::single(id, p.placement().position(id));
        assert_eq!(p.apply(&delta).unwrap(), PipelineUpdate::Noop);
        assert_eq!(p.fingerprints().unwrap(), before, "no-op must keep the cache key");
        assert_eq!(p.stats().noops, 1);
    }

    #[test]
    fn incremental_update_matches_full_rebuild() {
        let mut p = pipeline(2, 150, 10);
        let die = p.circuit().die;
        // Walk a cell across the die in g-cell-sized hops.
        for step in 0..6 {
            let id = CellId(step as u32);
            let pos = p.placement().position(id);
            let np = die.clamp(Point::new(pos.x + p.grid().gcell_width() * 1.25, pos.y));
            p.apply(&PlacementDelta::single(id, np)).unwrap();
            assert_eq!(
                p.fingerprints().unwrap(),
                rebuilt_fingerprints(&p),
                "incremental state diverged at step {step}"
            );
        }
        assert!(p.stats().incremental + p.stats().noops + p.stats().full_rebuilds == 6);
    }

    #[test]
    fn filter_crossings_patch_in_place_and_match() {
        let mut p = pipeline(3, 100, 8);
        let die = p.circuit().die;
        // Stretch one net across the whole die and back: with the default
        // 5% filter it crosses the size threshold both ways, which the
        // stable column space absorbs as tombstone/revive patches instead
        // of full rebuilds.
        let net0 = p.circuit().nets()[0].clone();
        let cell = net0.pins[0].cell;
        let home = p.placement().position(cell);
        for (step, target) in
            [Point::new(die.lx, die.ly), Point::new(die.ux, die.uy), home].iter().enumerate()
        {
            p.apply(&PlacementDelta::single(cell, *target)).unwrap();
            assert_eq!(
                p.fingerprints().unwrap(),
                rebuilt_fingerprints(&p),
                "crossing state diverged at step {step}"
            );
        }
        let stats = p.stats();
        assert!(stats.crossings_patched >= 2, "out-and-back must count crossings: {stats:?}");
        assert_eq!(stats.full_rebuilds, 0, "crossings must not rebuild: {stats:?}");
        assert_eq!(stats.rebuilds_filter_crossing, 0);
    }

    #[test]
    fn failed_fallback_rebuild_poisons_until_a_rebuild_succeeds() {
        use vlsi_netlist::{Cell, Net, Pin, Rect};
        // Two 2-pin nets on a 4x4 grid with a 1-g-cell size filter: any
        // net stretched across g-cells crosses the filter (structural),
        // and stretching *every* net makes the fallback rebuild fail.
        let die = Rect::new(0.0, 0.0, 8.0, 8.0);
        let grid = GcellGrid::new(die, 4, 4);
        let mut c = Circuit::new("tiny", die);
        let a = c.add_cell(Cell::movable("a", 0.2, 0.2));
        let b = c.add_cell(Cell::movable("b", 0.2, 0.2));
        c.add_net(Net::new("n", vec![Pin::at_center(a), Pin::at_center(b)]));
        let mut placement = Placement::zeroed(2);
        placement.set_position(a, Point::new(1.0, 1.0));
        placement.set_position(b, Point::new(1.2, 1.2));
        // max area = 1 g-cell
        let cfg = LhGraphConfig { max_gnet_fraction: 1e-9, ..LhGraphConfig::default() };
        let mut p =
            LatticePipeline::new(Arc::new(c), placement, grid, cfg.clone(), AblationSpec::full())
                .unwrap();

        // Stretch the net across the die: structural, and the rebuild
        // fails because the only net is filtered out.
        let stretch = PlacementDelta::single(b, Point::new(7.0, 7.0));
        assert!(p.apply(&stretch).is_err(), "fallback rebuild must fail");

        // A clean follow-up delta must NOT sneak through the incremental
        // path against the stale graph: the pipeline stays poisoned and
        // keeps failing until a placement admits a rebuild.
        let nudge = PlacementDelta::single(b, Point::new(7.1, 7.1));
        assert!(p.apply(&nudge).is_err(), "poisoned pipeline must retry the rebuild");

        // Move the net back under the filter: the next apply heals via a
        // full rebuild and the state matches a from-scratch build again.
        let heal = PlacementDelta::single(b, Point::new(1.3, 1.3));
        let update = p.apply(&heal).unwrap();
        assert!(matches!(update, PipelineUpdate::FullRebuild { .. }));
        let graph = LhGraph::build(p.circuit(), p.placement(), p.grid(), &cfg).unwrap();
        let features = FeatureSet::build(&graph, p.circuit(), p.placement(), p.grid()).unwrap();
        let batch_ops = GraphOps::from_graph(&graph, &AblationSpec::full());
        assert_eq!(p.fingerprints().unwrap(), (batch_ops.fingerprint(), features.fingerprint()));

        // and the pipeline is healthy again: further small moves are
        // incremental
        let follow = p.apply(&PlacementDelta::single(b, Point::new(1.4, 1.4))).unwrap();
        assert!(matches!(follow, PipelineUpdate::Noop | PipelineUpdate::Incremental { .. }));
    }

    #[test]
    fn metrics_recording_keeps_fingerprint_parity() {
        let mut plain = pipeline(7, 120, 8);
        let mut observed = pipeline(7, 120, 8);
        let registry = Registry::new();
        observed.set_metrics(&registry, "d0");
        let die = observed.circuit().die;
        for step in 0..4 {
            let id = CellId(step as u32);
            let pos = plain.placement().position(id);
            let np = die.clamp(Point::new(pos.x + plain.grid().gcell_width() * 1.25, pos.y));
            let delta = PlacementDelta::single(id, np);
            plain.apply(&delta).unwrap();
            observed.apply(&delta).unwrap();
            assert_eq!(
                plain.fingerprints().unwrap(),
                observed.fingerprints().unwrap(),
                "metrics changed pipeline state at step {step}"
            );
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("lhnn_design_updates_total{design=\"d0\"}"), 4);
        assert_eq!(snap.histogram("lhnn_stage_us{stage=\"rebin\"}").unwrap().count, 4);
        // registered even when never hit, so dumps carry the full catalog
        assert_eq!(snap.counter("lhnn_fallbacks_total"), 0);
        assert!(snap.get("lhnn_fallbacks_total").is_some());
    }

    #[test]
    fn operator_snapshots_are_arc_shared_across_noops() {
        let mut p = pipeline(4, 90, 8);
        let ops = p.ops();
        let id = CellId(1);
        p.apply(&PlacementDelta::single(id, p.placement().position(id))).unwrap();
        assert!(Arc::ptr_eq(&ops, &p.ops()), "noop must not replace the snapshot");
    }
}
