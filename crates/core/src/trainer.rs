//! Training and evaluation loops over any [`CongestionModel`].
//!
//! A [`Sample`] bundles everything one design contributes: its LH-graph,
//! normalised features and supervision targets. [`train`] runs the paper's
//! protocol (Adam 2e-3 stepping down to 5e-4, γ-weighted joint loss);
//! [`evaluate`] reports the paper's metrics — per-design F1 and accuracy
//! averaged over a test set, with the zero-congestion ⇒ F1 = 0 convention.
//!
//! # Data-parallel training
//!
//! Each optimiser step covers a mini-batch of `TrainConfig::batch_size`
//! samples (1 = the paper's per-design stepping). Per-sample forwards and
//! backwards run on `TrainConfig::threads` shards of the batch, each shard
//! owning a long-lived scratch [`Tape`]; per-sample gradients and losses
//! are then reduced **sequentially in sample order** on the calling
//! thread. Because the reduction order is fixed and the kernel backend is
//! bitwise thread-count-invariant, `threads` never changes the training
//! trajectory: for a given `batch_size`, any thread count reproduces the
//! serial [`TrainHistory`] exactly (see `parallel_matches_serial_exactly`).

use lh_graph::{ChannelMode, FeatureSet, LhGraph, Targets};
use lhnn_obs::Registry;
use neurograd::tape::ParamId;
use neurograd::{Adam, Confusion, Matrix, Optimizer, Tape};
use serde::{Deserialize, Serialize};

use crate::config::{AblationSpec, TrainConfig};
use crate::congestion::CongestionModel;
use crate::loss::joint_loss;
use crate::ops::{epoch_rng, shuffled_indices, GraphOps};

/// One design's training/evaluation data.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Design name (for reports).
    pub name: String,
    /// The LH-graph of the placed design.
    pub graph: LhGraph,
    /// Normalised input features.
    pub features: FeatureSet,
    /// Supervision targets (demand + congestion).
    pub targets: Targets,
}

/// Loss trace of a training run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainHistory {
    /// Mean joint loss per epoch.
    pub epoch_loss: Vec<f32>,
}

/// Per-design evaluation record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignEval {
    /// Design name.
    pub name: String,
    /// F1 score of the congestion classification.
    pub f1: f64,
    /// Accuracy of the congestion classification.
    pub accuracy: f64,
    /// Ground-truth congestion rate of the design.
    pub congestion_rate: f64,
}

/// Aggregate evaluation result (averaged over designs, as in the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalResult {
    /// Mean per-design F1.
    pub f1: f64,
    /// Mean per-design accuracy.
    pub accuracy: f64,
    /// Per-design breakdown.
    pub designs: Vec<DesignEval>,
}

/// One shard of a mini-batch: a long-lived scratch tape plus the
/// per-sample results it produced this step, in shard-local sample order.
struct Shard {
    tape: Tape,
    results: Vec<(f32, Vec<(ParamId, Matrix)>)>,
}

/// Runs forward + backward for one sample on a scratch tape, returning the
/// loss and the per-parameter gradients in tape (registration) order.
fn sample_grads(
    model: &dyn CongestionModel,
    tape: &mut Tape,
    ops: &GraphOps,
    feats: &FeatureSet,
    congestion: &Matrix,
    demand: &Matrix,
    gamma: f32,
    jointing: bool,
) -> (f32, Vec<(ParamId, Matrix)>) {
    tape.clear();
    let out = model.forward(tape, ops, feats);
    let loss = joint_loss(tape, out.cls_logits, out.reg, congestion, demand, gamma, jointing);
    let loss_value = tape.value(loss).item();
    tape.backward(loss);
    (loss_value, tape.take_param_grads())
}

/// Trains `model` on `samples` under an ablation spec.
///
/// Applies the paper's learning-rate step (2e-3 → 5e-4 halfway), optional
/// neighbour-sampling fanouts, gradient clipping and per-epoch shuffling.
/// Deterministic for a fixed `cfg.seed`, independent of `cfg.threads` (see
/// the module docs).
pub fn train(
    model: &mut dyn CongestionModel,
    samples: &[Sample],
    ablation: &AblationSpec,
    cfg: &TrainConfig,
) -> TrainHistory {
    train_observed(model, samples, ablation, cfg, None)
}

/// [`train`] with optional per-epoch span recording: each epoch's wall
/// time lands in the `lhnn_train_epoch_us` histogram of `registry` and
/// `lhnn_train_epochs_total` counts completed epochs. Recording is
/// timing-only, so the training trajectory is bitwise identical to
/// [`train`] for the same config.
pub fn train_observed(
    model: &mut dyn CongestionModel,
    samples: &[Sample],
    ablation: &AblationSpec,
    cfg: &TrainConfig,
    registry: Option<&Registry>,
) -> TrainHistory {
    let epoch_span = registry.map(|r| r.histogram("lhnn_train_epoch_us"));
    let epochs_total = registry.map(|r| r.counter("lhnn_train_epochs_total"));
    let mode = model.channel_mode();
    // Pre-extract per-sample tensors (feature ablation applied once) and
    // warm the operators' transpose caches so no backward step rebuilds
    // a CSR transpose.
    let prepared: Vec<(GraphOps, FeatureSet, Matrix, Matrix)> = samples
        .iter()
        .map(|s| {
            let ops = GraphOps::from_graph(&s.graph, ablation);
            ops.warm_transpose_caches();
            let feats = if ablation.gcell_features {
                s.features.clone()
            } else {
                s.features.without_gcell_features()
            };
            let congestion = s.targets.congestion_channels(mode);
            let demand = s.targets.demand_channels(mode);
            (ops, feats, congestion, demand)
        })
        .collect();

    let threads = cfg.threads.max(1);
    let batch_size = cfg.batch_size.max(1);
    let pool = neurograd::pool::global();
    // One scratch tape per shard, reused across steps and epochs: after
    // the first step the forwards/backwards allocate (near) nothing.
    let mut shards: Vec<Shard> =
        (0..threads).map(|_| Shard { tape: Tape::new(), results: Vec::new() }).collect();

    let mut opt = Adam::new(cfg.lr);
    let mut history = TrainHistory::default();
    for epoch in 0..cfg.epochs {
        let t_epoch = epoch_span.as_ref().and_then(|h| h.start());
        if cfg.epochs > 1 && epoch == cfg.epochs / 2 {
            opt.set_lr(cfg.lr_final);
        }
        let mut rng = epoch_rng(cfg.seed, epoch);
        let order = shuffled_indices(prepared.len(), &mut rng);
        let mut epoch_loss = 0.0f32;
        for step in order.chunks(batch_size) {
            // Phase 1 (sequential): neighbour sampling consumes the epoch
            // RNG in sample order, so the stream is thread-count-invariant.
            let step_ops: Vec<GraphOps> = step
                .iter()
                .map(|&i| match cfg.fanouts {
                    Some(fanouts) => prepared[i].0.sampled(fanouts, &mut rng),
                    None => prepared[i].0.clone(),
                })
                .collect();
            // Phase 2 (parallel): per-sample forward/backward over
            // contiguous shards of the batch, one scratch tape per shard.
            let ranges = neurograd::pool::chunk_ranges(step.len(), 1, threads);
            let used = ranges.len();
            let model_ref: &dyn CongestionModel = &*model;
            pool.run_mut(&mut shards[..used], |s, shard| {
                shard.results.clear();
                for pos in ranges[s].clone() {
                    let (_, feats, congestion, demand) = &prepared[step[pos]];
                    shard.results.push(sample_grads(
                        model_ref,
                        &mut shard.tape,
                        &step_ops[pos],
                        feats,
                        congestion,
                        demand,
                        cfg.gamma,
                        ablation.jointing,
                    ));
                }
            });
            // Phase 3 (sequential): fixed-order reduction — losses and
            // gradients accumulate in sample order whatever the shard
            // count, making the step bitwise reproducible.
            let store = model.store_mut();
            for shard in &mut shards[..used] {
                for (loss, grads) in shard.results.drain(..) {
                    epoch_loss += loss;
                    for (id, grad) in grads {
                        store.param_mut(id).grad.add_scaled_inplace(&grad, 1.0);
                    }
                }
            }
            if cfg.grad_clip > 0.0 {
                store.clip_grad_norm(cfg.grad_clip);
            }
            opt.step(store);
            store.zero_grad();
        }
        history.epoch_loss.push(epoch_loss / prepared.len().max(1) as f32);
        if let Some(h) = &epoch_span {
            h.stop_us(t_epoch);
        }
        if let Some(c) = &epochs_total {
            c.inc();
        }
    }
    history
}

/// Evaluates a model: per-design F1/ACC at threshold 0.5, averaged.
pub fn evaluate(
    model: &dyn CongestionModel,
    samples: &[Sample],
    ablation: &AblationSpec,
) -> EvalResult {
    let mode = model.channel_mode();
    let mut designs = Vec::with_capacity(samples.len());
    for s in samples {
        let ops = GraphOps::from_graph(&s.graph, ablation);
        let feats = if ablation.gcell_features {
            s.features.clone()
        } else {
            s.features.without_gcell_features()
        };
        let pred = model.predict(&ops, &feats);
        let target = s.targets.congestion_channels(mode);
        let conf = Confusion::from_scores(pred.cls_prob.as_slice(), target.as_slice(), 0.5);
        designs.push(DesignEval {
            name: s.name.clone(),
            f1: conf.f1(),
            accuracy: conf.accuracy(),
            congestion_rate: s.targets.congestion_rate(mode),
        });
    }
    let n = designs.len().max(1) as f64;
    EvalResult {
        f1: designs.iter().map(|d| d.f1).sum::<f64>() / n,
        accuracy: designs.iter().map(|d| d.accuracy).sum::<f64>() / n,
        designs,
    }
}

/// Regression-branch quality over a sample set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegEval {
    /// Root-mean-square error of the demand prediction.
    pub rmse: f64,
    /// Pearson correlation between predicted and true demand.
    pub pearson: f64,
}

/// Evaluates the routing-demand regression head (Eq. 4) — RMSE and Pearson
/// correlation pooled over all G-cells of `samples`.
pub fn evaluate_regression(
    model: &dyn CongestionModel,
    samples: &[Sample],
    ablation: &AblationSpec,
) -> RegEval {
    let mode = model.channel_mode();
    let mut preds: Vec<f64> = Vec::new();
    let mut truths: Vec<f64> = Vec::new();
    for s in samples {
        let ops = GraphOps::from_graph(&s.graph, ablation);
        let feats = if ablation.gcell_features {
            s.features.clone()
        } else {
            s.features.without_gcell_features()
        };
        let pred = model.predict(&ops, &feats);
        let target = s.targets.demand_channels(mode);
        preds.extend(pred.reg.as_slice().iter().map(|&v| f64::from(v)));
        truths.extend(target.as_slice().iter().map(|&v| f64::from(v)));
    }
    let n = preds.len().max(1) as f64;
    let rmse = (preds.iter().zip(&truths).map(|(p, t)| (p - t) * (p - t)).sum::<f64>() / n).sqrt();
    let mp = preds.iter().sum::<f64>() / n;
    let mt = truths.iter().sum::<f64>() / n;
    let cov: f64 = preds.iter().zip(&truths).map(|(p, t)| (p - mp) * (t - mt)).sum();
    let vp: f64 = preds.iter().map(|p| (p - mp) * (p - mp)).sum();
    let vt: f64 = truths.iter().map(|t| (t - mt) * (t - mt)).sum();
    let pearson = if vp > 0.0 && vt > 0.0 { cov / (vp.sqrt() * vt.sqrt()) } else { 0.0 };
    RegEval { rmse, pearson }
}

/// Collects per-G-cell probabilities for one sample (used by the Figure 4
/// visualisation harness). Returns `(probabilities, binary labels)` for
/// the first channel.
pub fn predict_map(
    model: &dyn CongestionModel,
    sample: &Sample,
    ablation: &AblationSpec,
) -> (Vec<f32>, Vec<f32>) {
    let ops = GraphOps::from_graph(&sample.graph, ablation);
    let feats = if ablation.gcell_features {
        sample.features.clone()
    } else {
        sample.features.without_gcell_features()
    };
    let pred = model.predict(&ops, &feats);
    let prob: Vec<f32> = (0..pred.cls_prob.rows()).map(|r| pred.cls_prob[(r, 0)]).collect();
    let target = sample.targets.congestion_channels(ChannelMode::Uni);
    (prob, target.into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LhnnConfig;
    use crate::model::Lhnn;
    use lh_graph::{LhGraphConfig, Targets};
    use vlsi_netlist::synth::{generate, SynthConfig};
    use vlsi_place::GlobalPlacer;
    use vlsi_route::{route, CapacityConfig, RouterConfig};

    fn make_sample(seed: u64) -> Sample {
        let cfg = SynthConfig {
            name: format!("t{seed}"),
            seed,
            n_cells: 200,
            grid_nx: 8,
            grid_ny: 8,
            ..SynthConfig::default()
        };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        let rcfg = RouterConfig {
            capacity: CapacityConfig { h_tracks: 6.0, v_tracks: 6.0, ..Default::default() },
            ..Default::default()
        };
        let routed =
            route(&synth.circuit, &placed.placement, &grid, &synth.macro_rects, &rcfg).unwrap();
        let graph =
            LhGraph::build(&synth.circuit, &placed.placement, &grid, &LhGraphConfig::default())
                .unwrap();
        let features = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid)
            .unwrap()
            .normalized();
        let targets = Targets::from_labels(&routed.labels);
        Sample { name: cfg.name, graph, features, targets }
    }

    #[test]
    fn training_reduces_loss() {
        let samples = vec![make_sample(1), make_sample(2)];
        let mut model = Lhnn::new(LhnnConfig::default(), 0);
        let cfg = TrainConfig { epochs: 10, ..Default::default() };
        let hist = train(&mut model, &samples, &AblationSpec::full(), &cfg);
        assert_eq!(hist.epoch_loss.len(), 10);
        let first = hist.epoch_loss[0];
        let last = *hist.epoch_loss.last().unwrap();
        assert!(last < first, "loss did not fall: {first} -> {last}");
        assert!(last.is_finite());
    }

    #[test]
    fn training_is_deterministic() {
        let samples = vec![make_sample(3)];
        let cfg = TrainConfig { epochs: 3, ..Default::default() };
        let run = || {
            let mut model = Lhnn::new(LhnnConfig::default(), 5);
            train(&mut model, &samples, &AblationSpec::full(), &cfg).epoch_loss
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn evaluation_reports_per_design() {
        let samples = vec![make_sample(4), make_sample(5)];
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let eval = evaluate(&model, &samples, &AblationSpec::full());
        assert_eq!(eval.designs.len(), 2);
        assert!((0.0..=1.0).contains(&eval.f1));
        assert!((0.0..=1.0).contains(&eval.accuracy));
    }

    #[test]
    fn trained_model_beats_untrained() {
        let samples = vec![make_sample(6), make_sample(7)];
        let untrained = Lhnn::new(LhnnConfig::default(), 1);
        let before = evaluate(&untrained, &samples, &AblationSpec::full());
        let mut model = Lhnn::new(LhnnConfig::default(), 1);
        let cfg = TrainConfig { epochs: 30, ..Default::default() };
        train(&mut model, &samples, &AblationSpec::full(), &cfg);
        let after = evaluate(&model, &samples, &AblationSpec::full());
        // training-set fit: should clearly improve over random init
        assert!(
            after.f1 > before.f1 || after.accuracy > before.accuracy,
            "no improvement: f1 {} -> {}, acc {} -> {}",
            before.f1,
            after.f1,
            before.accuracy,
            after.accuracy
        );
        assert!(after.f1 > 0.3, "trained f1 too low: {}", after.f1);
    }

    #[test]
    fn regression_head_learns_demand() {
        let samples = vec![make_sample(12)];
        let mut model = Lhnn::new(LhnnConfig::default(), 0);
        let before = evaluate_regression(&model, &samples, &AblationSpec::full());
        let cfg = TrainConfig { epochs: 40, ..Default::default() };
        train(&mut model, &samples, &AblationSpec::full(), &cfg);
        let after = evaluate_regression(&model, &samples, &AblationSpec::full());
        assert!(after.rmse < before.rmse, "rmse {} -> {}", before.rmse, after.rmse);
        assert!(after.pearson > 0.5, "pearson too low: {}", after.pearson);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        // The headline determinism guarantee: for a fixed batch size, the
        // training trajectory is bitwise identical at any thread count.
        let samples = vec![make_sample(20), make_sample(21), make_sample(22), make_sample(23)];
        let run = |threads: usize, batch_size: usize, fanouts: Option<[usize; 3]>| {
            let mut model = Lhnn::new(LhnnConfig::default(), 9);
            let cfg = TrainConfig { epochs: 3, threads, batch_size, fanouts, ..Default::default() };
            train(&mut model, &samples, &AblationSpec::full(), &cfg).epoch_loss
        };
        for batch_size in [1usize, 2, 4] {
            let serial = run(1, batch_size, None);
            for threads in [2usize, 3, 4] {
                assert_eq!(
                    serial,
                    run(threads, batch_size, None),
                    "threads={threads} batch={batch_size} diverged from serial"
                );
            }
        }
        // neighbour sampling consumes the RNG before the parallel phase,
        // so sampled training is thread-count-invariant too
        let serial_sampled = run(1, 2, Some([6, 3, 2]));
        assert_eq!(serial_sampled, run(4, 2, Some([6, 3, 2])));
    }

    #[test]
    fn batched_training_still_learns() {
        let samples = vec![make_sample(24), make_sample(25)];
        let mut model = Lhnn::new(LhnnConfig::default(), 0);
        let cfg = TrainConfig { epochs: 10, batch_size: 2, threads: 2, ..Default::default() };
        let hist = train(&mut model, &samples, &AblationSpec::full(), &cfg);
        let first = hist.epoch_loss[0];
        let last = *hist.epoch_loss.last().unwrap();
        assert!(last < first, "batched loss did not fall: {first} -> {last}");
        assert!(last.is_finite());
    }

    #[test]
    fn sampled_training_runs() {
        let samples = vec![make_sample(8)];
        let mut model = Lhnn::new(LhnnConfig::default(), 0);
        let cfg = TrainConfig { epochs: 2, fanouts: Some([6, 3, 2]), ..Default::default() };
        let hist = train(&mut model, &samples, &AblationSpec::full(), &cfg);
        assert!(hist.epoch_loss.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn predict_map_matches_grid_size() {
        let s = make_sample(9);
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let (prob, label) = predict_map(&model, &s, &AblationSpec::full());
        assert_eq!(prob.len(), 64);
        assert_eq!(label.len(), 64);
    }
}
