//! The LHNN architecture (§4 of the paper, Figure 3).
//!
//! Three block types compose the network:
//!
//! * **FeatureGen** (Eq. 1–2): residual MLPs lift the raw 4-channel G-cell
//!   and G-net features to the hidden dimension; G-net embeddings are
//!   sum-aggregated onto G-cells through `G_nc = H` and fused by a linear
//!   layer — the learned analogue of crafted-feature generation.
//! * **HyperMP**: alternating G-cell → G-net (`B⁻¹Hᵀ`) and G-net → G-cell
//!   (`D⁻¹H`) message passing with residual transforms, fusing each
//!   direction with the FeatureGen embeddings — the topological receptive
//!   field.
//! * **LatticeMP**: mean aggregation over the 4-neighbour lattice
//!   (`P⁻¹A`) with a skip connection — the geometric receptive field.
//!
//! The encoder stacks 2×HyperMP + 1×LatticeMP; the joint phase stacks two
//! more LatticeMP blocks and ends in two heads: congestion classification
//! (logits; trained with the γ-weighted BCE of Eq. 5) and routing-demand
//! regression (Eq. 4).

use lh_graph::FeatureSet;
use neurograd::{Activation, Linear, Matrix, ParamStore, ResBlock, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::LhnnConfig;
use crate::congestion::{CongestionModel, ModelScratch};
use crate::incremental::{ActivationCache, ActivationState};
use crate::ops::GraphOps;

/// FeatureGen block (Eq. 1–2).
#[derive(Debug, Clone)]
pub(crate) struct FeatureGenBlock {
    pub(crate) f_c: ResBlock,
    pub(crate) f_n: ResBlock,
    pub(crate) phi_c: Linear,
    pub(crate) phi_n: Linear,
}

impl FeatureGenBlock {
    fn new(store: &mut ParamStore, cfg: &LhnnConfig, rng: &mut StdRng) -> Self {
        let h = cfg.hidden;
        Self {
            f_c: ResBlock::new(
                store,
                "featuregen.f_c",
                cfg.gcell_in_dim,
                h,
                h,
                Activation::Relu,
                rng,
            ),
            f_n: ResBlock::new(
                store,
                "featuregen.f_n",
                cfg.gnet_in_dim,
                h,
                h,
                Activation::Relu,
                rng,
            ),
            phi_c: Linear::new(store, "featuregen.phi_c", 2 * h, h, Activation::Relu, rng),
            phi_n: Linear::new(store, "featuregen.phi_n", h, h, Activation::Relu, rng),
        }
    }

    /// Returns `(V_c¹, V_n¹)`.
    fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        ops: &GraphOps,
        v_c0: Var,
        v_n0: Var,
    ) -> (Var, Var) {
        let fc = self.f_c.forward(tape, store, v_c0);
        let fn_ = self.f_n.forward(tape, store, v_n0);
        // Eq. 1: V_c1 = φ_c( f_c(V_c0) ∥ G_nc f_n(V_n0) ), G_nc = H (sum)
        let agg = tape.spmm(std::sync::Arc::clone(&ops.gnc_sum), fn_);
        let cat = tape.concat_cols(fc, agg);
        let v_c1 = self.phi_c.forward(tape, store, cat);
        // Eq. 2: V_n1 = φ_n( f_n(V_n0) )
        let v_n1 = self.phi_n.forward(tape, store, fn_);
        (v_c1, v_n1)
    }
}

/// HyperMP block: one G-cell → G-net and one G-net → G-cell half-step.
#[derive(Debug, Clone)]
pub(crate) struct HyperMpBlock {
    pub(crate) res_c_in: ResBlock,
    pub(crate) res_n_prev: ResBlock,
    pub(crate) fuse_n: Linear,
    pub(crate) res_n_in: ResBlock,
    pub(crate) res_c_prev: ResBlock,
    pub(crate) fuse_c: Linear,
}

impl HyperMpBlock {
    fn new(store: &mut ParamStore, name: &str, hidden: usize, rng: &mut StdRng) -> Self {
        let h = hidden;
        Self {
            res_c_in: ResBlock::new(
                store,
                &format!("{name}.res_c_in"),
                h,
                h,
                h,
                Activation::Relu,
                rng,
            ),
            res_n_prev: ResBlock::new(
                store,
                &format!("{name}.res_n_prev"),
                h,
                h,
                h,
                Activation::Relu,
                rng,
            ),
            fuse_n: Linear::new(store, &format!("{name}.fuse_n"), 2 * h, h, Activation::Relu, rng),
            res_n_in: ResBlock::new(
                store,
                &format!("{name}.res_n_in"),
                h,
                h,
                h,
                Activation::Relu,
                rng,
            ),
            res_c_prev: ResBlock::new(
                store,
                &format!("{name}.res_c_prev"),
                h,
                h,
                h,
                Activation::Relu,
                rng,
            ),
            fuse_c: Linear::new(store, &format!("{name}.fuse_c"), 2 * h, h, Activation::Relu, rng),
        }
    }

    /// Returns `(V_c^L, V_n^L)` from `(V_c^{L-1}, V_n^{L-1}, V_c¹, V_n¹)`.
    fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        ops: &GraphOps,
        v_c: Var,
        v_n: Var,
        v_c1: Var,
        v_n1: Var,
    ) -> (Var, Var) {
        // --- G-cell to G-net ---
        let hc = self.res_c_in.forward(tape, store, v_c);
        let msg_n = tape.spmm(std::sync::Arc::clone(&ops.gcn_mean), hc); // B⁻¹Hᵀ
        let cat_n = tape.concat_cols(msg_n, v_n1);
        let fused_n = self.fuse_n.forward(tape, store, cat_n);
        let prev_n = self.res_n_prev.forward(tape, store, v_n);
        let v_n_next = tape.add(fused_n, prev_n);
        // --- G-net to G-cell (symmetric, using the updated G-net state) ---
        let hn = self.res_n_in.forward(tape, store, v_n_next);
        let msg_c = tape.spmm(std::sync::Arc::clone(&ops.gnc_mean), hn); // D⁻¹H
        let cat_c = tape.concat_cols(msg_c, v_c1);
        let fused_c = self.fuse_c.forward(tape, store, cat_c);
        let prev_c = self.res_c_prev.forward(tape, store, v_c);
        let v_c_next = tape.add(fused_c, prev_c);
        (v_c_next, v_n_next)
    }
}

/// LatticeMP block: lattice mean aggregation with a skip connection.
#[derive(Debug, Clone)]
pub(crate) struct LatticeMpBlock {
    pub(crate) res: ResBlock,
    pub(crate) lin: Linear,
}

impl LatticeMpBlock {
    fn new(store: &mut ParamStore, name: &str, hidden: usize, rng: &mut StdRng) -> Self {
        Self {
            res: ResBlock::new(
                store,
                &format!("{name}.res"),
                hidden,
                hidden,
                hidden,
                Activation::Relu,
                rng,
            ),
            lin: Linear::new(store, &format!("{name}.lin"), hidden, hidden, Activation::Relu, rng),
        }
    }

    fn forward(&self, tape: &mut Tape, store: &ParamStore, ops: &GraphOps, v_c: Var) -> Var {
        let h = self.res.forward(tape, store, v_c);
        let msg = tape.spmm(std::sync::Arc::clone(&ops.lattice_mean), h); // P⁻¹A
        let out = self.lin.forward(tape, store, msg);
        tape.add(out, v_c) // skip connection
    }
}

/// Model outputs for one graph.
#[derive(Debug, Clone)]
pub struct LhnnOutput {
    /// Congestion logits, `N_c × channels` (apply sigmoid for
    /// probabilities).
    pub cls_logits: Var,
    /// Routing-demand regression, `N_c × channels`.
    pub reg: Var,
}

/// Dense (tape-free) predictions.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Congestion probabilities, `N_c × channels`.
    pub cls_prob: Matrix,
    /// Demand regression values, `N_c × channels`.
    pub reg: Matrix,
}

/// Persistent full-size intermediate buffers for the fused (tape-free)
/// inference path, sized to one `(n_c, n_n, hidden, channels)` shape.
///
/// The fused forward ping-pongs through these instead of allocating tape
/// nodes: every matrix is wholly overwritten by the kernel that produces
/// it before anything reads it, so stale contents from the previous
/// request are never observable.
#[derive(Debug)]
struct InferenceBuffers {
    n_c: usize,
    n_n: usize,
    hidden: usize,
    channels: usize,
    // FeatureGen outputs (live across the whole forward).
    fc: Matrix,
    fn_: Matrix,
    v_c1: Matrix,
    v_n1: Matrix,
    // G-cell-side ping-pong.
    v_c: Matrix,
    tmp_c: Matrix,
    msg_c: Matrix,
    prev_c: Matrix,
    cat_c: Matrix,
    sc_c: Matrix,
    sy_c: Matrix,
    // G-net-side ping-pong.
    v_n: Matrix,
    tmp_n: Matrix,
    msg_n: Matrix,
    prev_n: Matrix,
    cat_n: Matrix,
    sc_n: Matrix,
    sy_n: Matrix,
    // Heads.
    cls: Matrix,
    reg: Matrix,
}

impl InferenceBuffers {
    fn new(n_c: usize, n_n: usize, hidden: usize, channels: usize) -> Self {
        let zc = || Matrix::zeros(n_c, hidden);
        let zn = || Matrix::zeros(n_n, hidden);
        Self {
            n_c,
            n_n,
            hidden,
            channels,
            fc: zc(),
            fn_: zn(),
            v_c1: zc(),
            v_n1: zn(),
            v_c: zc(),
            tmp_c: zc(),
            msg_c: zc(),
            prev_c: zc(),
            cat_c: Matrix::zeros(n_c, 2 * hidden),
            sc_c: zc(),
            sy_c: zc(),
            v_n: zn(),
            tmp_n: zn(),
            msg_n: zn(),
            prev_n: zn(),
            cat_n: Matrix::zeros(n_n, 2 * hidden),
            sc_n: zn(),
            sy_n: zn(),
            cls: Matrix::zeros(n_c, channels),
            reg: Matrix::zeros(n_c, channels),
        }
    }

    fn elems(&self) -> usize {
        let m = |x: &Matrix| x.rows() * x.cols();
        m(&self.fc)
            + m(&self.fn_)
            + m(&self.v_c1)
            + m(&self.v_n1)
            + m(&self.v_c)
            + m(&self.tmp_c)
            + m(&self.msg_c)
            + m(&self.prev_c)
            + m(&self.cat_c)
            + m(&self.sc_c)
            + m(&self.sy_c)
            + m(&self.v_n)
            + m(&self.tmp_n)
            + m(&self.msg_n)
            + m(&self.prev_n)
            + m(&self.cat_n)
            + m(&self.sc_n)
            + m(&self.sy_n)
            + m(&self.cls)
            + m(&self.reg)
    }
}

/// Reusable per-thread scratch state for tape-free inference.
///
/// [`Lhnn::predict_into`] runs the fused forward through this scratch's
/// persistent intermediate buffers, so a long-lived worker thread serves
/// steady-state requests with **zero** heap allocation (buffers are
/// rebuilt only when the request shape or model dimensions change). One
/// scratch belongs to one thread at a time; it is `Send`, so a pool can
/// move it between workers.
#[derive(Debug, Default)]
pub struct InferenceScratch {
    buffers: Option<InferenceBuffers>,
}

impl InferenceScratch {
    /// Creates an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total `f32` elements held by the persistent inference buffers
    /// (0 before the first forward; capacity diagnostics).
    pub fn buffer_elems(&self) -> usize {
        self.buffers.as_ref().map_or(0, InferenceBuffers::elems)
    }

    /// Returns buffers matching the given shape, rebuilding on mismatch.
    fn buffers_for(&mut self, model: &Lhnn, n_c: usize, n_n: usize) -> &mut InferenceBuffers {
        let h = model.cfg.hidden;
        let ch = model.cfg.channel_mode.channels();
        let ok = self
            .buffers
            .as_ref()
            .is_some_and(|b| b.n_c == n_c && b.n_n == n_n && b.hidden == h && b.channels == ch);
        if !ok {
            self.buffers = Some(InferenceBuffers::new(n_c, n_n, h, ch));
        }
        self.buffers.as_mut().expect("buffers just ensured")
    }
}

/// The LHNN model: parameters plus architecture.
#[derive(Debug)]
pub struct Lhnn {
    pub(crate) cfg: LhnnConfig,
    pub(crate) store: ParamStore,
    pub(crate) featuregen: FeatureGenBlock,
    pub(crate) hypermp: Vec<HyperMpBlock>,
    pub(crate) lattice_encode: Vec<LatticeMpBlock>,
    pub(crate) lattice_joint: Vec<LatticeMpBlock>,
    pub(crate) cls_head: Linear,
    pub(crate) reg_head: Linear,
}

impl Lhnn {
    /// Creates a model with seeded initialisation.
    pub fn new(cfg: LhnnConfig, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let featuregen = FeatureGenBlock::new(&mut store, &cfg, &mut rng);
        let hypermp = (0..cfg.hypermp_layers)
            .map(|i| HyperMpBlock::new(&mut store, &format!("hypermp{i}"), cfg.hidden, &mut rng))
            .collect();
        let lattice_encode = (0..cfg.latticemp_encode_layers)
            .map(|i| {
                LatticeMpBlock::new(&mut store, &format!("lattice_enc{i}"), cfg.hidden, &mut rng)
            })
            .collect();
        let lattice_joint = (0..cfg.latticemp_joint_layers)
            .map(|i| {
                LatticeMpBlock::new(&mut store, &format!("lattice_joint{i}"), cfg.hidden, &mut rng)
            })
            .collect();
        let out = cfg.channel_mode.channels();
        let cls_head =
            Linear::new(&mut store, "head.cls", cfg.hidden, out, Activation::Identity, &mut rng);
        let reg_head =
            Linear::new(&mut store, "head.reg", cfg.hidden, out, Activation::Identity, &mut rng);
        Self { cfg, store, featuregen, hypermp, lattice_encode, lattice_joint, cls_head, reg_head }
    }

    /// The model configuration.
    pub fn config(&self) -> &LhnnConfig {
        &self.cfg
    }

    /// The parameter store (read access).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// The parameter store (mutable, for the optimiser).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Applies this model's [`LhnnConfig::threads`] request to the shared
    /// compute pool (no-op when the knob is 0 or the pool already has that
    /// width). Called by the CLI after constructing a model and by the
    /// serving registry when a model is registered.
    pub fn configure_pool(&self) {
        if self.cfg.threads > 0 {
            neurograd::pool::configure_threads(self.cfg.threads);
        }
    }

    /// Runs the forward pass on a tape.
    ///
    /// # Panics
    ///
    /// Panics if feature dimensions disagree with the configuration.
    pub fn forward(&self, tape: &mut Tape, ops: &GraphOps, features: &FeatureSet) -> LhnnOutput {
        assert_eq!(features.gcell.cols(), self.cfg.gcell_in_dim, "g-cell feature dim mismatch");
        assert_eq!(features.gnet.cols(), self.cfg.gnet_in_dim, "g-net feature dim mismatch");
        let v_c0 = tape.leaf(features.gcell.clone());
        let v_n0 = tape.leaf(features.gnet.clone());

        // Encoding phase.
        let (v_c1, v_n1) = self.featuregen.forward(tape, &self.store, ops, v_c0, v_n0);
        let (mut v_c, mut v_n) = (v_c1, v_n1);
        for block in &self.hypermp {
            let (c, n) = block.forward(tape, &self.store, ops, v_c, v_n, v_c1, v_n1);
            v_c = c;
            v_n = n;
        }
        for block in &self.lattice_encode {
            v_c = block.forward(tape, &self.store, ops, v_c);
        }
        // Joint learning phase.
        for block in &self.lattice_joint {
            v_c = block.forward(tape, &self.store, ops, v_c);
        }
        let cls_logits = self.cls_head.forward(tape, &self.store, v_c);
        let reg = self.reg_head.forward(tape, &self.store, v_c);
        LhnnOutput { cls_logits, reg }
    }

    /// Inference: returns dense probability and regression maps.
    pub fn predict(&self, ops: &GraphOps, features: &FeatureSet) -> Prediction {
        self.predict_into(ops, features, &mut InferenceScratch::new())
    }

    /// Inference re-using a caller-owned [`InferenceScratch`]: the fused,
    /// tape-free forward. This is the hot path of the serving worker pool.
    ///
    /// Instead of recording tape nodes, each layer runs one fused
    /// matmul→bias→activation kernel ([`neurograd::kernels::linear_act_into`])
    /// into persistent scratch buffers. Bitwise identical to running
    /// [`Lhnn::forward`] on a tape plus a sigmoid: every fused step
    /// preserves the per-element operation sequence of its taped
    /// counterpart (accumulate in `k` order, add bias, apply
    /// [`Activation::eval`] — the exact float expressions of the tape
    /// ops), as the `fused_predict_matches_taped_forward` test pins.
    ///
    /// # Panics
    ///
    /// Panics if feature dimensions disagree with the configuration.
    pub fn predict_into(
        &self,
        ops: &GraphOps,
        features: &FeatureSet,
        scratch: &mut InferenceScratch,
    ) -> Prediction {
        use neurograd::kernels;

        assert_eq!(features.gcell.cols(), self.cfg.gcell_in_dim, "g-cell feature dim mismatch");
        assert_eq!(features.gnet.cols(), self.cfg.gnet_in_dim, "g-net feature dim mismatch");
        let n_c = features.gcell.rows();
        let n_n = features.gnet.rows();
        let store = &self.store;
        let b = scratch.buffers_for(self, n_c, n_n);

        // --- FeatureGen (Eq. 1–2) ---
        let fg = &self.featuregen;
        fg.f_c.forward_into(store, &features.gcell, &mut b.sc_c, &mut b.sy_c, &mut b.fc);
        fg.f_n.forward_into(store, &features.gnet, &mut b.sc_n, &mut b.sy_n, &mut b.fn_);
        // V_c1 = φ_c( f_c(V_c0) ∥ G_nc f_n(V_n0) ), G_nc = H (sum)
        kernels::spmm_into(&ops.gnc_sum, &b.fn_, b.msg_c.as_mut_slice());
        kernels::concat_into(&b.fc, &b.msg_c, b.cat_c.as_mut_slice());
        fg.phi_c.forward_into(store, &b.cat_c, &mut b.v_c1);
        // V_n1 = φ_n( f_n(V_n0) )
        fg.phi_n.forward_into(store, &b.fn_, &mut b.v_n1);

        b.v_c.as_mut_slice().copy_from_slice(b.v_c1.as_slice());
        b.v_n.as_mut_slice().copy_from_slice(b.v_n1.as_slice());

        // --- HyperMP ---
        for block in &self.hypermp {
            // G-cell to G-net.
            block.res_c_in.forward_into(store, &b.v_c, &mut b.sc_c, &mut b.sy_c, &mut b.tmp_c);
            kernels::spmm_into(&ops.gcn_mean, &b.tmp_c, b.msg_n.as_mut_slice()); // B⁻¹Hᵀ
            kernels::concat_into(&b.msg_n, &b.v_n1, b.cat_n.as_mut_slice());
            block.fuse_n.forward_into(store, &b.cat_n, &mut b.tmp_n);
            block.res_n_prev.forward_into(store, &b.v_n, &mut b.sc_n, &mut b.sy_n, &mut b.prev_n);
            // v_n ← fused_n + prev_n (operand order of `tape.add`).
            kernels::zip_into(
                b.tmp_n.as_slice(),
                b.prev_n.as_slice(),
                b.v_n.as_mut_slice(),
                |h, p| h + p,
            );
            // G-net to G-cell (symmetric, using the updated G-net state).
            block.res_n_in.forward_into(store, &b.v_n, &mut b.sc_n, &mut b.sy_n, &mut b.tmp_n);
            kernels::spmm_into(&ops.gnc_mean, &b.tmp_n, b.msg_c.as_mut_slice()); // D⁻¹H
            kernels::concat_into(&b.msg_c, &b.v_c1, b.cat_c.as_mut_slice());
            block.fuse_c.forward_into(store, &b.cat_c, &mut b.tmp_c);
            block.res_c_prev.forward_into(store, &b.v_c, &mut b.sc_c, &mut b.sy_c, &mut b.prev_c);
            kernels::zip_into(
                b.tmp_c.as_slice(),
                b.prev_c.as_slice(),
                b.v_c.as_mut_slice(),
                |h, p| h + p,
            );
        }

        // --- LatticeMP (encode then joint) ---
        for block in self.lattice_encode.iter().chain(&self.lattice_joint) {
            block.res.forward_into(store, &b.v_c, &mut b.sc_c, &mut b.sy_c, &mut b.tmp_c);
            kernels::spmm_into(&ops.lattice_mean, &b.tmp_c, b.msg_c.as_mut_slice()); // P⁻¹A
            block.lin.forward_into(store, &b.msg_c, &mut b.prev_c);
            // v_c ← lin_out + v_c (skip connection, `tape.add(out, v_c)`).
            kernels::zip_inplace(b.prev_c.as_slice(), b.v_c.as_mut_slice(), |o, v| o + v);
        }

        // --- Heads ---
        self.cls_head.forward_into(store, &b.v_c, &mut b.cls);
        kernels::map_inplace(b.cls.as_mut_slice(), neurograd::stable_sigmoid);
        self.reg_head.forward_into(store, &b.v_c, &mut b.reg);

        Prediction { cls_prob: b.cls.clone(), reg: b.reg.clone() }
    }

    /// A content fingerprint over the architecture and every weight tensor.
    ///
    /// Serving registries use this as the model *version*: retraining,
    /// fine-tuning or loading a different checkpoint all change the value,
    /// so stale cache entries can never be served for updated weights.
    pub fn weights_fingerprint(&self) -> u64 {
        let mut h = neurograd::Fnv64::new();
        h.write_usize(self.cfg.hidden);
        h.write_usize(self.cfg.hypermp_layers);
        h.write_usize(self.cfg.latticemp_encode_layers);
        h.write_usize(self.cfg.latticemp_joint_layers);
        h.write_usize(self.cfg.gcell_in_dim);
        h.write_usize(self.cfg.gnet_in_dim);
        h.write_usize(self.cfg.channel_mode.channels());
        for p in self.store.iter() {
            h.write_str(&p.name);
            p.value.hash_into(&mut h);
        }
        h.finish()
    }
}

impl ModelScratch for InferenceScratch {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

impl CongestionModel for Lhnn {
    fn kind(&self) -> &'static str {
        "lhnn"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn gcell_in_dim(&self) -> usize {
        self.cfg.gcell_in_dim
    }

    fn gnet_in_dim(&self) -> usize {
        self.cfg.gnet_in_dim
    }

    fn hidden(&self) -> usize {
        self.cfg.hidden
    }

    fn channel_mode(&self) -> lh_graph::ChannelMode {
        self.cfg.channel_mode
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn configure_pool(&self) {
        Lhnn::configure_pool(self);
    }

    fn weights_fingerprint(&self) -> u64 {
        Lhnn::weights_fingerprint(self)
    }

    fn forward(&self, tape: &mut Tape, ops: &GraphOps, features: &FeatureSet) -> LhnnOutput {
        Lhnn::forward(self, tape, ops, features)
    }

    fn new_scratch(&self) -> Box<dyn ModelScratch> {
        Box::new(InferenceScratch::new())
    }

    fn predict_with(
        &self,
        ops: &GraphOps,
        features: &FeatureSet,
        scratch: &mut dyn ModelScratch,
    ) -> Prediction {
        match scratch.as_any_mut().downcast_mut::<InferenceScratch>() {
            Some(s) => self.predict_into(ops, features, s),
            None => self.predict_into(ops, features, &mut InferenceScratch::new()),
        }
    }

    fn new_activation_cache(
        &self,
        weights_version: u64,
        n_c: usize,
        n_n: usize,
    ) -> Box<dyn ActivationCache> {
        Box::new(ActivationState::new(self, weights_version, n_c, n_n))
    }

    fn save_to(&self, w: &mut dyn std::io::Write) -> Result<(), crate::serialize::ModelIoError> {
        self.save(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AblationSpec;
    use lh_graph::{ChannelMode, LhGraph, LhGraphConfig};
    use vlsi_netlist::synth::{generate, SynthConfig};
    use vlsi_place::GlobalPlacer;

    fn sample() -> (GraphOps, FeatureSet) {
        let cfg = SynthConfig { n_cells: 150, grid_nx: 8, grid_ny: 8, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        let graph =
            LhGraph::build(&synth.circuit, &placed.placement, &grid, &LhGraphConfig::default())
                .unwrap();
        let feats = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid)
            .unwrap()
            .normalized();
        (GraphOps::from_graph(&graph, &AblationSpec::full()), feats)
    }

    #[test]
    fn forward_shapes_uni() {
        let (ops, feats) = sample();
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let pred = model.predict(&ops, &feats);
        assert_eq!(pred.cls_prob.shape(), (ops.num_gcells, 1));
        assert_eq!(pred.reg.shape(), (ops.num_gcells, 1));
        assert!(pred.cls_prob.as_slice().iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn forward_shapes_duo() {
        let (ops, feats) = sample();
        let cfg = LhnnConfig { channel_mode: ChannelMode::Duo, ..Default::default() };
        let model = Lhnn::new(cfg, 0);
        let pred = model.predict(&ops, &feats);
        assert_eq!(pred.cls_prob.shape(), (ops.num_gcells, 2));
    }

    #[test]
    fn predict_into_reuses_scratch_and_matches_predict() {
        let (ops, feats) = sample();
        let model = Lhnn::new(LhnnConfig::default(), 3);
        let direct = model.predict(&ops, &feats);
        let mut scratch = InferenceScratch::new();
        for _ in 0..3 {
            let again = model.predict_into(&ops, &feats, &mut scratch);
            // bitwise equality — tolerance 0.0
            assert!(direct.cls_prob.approx_eq(&again.cls_prob, 0.0));
            assert!(direct.reg.approx_eq(&again.reg, 0.0));
        }
        assert!(scratch.buffer_elems() > 0);
    }

    #[test]
    fn fused_predict_matches_taped_forward() {
        // The fused tape-free inference path must stay bitwise identical
        // to recording the forward on a tape and applying the sigmoid —
        // the invariant every serving parity pin ultimately rests on.
        let (ops, feats) = sample();
        let model = Lhnn::new(LhnnConfig::default(), 5);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &ops, &feats);
        let prob = tape.sigmoid(out.cls_logits);
        let taped_prob = tape.value(prob).clone();
        let taped_reg = tape.value(out.reg).clone();
        let fused = model.predict(&ops, &feats);
        assert!(taped_prob.approx_eq(&fused.cls_prob, 0.0));
        assert!(taped_reg.approx_eq(&fused.reg, 0.0));
    }

    #[test]
    fn weights_fingerprint_tracks_weights_and_config() {
        let a = Lhnn::new(LhnnConfig::default(), 0);
        let b = Lhnn::new(LhnnConfig::default(), 0);
        assert_eq!(a.weights_fingerprint(), b.weights_fingerprint());
        let other_seed = Lhnn::new(LhnnConfig::default(), 1);
        assert_ne!(a.weights_fingerprint(), other_seed.weights_fingerprint());
        let other_cfg = Lhnn::new(LhnnConfig { hidden: 16, ..Default::default() }, 0);
        assert_ne!(a.weights_fingerprint(), other_cfg.weights_fingerprint());
        // mutating any tensor changes the version
        let mut c = Lhnn::new(LhnnConfig::default(), 0);
        let id = c.store().id_at(0);
        c.store_mut().param_mut(id).value.as_mut_slice()[0] += 1.0;
        assert_ne!(a.weights_fingerprint(), c.weights_fingerprint());
    }

    #[test]
    fn threads_knob_changes_neither_fingerprint_nor_predictions() {
        let (ops, feats) = sample();
        let base = Lhnn::new(LhnnConfig::default(), 2);
        let threaded = Lhnn::new(LhnnConfig { threads: 4, ..Default::default() }, 2);
        assert_eq!(
            base.weights_fingerprint(),
            threaded.weights_fingerprint(),
            "threads is a runtime knob, not architecture"
        );
        let a = base.predict(&ops, &feats);
        let b = threaded.predict(&ops, &feats);
        assert!(a.cls_prob.approx_eq(&b.cls_prob, 0.0));
        assert!(a.reg.approx_eq(&b.reg, 0.0));
    }

    #[test]
    fn init_is_seed_deterministic() {
        let (ops, feats) = sample();
        let a = Lhnn::new(LhnnConfig::default(), 7).predict(&ops, &feats);
        let b = Lhnn::new(LhnnConfig::default(), 7).predict(&ops, &feats);
        let c = Lhnn::new(LhnnConfig::default(), 8).predict(&ops, &feats);
        assert!(a.cls_prob.approx_eq(&b.cls_prob, 0.0));
        assert!(!a.cls_prob.approx_eq(&c.cls_prob, 1e-6));
    }

    #[test]
    fn ablated_models_still_run() {
        let cfg = SynthConfig { n_cells: 150, grid_nx: 8, grid_ny: 8, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        let graph =
            LhGraph::build(&synth.circuit, &placed.placement, &grid, &LhGraphConfig::default())
                .unwrap();
        let feats = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid)
            .unwrap()
            .normalized();
        let model = Lhnn::new(LhnnConfig::default(), 0);
        for spec in [
            AblationSpec::without_featuregen(),
            AblationSpec::without_hypermp(),
            AblationSpec::without_latticemp(),
        ] {
            let ops = GraphOps::from_graph(&graph, &spec);
            let pred = model.predict(&ops, &feats);
            assert!(pred.cls_prob.is_finite(), "{spec:?} produced non-finite output");
        }
    }

    #[test]
    fn parameter_count_is_stable_across_ablation() {
        // edge ablations must not change the parameter count
        let full = Lhnn::new(LhnnConfig::default(), 0).num_parameters();
        let again = Lhnn::new(LhnnConfig::default(), 1).num_parameters();
        assert_eq!(full, again);
        assert!(full > 10_000, "suspiciously small model: {full}");
    }

    #[test]
    fn gradient_flows_to_all_parameters() {
        let (ops, feats) = sample();
        let mut model = Lhnn::new(LhnnConfig::default(), 0);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &ops, &feats);
        let s1 = tape.sum_all(out.cls_logits);
        let s2 = tape.sum_all(out.reg);
        let loss = tape.add(s1, s2);
        tape.backward(loss);
        model.store_mut().absorb_grads(&mut tape);
        let with_grad =
            model.store().iter().filter(|p| p.grad.as_slice().iter().any(|&g| g != 0.0)).count();
        let total = model.store().len();
        // every parameter tensor should receive gradient (relu dead units
        // can zero a few, allow some slack)
        assert!(
            with_grad * 10 >= total * 8,
            "only {with_grad}/{total} parameter tensors got gradients"
        );
    }
}
