//! The [`CongestionModel`] trait: the model-agnostic contract the whole
//! serving stack (registry, worker pool, prediction cache, sessions,
//! incremental forward) is written against.
//!
//! Everything above `lhnn-core` used to be [`crate::Lhnn`]-typed; this
//! module is the seam that de-couples it. A congestion predictor is
//! anything that can
//!
//! * run a **taped forward** (for the data-parallel trainer),
//! * run a **fused, tape-free forward** through model-owned scratch
//!   buffers ([`CongestionModel::predict_with`] — the serving hot path),
//! * produce an **activation cache** for the bounded-radius incremental
//!   forward ([`crate::IncrementalForward`]): per-layer full-size
//!   activations plus masked row-subset refresh paths,
//! * fingerprint its weights (the registry's cache-coherent *version*),
//! * and serialise itself under a kind tag (`.lhnn` v2).
//!
//! Two architectures implement it today: [`crate::Lhnn`] (kind `lhnn`)
//! and [`crate::HybridNet`] (kind `hybridnet`). Sibling models (VeriHGN,
//! DE-HNN, …) plug in by implementing this trait — the engine, sessions,
//! CLI and benches ride along unchanged.
//!
//! # Bitwise contract
//!
//! Implementations must keep the three forward paths — taped
//! ([`CongestionModel::forward`] + sigmoid), fused
//! ([`CongestionModel::predict_with`]) and masked row-subset (the
//! [`ActivationCache`] refreshes) — **bitwise identical** on the same
//! inputs at any thread count. Every serving parity proptest (served ==
//! direct, spliced == full) rests on that invariant.

use std::any::Any;
use std::io::Write;

use lh_graph::{ChannelMode, FeatureSet};
use neurograd::{ParamStore, Tape};

use crate::incremental::ActivationCache;
use crate::model::{LhnnOutput, Prediction};
use crate::ops::GraphOps;
use crate::serialize::ModelIoError;

/// Model-owned scratch state for the fused (tape-free) forward.
///
/// Each architecture defines its own buffer layout (e.g.
/// [`crate::InferenceScratch`] for [`crate::Lhnn`]); the serving workers
/// hold them behind this trait in a [`ScratchSet`] so one long-lived
/// worker thread can serve a mixed model zoo with zero steady-state
/// allocation per kind.
pub trait ModelScratch: Send + std::fmt::Debug {
    /// Downcast access for the owning model's `predict_with`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The congestion-prediction model contract (see the module docs).
///
/// Object-safe: the registry holds `Box<dyn CongestionModel>` and the
/// engine, sessions and trainer all work through `&dyn CongestionModel`.
pub trait CongestionModel: Send + Sync + std::fmt::Debug {
    /// Stable architecture tag (`"lhnn"`, `"hybridnet"`, …): the `.lhnn`
    /// serialization kind, the scratch-slot key and the `kind=` metrics
    /// label. Must be unique per architecture.
    fn kind(&self) -> &'static str;

    /// Downcast access (activation caches use it to reach their own
    /// model's concrete layers).
    fn as_any(&self) -> &dyn Any;

    /// Expected G-cell input feature width.
    fn gcell_in_dim(&self) -> usize;

    /// Expected G-net input feature width.
    fn gnet_in_dim(&self) -> usize;

    /// Hidden dimension (must be non-zero; registries validate it).
    fn hidden(&self) -> usize;

    /// Output channel mode (uni/duo).
    fn channel_mode(&self) -> ChannelMode;

    /// The parameter store (read access).
    fn store(&self) -> &ParamStore;

    /// The parameter store (mutable, for the optimiser).
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Applies the model's thread-count request to the shared compute
    /// pool (no-op when unset).
    fn configure_pool(&self);

    /// Content fingerprint over architecture + every weight tensor — the
    /// serving *version*. Must change whenever predictions could, and
    /// must never collide across kinds (hash the kind into it).
    fn weights_fingerprint(&self) -> u64;

    /// Runs the forward pass on a tape (the training path).
    ///
    /// # Panics
    ///
    /// Panics if feature dimensions disagree with the configuration.
    fn forward(&self, tape: &mut Tape, ops: &GraphOps, features: &FeatureSet) -> LhnnOutput;

    /// A fresh scratch for [`CongestionModel::predict_with`].
    fn new_scratch(&self) -> Box<dyn ModelScratch>;

    /// The fused, tape-free forward through caller-owned scratch — the
    /// serving hot path. `scratch` should come from this model's
    /// [`CongestionModel::new_scratch`] (a [`ScratchSet`] guarantees
    /// that); on a foreign scratch the model must still answer correctly
    /// (falling back to a fresh local scratch).
    fn predict_with(
        &self,
        ops: &GraphOps,
        features: &FeatureSet,
        scratch: &mut dyn ModelScratch,
    ) -> Prediction;

    /// A zeroed full-size activation cache for the incremental forward,
    /// shaped to `(n_c, n_n)` and stamped with `weights_version`.
    fn new_activation_cache(
        &self,
        weights_version: u64,
        n_c: usize,
        n_n: usize,
    ) -> Box<dyn ActivationCache>;

    /// Writes the model (kind tag + architecture + weights) in the
    /// `.lhnn` v2 format; [`crate::load_model`] restores it.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn save_to(&self, w: &mut dyn Write) -> Result<(), ModelIoError>;

    /// Number of output channels.
    fn channels(&self) -> usize {
        self.channel_mode().channels()
    }

    /// Number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.store().num_scalars()
    }

    /// One-shot inference through a fresh scratch (convenience; hot paths
    /// should reuse a [`ScratchSet`]).
    fn predict(&self, ops: &GraphOps, features: &FeatureSet) -> Prediction {
        let mut scratch = self.new_scratch();
        self.predict_with(ops, features, scratch.as_mut())
    }
}

/// A worker's per-kind scratch pool: one [`ModelScratch`] per model kind,
/// created lazily on first use and reused for every later request of that
/// kind — so a single long-lived worker serves a mixed zoo with the same
/// zero-steady-state-allocation property the `Lhnn`-only scratch had.
#[derive(Debug, Default)]
pub struct ScratchSet {
    slots: Vec<(&'static str, Box<dyn ModelScratch>)>,
}

impl ScratchSet {
    /// An empty set; slots appear as kinds are first served.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scratch slot for `model`'s kind, created on first use.
    pub fn for_model(&mut self, model: &dyn CongestionModel) -> &mut dyn ModelScratch {
        let kind = model.kind();
        let idx = match self.slots.iter().position(|(k, _)| *k == kind) {
            Some(i) => i,
            None => {
                self.slots.push((kind, model.new_scratch()));
                self.slots.len() - 1
            }
        };
        self.slots[idx].1.as_mut()
    }

    /// Fused inference through the model's own pooled scratch.
    pub fn predict(
        &mut self,
        model: &dyn CongestionModel,
        ops: &GraphOps,
        features: &FeatureSet,
    ) -> Prediction {
        let scratch = self.for_model(model);
        model.predict_with(ops, features, scratch)
    }

    /// Number of distinct kinds this set holds scratch for.
    pub fn kinds(&self) -> usize {
        self.slots.len()
    }
}
