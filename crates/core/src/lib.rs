//! `lhnn` — the Lattice Hypergraph Neural Network for VLSI congestion
//! prediction (Wang et al., DAC 2022), reproduced in pure Rust.
//!
//! The crate implements section 4 of the paper on top of the
//! [`lh_graph`] formulation:
//!
//! * [`Lhnn`] — FeatureGen + stacked HyperMP + LatticeMP blocks with joint
//!   congestion-classification and demand-regression heads,
//! * [`loss`] — the joint objective of Eq. 3–5 with the γ label-balance
//!   weighting,
//! * [`train`] / [`evaluate`] — the paper's training protocol and
//!   per-design F1/ACC evaluation,
//! * [`AblationSpec`] — the component switches of the Table 3 ablation,
//! * [`ops`] — graph operators with ablation masking and the paper's
//!   {6,3,2} neighbour-sampling fanouts.
//!
//! # Example
//!
//! See `examples/quickstart.rs` at the workspace root for the end-to-end
//! pipeline (generate → place → route → graph → train → predict).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod congestion;
pub mod hybrid;
pub mod incremental;
pub mod loss;
pub mod model;
pub mod ops;
pub mod pipeline;
pub mod serialize;
pub mod trainer;

pub use config::{AblationSpec, LhnnConfig, TrainConfig};
pub use congestion::{CongestionModel, ModelScratch, ScratchSet};
pub use hybrid::{HybridNet, HybridNetConfig, HybridScratch};
pub use incremental::{
    ActivationCache, ForwardDirty, IncrementalForward, IncrementalStats, InvalidationCause,
    SpliceOutcome,
};
pub use model::{InferenceScratch, Lhnn, LhnnOutput, Prediction};
pub use ops::GraphOps;
pub use pipeline::{LatticePipeline, PipelineStats, PipelineUpdate, RebuildCause, StalePipeline};
pub use serialize::{load_model, ModelIoError};
pub use trainer::{
    evaluate, evaluate_regression, predict_map, train, train_observed, DesignEval, EvalResult,
    RegEval, Sample, TrainHistory,
};
