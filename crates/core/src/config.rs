//! Model and training configuration.

use lh_graph::ChannelMode;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the LHNN architecture.
///
/// Defaults follow §5.1 of the paper: hidden dimension 32, two stacked
/// HyperMP blocks and one LatticeMP block in the encoding phase, two more
/// LatticeMP blocks in the joint learning phase, label-balance γ = 0.7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LhnnConfig {
    /// Hidden embedding dimension (paper: 32).
    pub hidden: usize,
    /// Number of stacked HyperMP blocks in the encoder (paper: 2).
    pub hypermp_layers: usize,
    /// Number of LatticeMP blocks in the encoder (paper: 1).
    pub latticemp_encode_layers: usize,
    /// Number of LatticeMP blocks in the joint phase (paper: 2).
    pub latticemp_joint_layers: usize,
    /// Number of G-cell input channels (paper: 4).
    pub gcell_in_dim: usize,
    /// Number of G-net input channels (paper: 4).
    pub gnet_in_dim: usize,
    /// Output channels: uni (1) or duo (2).
    pub channel_mode: ChannelMode,
    /// Requested intra-op compute threads for this model's forwards
    /// (0 = use the process-wide pool as configured).
    ///
    /// A runtime knob, not architecture: it is excluded from the
    /// serialised checkpoint format and from
    /// [`Lhnn::weights_fingerprint`](crate::Lhnn::weights_fingerprint),
    /// and — because the kernel backend is bitwise thread-count-invariant —
    /// it never changes any prediction. Applied through
    /// [`Lhnn::configure_pool`](crate::Lhnn::configure_pool) by the CLI
    /// after construction and by the serving registry on registration.
    pub threads: usize,
}

impl Default for LhnnConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            hypermp_layers: 2,
            latticemp_encode_layers: 1,
            latticemp_joint_layers: 2,
            gcell_in_dim: 4,
            gnet_in_dim: 4,
            channel_mode: ChannelMode::Uni,
            threads: 0,
        }
    }
}

/// Component switches for the Table 3 ablation study.
///
/// `true` keeps a component; the full model is [`AblationSpec::full`].
/// Edge switches remove the message-passing edges of the relation but keep
/// the linear/residual layers so depth and parameter count stay comparable
/// (as the paper specifies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationSpec {
    /// Keep the G-net → G-cell edges in the FeatureGen block.
    pub featuregen_edges: bool,
    /// Keep the hypergraph edges in HyperMP blocks.
    pub hypermp_edges: bool,
    /// Keep the lattice edges in LatticeMP blocks.
    pub latticemp_edges: bool,
    /// Keep the routing-demand regression branch (joint supervision).
    pub jointing: bool,
    /// Keep the G-cell input features (net/pin density channels).
    pub gcell_features: bool,
}

impl AblationSpec {
    /// The full model (no ablation).
    pub fn full() -> Self {
        Self {
            featuregen_edges: true,
            hypermp_edges: true,
            latticemp_edges: true,
            jointing: true,
            gcell_features: true,
        }
    }

    /// Removes the FeatureGen message edges.
    pub fn without_featuregen() -> Self {
        Self { featuregen_edges: false, ..Self::full() }
    }

    /// Removes the HyperMP message edges.
    pub fn without_hypermp() -> Self {
        Self { hypermp_edges: false, ..Self::full() }
    }

    /// Removes the LatticeMP message edges.
    pub fn without_latticemp() -> Self {
        Self { latticemp_edges: false, ..Self::full() }
    }

    /// Removes the regression branch.
    pub fn without_jointing() -> Self {
        Self { jointing: false, ..Self::full() }
    }

    /// Zeroes the G-cell input features except the terminal mask.
    pub fn without_gcell_features() -> Self {
        Self { gcell_features: false, ..Self::full() }
    }

    /// A short label for tables (`full`, `-featuregen`, …).
    pub fn label(&self) -> String {
        if *self == Self::full() {
            return "full".to_string();
        }
        let mut parts = Vec::new();
        if !self.featuregen_edges {
            parts.push("-featuregen");
        }
        if !self.hypermp_edges {
            parts.push("-hypermp");
        }
        if !self.latticemp_edges {
            parts.push("-latticemp");
        }
        if !self.jointing {
            parts.push("-jointing");
        }
        if !self.gcell_features {
            parts.push("-gcellfeat");
        }
        parts.join(",")
    }
}

/// Training-loop configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Initial Adam learning rate (paper: 2e-3).
    pub lr: f32,
    /// Final learning rate, reached by step decay halfway (paper: 5e-4).
    pub lr_final: f32,
    /// Label-balance weight γ ∈ (0, 1] on non-congested cells (paper: 0.7).
    pub gamma: f32,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// Seed for weight init and shuffling.
    pub seed: u64,
    /// Optional neighbour-sampling fanouts per block family
    /// `[featuregen, hypermp, latticemp]` (paper: {6, 3, 2}); `None` trains
    /// full-graph.
    pub fanouts: Option<[usize; 3]>,
    /// Samples per optimiser step. 1 (the default) is the paper's
    /// per-design stepping; larger values accumulate gradients over a
    /// mini-batch before stepping — the unit the data-parallel trainer
    /// shards across threads.
    pub batch_size: usize,
    /// Worker threads for data-parallel gradient computation (1 = serial).
    ///
    /// Per-sample gradients are reduced in fixed sample order regardless
    /// of thread count, so for a given `batch_size` the training
    /// trajectory is bitwise identical at any `threads` value.
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 150,
            lr: 2e-3,
            lr_final: 5e-4,
            gamma: 0.7,
            grad_clip: 5.0,
            seed: 0,
            fanouts: None,
            batch_size: 1,
            threads: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = LhnnConfig::default();
        assert_eq!(c.hidden, 32);
        assert_eq!(c.hypermp_layers, 2);
        assert_eq!(c.latticemp_encode_layers, 1);
        assert_eq!(c.latticemp_joint_layers, 2);
        let t = TrainConfig::default();
        assert!((t.gamma - 0.7).abs() < 1e-6);
        assert!((t.lr - 2e-3).abs() < 1e-9);
        assert!((t.lr_final - 5e-4).abs() < 1e-9);
    }

    #[test]
    fn ablation_labels() {
        assert_eq!(AblationSpec::full().label(), "full");
        assert_eq!(AblationSpec::without_hypermp().label(), "-hypermp");
        assert_eq!(AblationSpec::without_jointing().label(), "-jointing");
        let two = AblationSpec { hypermp_edges: false, jointing: false, ..AblationSpec::full() };
        assert_eq!(two.label(), "-hypermp,-jointing");
    }

    #[test]
    fn ablation_constructors_flip_one_flag() {
        assert!(!AblationSpec::without_featuregen().featuregen_edges);
        assert!(AblationSpec::without_featuregen().hypermp_edges);
        assert!(!AblationSpec::without_latticemp().latticemp_edges);
        assert!(!AblationSpec::without_gcell_features().gcell_features);
    }
}
