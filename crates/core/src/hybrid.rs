//! HybridNet: a dual-branch geometry + topology congestion predictor —
//! the second [`CongestionModel`] architecture behind the serving engine.
//!
//! PAPERS.md's HybridNet argues congestion has two complementary views:
//! a **geometry view** (local lattice neighbourhoods of the placement
//! grid) and a **topology view** (netlist connectivity). Where LHNN
//! interleaves its hypergraph and lattice hops in one stack, HybridNet
//! keeps the branches separate and fuses late:
//!
//! * **Geometry branch**: a residual lift of the raw G-cell features
//!   followed by `geo_layers` lattice blocks (`P⁻¹A` mean aggregation
//!   with a skip connection) — purely spatial.
//! * **Topology branch**: a residual lift of the raw G-net features,
//!   aggregated onto G-cells through `D⁻¹H`, then `topo_rounds` full
//!   cell→net→cell round trips (`B⁻¹Hᵀ` then `D⁻¹H`) with skip
//!   connections — purely relational.
//! * **Fusion head**: the branch embeddings are concatenated and fused
//!   by one linear layer feeding the shared classification/regression
//!   heads.
//!
//! The model is composed entirely from the same [`neurograd`] layers and
//! [`GraphOps`] operators as LHNN, so it inherits the three bitwise-
//! identical forward paths (taped, fused, masked row-subset) and rides
//! the same trainer, engine, sessions and incremental forward.

use std::sync::Arc;

use lh_graph::halo::{dilate, union_sorted};
use lh_graph::{ChannelMode, FeatureSet};
use neurograd::{kernels, stable_sigmoid, Activation, Linear, Matrix, ParamStore, ResBlock, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::congestion::{CongestionModel, ModelScratch};
use crate::incremental::{widen_rows, ActivationCache, DilateTimer};
use crate::model::{LhnnOutput, Prediction};
use crate::ops::GraphOps;

/// HybridNet architecture hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridNetConfig {
    /// Hidden dimension of both branches.
    pub hidden: usize,
    /// Full cell→net→cell round trips in the topology branch.
    pub topo_rounds: usize,
    /// Lattice blocks in the geometry branch.
    pub geo_layers: usize,
    /// Raw G-cell feature width.
    pub gcell_in_dim: usize,
    /// Raw G-net feature width.
    pub gnet_in_dim: usize,
    /// Output channel mode (uni/duo).
    pub channel_mode: ChannelMode,
    /// Compute-pool width request (runtime knob, not architecture; 0 =
    /// leave the pool as-is).
    pub threads: usize,
}

impl Default for HybridNetConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            topo_rounds: 1,
            geo_layers: 2,
            gcell_in_dim: 4,
            gnet_in_dim: 4,
            channel_mode: ChannelMode::Uni,
            threads: 0,
        }
    }
}

/// One geometry-branch lattice block: residual transform, `P⁻¹A` hop,
/// linear mix, skip connection.
#[derive(Debug, Clone)]
pub(crate) struct GeoBlock {
    pub(crate) res: ResBlock,
    pub(crate) lin: Linear,
}

/// One topology-branch round trip: cell residual, `B⁻¹Hᵀ` hop, net
/// linear, `D⁻¹H` hop, cell linear, skip connection.
#[derive(Debug, Clone)]
pub(crate) struct TopoRound {
    pub(crate) res_c: ResBlock,
    pub(crate) lin_n: Linear,
    pub(crate) lin_c: Linear,
}

/// Persistent full-size intermediate buffers for HybridNet's fused
/// (tape-free) inference path, sized to one `(n_c, n_n, hidden,
/// channels)` shape. Same contract as LHNN's buffers: every matrix is
/// wholly overwritten before anything reads it.
#[derive(Debug)]
struct HybridBuffers {
    n_c: usize,
    n_n: usize,
    hidden: usize,
    channels: usize,
    // Branch embeddings (live across the whole forward).
    g: Matrix,
    t: Matrix,
    // G-cell-side ping-pong.
    tmp_c: Matrix,
    msg_c: Matrix,
    lin_c: Matrix,
    sc_c: Matrix,
    sy_c: Matrix,
    // G-net side.
    t_n: Matrix,
    tmp_n: Matrix,
    msg_n: Matrix,
    sc_n: Matrix,
    sy_n: Matrix,
    // Fusion + heads.
    cat: Matrix,
    fused: Matrix,
    cls: Matrix,
    reg: Matrix,
}

impl HybridBuffers {
    fn new(n_c: usize, n_n: usize, hidden: usize, channels: usize) -> Self {
        let zc = || Matrix::zeros(n_c, hidden);
        let zn = || Matrix::zeros(n_n, hidden);
        Self {
            n_c,
            n_n,
            hidden,
            channels,
            g: zc(),
            t: zc(),
            tmp_c: zc(),
            msg_c: zc(),
            lin_c: zc(),
            sc_c: zc(),
            sy_c: zc(),
            t_n: zn(),
            tmp_n: zn(),
            msg_n: zn(),
            sc_n: zn(),
            sy_n: zn(),
            cat: Matrix::zeros(n_c, 2 * hidden),
            fused: zc(),
            cls: Matrix::zeros(n_c, channels),
            reg: Matrix::zeros(n_c, channels),
        }
    }
}

/// Reusable per-thread scratch for HybridNet's tape-free inference
/// (HybridNet's analogue of [`crate::InferenceScratch`]).
#[derive(Debug, Default)]
pub struct HybridScratch {
    buffers: Option<HybridBuffers>,
}

impl HybridScratch {
    /// Creates an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn buffers_for(&mut self, model: &HybridNet, n_c: usize, n_n: usize) -> &mut HybridBuffers {
        let h = model.cfg.hidden;
        let ch = model.cfg.channel_mode.channels();
        let ok = self
            .buffers
            .as_ref()
            .is_some_and(|b| b.n_c == n_c && b.n_n == n_n && b.hidden == h && b.channels == ch);
        if !ok {
            self.buffers = Some(HybridBuffers::new(n_c, n_n, h, ch));
        }
        self.buffers.as_mut().expect("buffers just ensured")
    }
}

impl ModelScratch for HybridScratch {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The HybridNet model: parameters plus architecture.
#[derive(Debug)]
pub struct HybridNet {
    pub(crate) cfg: HybridNetConfig,
    pub(crate) store: ParamStore,
    pub(crate) geo_lift: ResBlock,
    pub(crate) geo: Vec<GeoBlock>,
    pub(crate) topo_lift: ResBlock,
    pub(crate) topo_in: Linear,
    pub(crate) topo: Vec<TopoRound>,
    pub(crate) fuse: Linear,
    pub(crate) cls_head: Linear,
    pub(crate) reg_head: Linear,
}

impl HybridNet {
    /// Creates a model with seeded initialisation.
    pub fn new(cfg: HybridNetConfig, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let h = cfg.hidden;
        let geo_lift = ResBlock::new(
            &mut store,
            "geo.lift",
            cfg.gcell_in_dim,
            h,
            h,
            Activation::Relu,
            &mut rng,
        );
        let geo = (0..cfg.geo_layers)
            .map(|i| GeoBlock {
                res: ResBlock::new(
                    &mut store,
                    &format!("geo{i}.res"),
                    h,
                    h,
                    h,
                    Activation::Relu,
                    &mut rng,
                ),
                lin: Linear::new(
                    &mut store,
                    &format!("geo{i}.lin"),
                    h,
                    h,
                    Activation::Relu,
                    &mut rng,
                ),
            })
            .collect();
        let topo_lift = ResBlock::new(
            &mut store,
            "topo.lift",
            cfg.gnet_in_dim,
            h,
            h,
            Activation::Relu,
            &mut rng,
        );
        let topo_in = Linear::new(&mut store, "topo.in", h, h, Activation::Relu, &mut rng);
        let topo = (0..cfg.topo_rounds)
            .map(|i| TopoRound {
                res_c: ResBlock::new(
                    &mut store,
                    &format!("topo{i}.res_c"),
                    h,
                    h,
                    h,
                    Activation::Relu,
                    &mut rng,
                ),
                lin_n: Linear::new(
                    &mut store,
                    &format!("topo{i}.lin_n"),
                    h,
                    h,
                    Activation::Relu,
                    &mut rng,
                ),
                lin_c: Linear::new(
                    &mut store,
                    &format!("topo{i}.lin_c"),
                    h,
                    h,
                    Activation::Relu,
                    &mut rng,
                ),
            })
            .collect();
        let fuse = Linear::new(&mut store, "fuse", 2 * h, h, Activation::Relu, &mut rng);
        let out = cfg.channel_mode.channels();
        let cls_head = Linear::new(&mut store, "head.cls", h, out, Activation::Identity, &mut rng);
        let reg_head = Linear::new(&mut store, "head.reg", h, out, Activation::Identity, &mut rng);
        Self { cfg, store, geo_lift, geo, topo_lift, topo_in, topo, fuse, cls_head, reg_head }
    }

    /// The model configuration.
    pub fn config(&self) -> &HybridNetConfig {
        &self.cfg
    }

    /// Runs the forward pass on a tape (the training path).
    ///
    /// # Panics
    ///
    /// Panics if feature dimensions disagree with the configuration.
    pub fn forward(&self, tape: &mut Tape, ops: &GraphOps, features: &FeatureSet) -> LhnnOutput {
        assert_eq!(features.gcell.cols(), self.cfg.gcell_in_dim, "g-cell feature dim mismatch");
        assert_eq!(features.gnet.cols(), self.cfg.gnet_in_dim, "g-net feature dim mismatch");
        let store = &self.store;
        let v_c0 = tape.leaf(features.gcell.clone());
        let v_n0 = tape.leaf(features.gnet.clone());

        // Geometry branch: lift then lattice hops with skips.
        let mut g = self.geo_lift.forward(tape, store, v_c0);
        for blk in &self.geo {
            let h = blk.res.forward(tape, store, g);
            let msg = tape.spmm(Arc::clone(&ops.lattice_mean), h); // P⁻¹A
            let out = blk.lin.forward(tape, store, msg);
            g = tape.add(out, g);
        }

        // Topology branch: lift nets, land on cells, round-trip.
        let t_n = self.topo_lift.forward(tape, store, v_n0);
        let agg = tape.spmm(Arc::clone(&ops.gnc_mean), t_n); // D⁻¹H
        let mut t = self.topo_in.forward(tape, store, agg);
        for round in &self.topo {
            let hc = round.res_c.forward(tape, store, t);
            let m_n = tape.spmm(Arc::clone(&ops.gcn_mean), hc); // B⁻¹Hᵀ
            let hn = round.lin_n.forward(tape, store, m_n);
            let m_c = tape.spmm(Arc::clone(&ops.gnc_mean), hn); // D⁻¹H
            let upd = round.lin_c.forward(tape, store, m_c);
            t = tape.add(upd, t);
        }

        // Late fusion + heads.
        let cat = tape.concat_cols(g, t);
        let fused = self.fuse.forward(tape, store, cat);
        let cls_logits = self.cls_head.forward(tape, store, fused);
        let reg = self.reg_head.forward(tape, store, fused);
        LhnnOutput { cls_logits, reg }
    }

    /// Inference: returns dense probability and regression maps.
    pub fn predict(&self, ops: &GraphOps, features: &FeatureSet) -> Prediction {
        self.predict_into(ops, features, &mut HybridScratch::new())
    }

    /// Inference re-using a caller-owned [`HybridScratch`]: the fused,
    /// tape-free forward, bitwise identical to [`HybridNet::forward`]
    /// plus a sigmoid (same fused-kernel contract as
    /// [`crate::Lhnn::predict_into`]).
    ///
    /// # Panics
    ///
    /// Panics if feature dimensions disagree with the configuration.
    pub fn predict_into(
        &self,
        ops: &GraphOps,
        features: &FeatureSet,
        scratch: &mut HybridScratch,
    ) -> Prediction {
        assert_eq!(features.gcell.cols(), self.cfg.gcell_in_dim, "g-cell feature dim mismatch");
        assert_eq!(features.gnet.cols(), self.cfg.gnet_in_dim, "g-net feature dim mismatch");
        let n_c = features.gcell.rows();
        let n_n = features.gnet.rows();
        let store = &self.store;
        let b = scratch.buffers_for(self, n_c, n_n);

        // Geometry branch.
        self.geo_lift.forward_into(store, &features.gcell, &mut b.sc_c, &mut b.sy_c, &mut b.g);
        for blk in &self.geo {
            blk.res.forward_into(store, &b.g, &mut b.sc_c, &mut b.sy_c, &mut b.tmp_c);
            kernels::spmm_into(&ops.lattice_mean, &b.tmp_c, b.msg_c.as_mut_slice()); // P⁻¹A
            blk.lin.forward_into(store, &b.msg_c, &mut b.lin_c);
            // g ← lin_out + g (operand order of `tape.add(out, g)`).
            kernels::zip_inplace(b.lin_c.as_slice(), b.g.as_mut_slice(), |o, v| o + v);
        }

        // Topology branch.
        self.topo_lift.forward_into(store, &features.gnet, &mut b.sc_n, &mut b.sy_n, &mut b.t_n);
        kernels::spmm_into(&ops.gnc_mean, &b.t_n, b.msg_c.as_mut_slice()); // D⁻¹H
        self.topo_in.forward_into(store, &b.msg_c, &mut b.t);
        for round in &self.topo {
            round.res_c.forward_into(store, &b.t, &mut b.sc_c, &mut b.sy_c, &mut b.tmp_c);
            kernels::spmm_into(&ops.gcn_mean, &b.tmp_c, b.msg_n.as_mut_slice()); // B⁻¹Hᵀ
            round.lin_n.forward_into(store, &b.msg_n, &mut b.tmp_n);
            kernels::spmm_into(&ops.gnc_mean, &b.tmp_n, b.msg_c.as_mut_slice()); // D⁻¹H
            round.lin_c.forward_into(store, &b.msg_c, &mut b.lin_c);
            // t ← upd + t (operand order of `tape.add(upd, t)`).
            kernels::zip_inplace(b.lin_c.as_slice(), b.t.as_mut_slice(), |o, v| o + v);
        }

        // Late fusion + heads.
        kernels::concat_into(&b.g, &b.t, b.cat.as_mut_slice());
        self.fuse.forward_into(store, &b.cat, &mut b.fused);
        self.cls_head.forward_into(store, &b.fused, &mut b.cls);
        kernels::map_inplace(b.cls.as_mut_slice(), stable_sigmoid);
        self.reg_head.forward_into(store, &b.fused, &mut b.reg);

        Prediction { cls_prob: b.cls.clone(), reg: b.reg.clone() }
    }

    /// A content fingerprint over the architecture and every weight
    /// tensor (HybridNet's serving version; the leading kind marker keeps
    /// it disjoint from other architectures' streams).
    pub fn weights_fingerprint(&self) -> u64 {
        let mut h = neurograd::Fnv64::new();
        h.write_str("hybridnet");
        h.write_usize(self.cfg.hidden);
        h.write_usize(self.cfg.topo_rounds);
        h.write_usize(self.cfg.geo_layers);
        h.write_usize(self.cfg.gcell_in_dim);
        h.write_usize(self.cfg.gnet_in_dim);
        h.write_usize(self.cfg.channel_mode.channels());
        for p in self.store.iter() {
            h.write_str(&p.name);
            p.value.hash_into(&mut h);
        }
        h.finish()
    }
}

impl CongestionModel for HybridNet {
    fn kind(&self) -> &'static str {
        "hybridnet"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn gcell_in_dim(&self) -> usize {
        self.cfg.gcell_in_dim
    }

    fn gnet_in_dim(&self) -> usize {
        self.cfg.gnet_in_dim
    }

    fn hidden(&self) -> usize {
        self.cfg.hidden
    }

    fn channel_mode(&self) -> ChannelMode {
        self.cfg.channel_mode
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn configure_pool(&self) {
        if self.cfg.threads > 0 {
            neurograd::pool::configure_threads(self.cfg.threads);
        }
    }

    fn weights_fingerprint(&self) -> u64 {
        HybridNet::weights_fingerprint(self)
    }

    fn forward(&self, tape: &mut Tape, ops: &GraphOps, features: &FeatureSet) -> LhnnOutput {
        HybridNet::forward(self, tape, ops, features)
    }

    fn new_scratch(&self) -> Box<dyn ModelScratch> {
        Box::new(HybridScratch::new())
    }

    fn predict_with(
        &self,
        ops: &GraphOps,
        features: &FeatureSet,
        scratch: &mut dyn ModelScratch,
    ) -> Prediction {
        match scratch.as_any_mut().downcast_mut::<HybridScratch>() {
            Some(s) => self.predict_into(ops, features, s),
            None => self.predict_into(ops, features, &mut HybridScratch::new()),
        }
    }

    fn new_activation_cache(
        &self,
        weights_version: u64,
        n_c: usize,
        n_n: usize,
    ) -> Box<dyn ActivationCache> {
        Box::new(HybridActs::new(self, weights_version, n_c, n_n))
    }

    fn save_to(&self, w: &mut dyn std::io::Write) -> Result<(), crate::serialize::ModelIoError> {
        self.save(w)
    }
}

/// Per-geometry-block cached activations.
struct GeoActs {
    h: Matrix,
    msg: Matrix,
    lin_out: Matrix,
    v: Matrix,
}

/// Per-topology-round cached activations.
struct TopoActs {
    hc: Matrix,
    m_n: Matrix,
    hn: Matrix,
    m_c: Matrix,
    lin_out: Matrix,
    v: Matrix,
}

/// Every intermediate tensor of one HybridNet forward, cached full-size
/// for [`crate::IncrementalForward`] — same superset-row invariant as
/// LHNN's cache (see [`ActivationCache`]).
pub(crate) struct HybridActs {
    weights_version: u64,
    ops_fp: u64,
    features_fp: u64,
    n_c: usize,
    n_n: usize,
    hidden: usize,
    g0: Matrix,
    geo: Vec<GeoActs>,
    t_n: Matrix,
    agg_t: Matrix,
    t0: Matrix,
    topo: Vec<TopoActs>,
    cat: Matrix,
    fused: Matrix,
    cls_logits: Matrix,
    cls_prob: Matrix,
    reg: Matrix,
    // ResBlock scratch (wholly written/read within one block call).
    sc_c: Matrix,
    sy_c: Matrix,
    sc_n: Matrix,
    sy_n: Matrix,
    // Full row lists for the refresh path (kept allocated).
    all_c: Vec<usize>,
    all_n: Vec<usize>,
}

impl HybridActs {
    pub(crate) fn new(model: &HybridNet, weights_version: u64, n_c: usize, n_n: usize) -> Self {
        let h = model.cfg.hidden;
        let ch = model.cfg.channel_mode.channels();
        let zc = || Matrix::zeros(n_c, h);
        let zn = || Matrix::zeros(n_n, h);
        Self {
            weights_version,
            ops_fp: 0,
            features_fp: 0,
            n_c,
            n_n,
            hidden: h,
            g0: zc(),
            geo: (0..model.geo.len())
                .map(|_| GeoActs { h: zc(), msg: zc(), lin_out: zc(), v: zc() })
                .collect(),
            t_n: zn(),
            agg_t: zc(),
            t0: zc(),
            topo: (0..model.topo.len())
                .map(|_| TopoActs {
                    hc: zc(),
                    m_n: zn(),
                    hn: zn(),
                    m_c: zc(),
                    lin_out: zc(),
                    v: zc(),
                })
                .collect(),
            cat: Matrix::zeros(n_c, 2 * h),
            fused: zc(),
            cls_logits: Matrix::zeros(n_c, ch),
            cls_prob: Matrix::zeros(n_c, ch),
            reg: Matrix::zeros(n_c, ch),
            sc_c: zc(),
            sy_c: zc(),
            sc_n: zn(),
            sy_n: zn(),
            all_c: (0..n_c).collect(),
            all_n: (0..n_n).collect(),
        }
    }
}

/// Recomputes the HybridNet forward over the given row lists, growing
/// them through each aggregation's receptive field when `grow` is set.
/// The G-cell list `dc` only ever grows, so tensors computed at an
/// earlier (smaller) `dc` are still recomputed at a superset of their
/// truly-changed rows — reads at later, larger row lists hit
/// cached-valid values (the same argument as LHNN's refresh).
fn refresh(
    st: &mut HybridActs,
    model: &HybridNet,
    ops: &GraphOps,
    features: &FeatureSet,
    mut dc: Vec<usize>,
    mut dn: Vec<usize>,
    grow: bool,
    dilate_t: &mut DilateTimer,
) -> (Vec<usize>, Vec<usize>) {
    let h = model.cfg.hidden;
    let ch = model.cfg.channel_mode.channels();
    let store = &model.store;
    let HybridActs {
        g0,
        geo,
        t_n,
        agg_t,
        t0,
        topo,
        cat,
        fused,
        cls_logits,
        cls_prob,
        reg,
        sc_c,
        sy_c,
        sc_n,
        sy_n,
        ..
    } = st;

    // ---- Geometry branch ----
    model.geo_lift.forward_rows_into(store, &features.gcell, &dc, sc_c, sy_c, g0);
    for (i, blk) in model.geo.iter().enumerate() {
        let (done, rest) = geo.split_at_mut(i);
        let la = &mut rest[0];
        let pg: &Matrix = if i == 0 { g0 } else { &done[i - 1].v };
        blk.res.forward_rows_into(store, pg, &dc, sc_c, sy_c, &mut la.h);
        if grow {
            dc = dilate_t
                .time(|| union_sorted(&dc, &dilate(ops.lattice_mean.transpose_cached(), &dc)));
        }
        kernels::spmm_rows_into(&ops.lattice_mean, &la.h, &dc, la.msg.as_mut_slice());
        blk.lin.forward_rows_into(store, &la.msg, &dc, &mut la.lin_out);
        kernels::zip_rows_into(
            la.lin_out.as_slice(),
            pg.as_slice(),
            &dc,
            h,
            la.v.as_mut_slice(),
            |x, y| x + y,
        );
    }
    let final_g: &Matrix = if let Some(l) = geo.last() { &l.v } else { g0 };

    // ---- Topology branch ----
    model.topo_lift.forward_rows_into(store, &features.gnet, &dn, sc_n, sy_n, t_n);
    if grow {
        dc = dilate_t.time(|| union_sorted(&dc, &dilate(ops.gnc_mean.transpose_cached(), &dn)));
    }
    kernels::spmm_rows_into(&ops.gnc_mean, t_n, &dc, agg_t.as_mut_slice());
    model.topo_in.forward_rows_into(store, agg_t, &dc, t0);
    for (i, round) in model.topo.iter().enumerate() {
        let (done, rest) = topo.split_at_mut(i);
        let la = &mut rest[0];
        let pt: &Matrix = if i == 0 { t0 } else { &done[i - 1].v };
        round.res_c.forward_rows_into(store, pt, &dc, sc_c, sy_c, &mut la.hc);
        if grow {
            dn = dilate_t.time(|| union_sorted(&dn, &dilate(ops.gcn_mean.transpose_cached(), &dc)));
        }
        kernels::spmm_rows_into(&ops.gcn_mean, &la.hc, &dn, la.m_n.as_mut_slice());
        round.lin_n.forward_rows_into(store, &la.m_n, &dn, &mut la.hn);
        if grow {
            dc = dilate_t.time(|| union_sorted(&dc, &dilate(ops.gnc_mean.transpose_cached(), &dn)));
        }
        kernels::spmm_rows_into(&ops.gnc_mean, &la.hn, &dc, la.m_c.as_mut_slice());
        round.lin_c.forward_rows_into(store, &la.m_c, &dc, &mut la.lin_out);
        kernels::zip_rows_into(
            la.lin_out.as_slice(),
            pt.as_slice(),
            &dc,
            h,
            la.v.as_mut_slice(),
            |x, y| x + y,
        );
    }
    let final_t: &Matrix = if let Some(l) = topo.last() { &l.v } else { t0 };

    // ---- Late fusion + heads (row-local) ----
    kernels::concat_rows_into(final_g, final_t, &dc, cat.as_mut_slice());
    model.fuse.forward_rows_into(store, cat, &dc, fused);
    model.cls_head.forward_rows_into(store, fused, &dc, cls_logits);
    kernels::map_rows_into(cls_logits.as_slice(), &dc, ch, cls_prob.as_mut_slice(), stable_sigmoid);
    model.reg_head.forward_rows_into(store, fused, &dc, reg);
    (dc, dn)
}

impl ActivationCache for HybridActs {
    fn kind(&self) -> &'static str {
        "hybridnet"
    }

    fn weights_version(&self) -> u64 {
        self.weights_version
    }

    fn fingerprints(&self) -> (u64, u64) {
        (self.ops_fp, self.features_fp)
    }

    fn set_fingerprints(&mut self, ops_fp: u64, features_fp: u64) {
        self.ops_fp = ops_fp;
        self.features_fp = features_fp;
    }

    fn n_c(&self) -> usize {
        self.n_c
    }

    fn n_n(&self) -> usize {
        self.n_n
    }

    fn cached_prediction(&self) -> Prediction {
        Prediction { cls_prob: self.cls_prob.clone(), reg: self.reg.clone() }
    }

    fn grow_gnet_rows(&mut self, n_n: usize) {
        let h = self.hidden;
        widen_rows(&mut self.t_n, n_n, h);
        widen_rows(&mut self.sc_n, n_n, h);
        widen_rows(&mut self.sy_n, n_n, h);
        for la in &mut self.topo {
            widen_rows(&mut la.m_n, n_n, h);
            widen_rows(&mut la.hn, n_n, h);
        }
        self.all_n.extend(self.n_n..n_n);
        self.n_n = n_n;
    }

    fn refresh_full(
        &mut self,
        model: &dyn CongestionModel,
        ops: &GraphOps,
        features: &FeatureSet,
        timer: &mut DilateTimer,
    ) {
        let model = model
            .as_any()
            .downcast_ref::<HybridNet>()
            .expect("hybridnet activation cache refreshed by a non-hybridnet model");
        let dc = std::mem::take(&mut self.all_c);
        let dn = std::mem::take(&mut self.all_n);
        let (dc, dn) = refresh(self, model, ops, features, dc, dn, false, timer);
        self.all_c = dc;
        self.all_n = dn;
    }

    fn refresh_splice(
        &mut self,
        model: &dyn CongestionModel,
        ops: &GraphOps,
        features: &FeatureSet,
        dirty_gcells: Vec<usize>,
        dirty_gnets: Vec<usize>,
        timer: &mut DilateTimer,
    ) -> (usize, usize) {
        let model = model
            .as_any()
            .downcast_ref::<HybridNet>()
            .expect("hybridnet activation cache spliced by a non-hybridnet model");
        let (dc, dn) = refresh(self, model, ops, features, dirty_gcells, dirty_gnets, true, timer);
        (dc.len(), dn.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AblationSpec;
    use crate::incremental::{IncrementalForward, SpliceOutcome};
    use lh_graph::{LhGraph, LhGraphConfig};
    use vlsi_netlist::synth::{generate, SynthConfig};
    use vlsi_place::GlobalPlacer;

    fn sample() -> (GraphOps, FeatureSet) {
        let cfg = SynthConfig { n_cells: 150, grid_nx: 8, grid_ny: 8, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        let graph =
            LhGraph::build(&synth.circuit, &placed.placement, &grid, &LhGraphConfig::default())
                .unwrap();
        let feats = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid)
            .unwrap()
            .normalized();
        (GraphOps::from_graph(&graph, &AblationSpec::full()), feats)
    }

    #[test]
    fn forward_shapes() {
        let (ops, feats) = sample();
        let model = HybridNet::new(HybridNetConfig::default(), 0);
        let pred = model.predict(&ops, &feats);
        assert_eq!(pred.cls_prob.shape(), (ops.num_gcells, 1));
        assert_eq!(pred.reg.shape(), (ops.num_gcells, 1));
        assert!(pred.cls_prob.as_slice().iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn fused_predict_matches_taped_forward() {
        let (ops, feats) = sample();
        let model = HybridNet::new(HybridNetConfig::default(), 5);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &ops, &feats);
        let prob = tape.sigmoid(out.cls_logits);
        let taped_prob = tape.value(prob).clone();
        let taped_reg = tape.value(out.reg).clone();
        let fused = model.predict(&ops, &feats);
        assert!(taped_prob.approx_eq(&fused.cls_prob, 0.0));
        assert!(taped_reg.approx_eq(&fused.reg, 0.0));
    }

    #[test]
    fn predict_into_reuses_scratch_and_matches_predict() {
        let (ops, feats) = sample();
        let model = HybridNet::new(HybridNetConfig::default(), 3);
        let direct = model.predict(&ops, &feats);
        let mut scratch = HybridScratch::new();
        for _ in 0..3 {
            let again = model.predict_into(&ops, &feats, &mut scratch);
            assert!(direct.cls_prob.approx_eq(&again.cls_prob, 0.0));
            assert!(direct.reg.approx_eq(&again.reg, 0.0));
        }
    }

    #[test]
    fn incremental_full_refresh_matches_direct_predict() {
        let (ops, feats) = sample();
        let model = HybridNet::new(HybridNetConfig::default(), 0);
        let version = CongestionModel::weights_fingerprint(&model);
        let direct = model.predict(&ops, &feats);
        let inc = IncrementalForward::new();
        let (pred, outcome) = inc.predict(&model, version, &ops, &feats, inc.seq());
        assert_eq!(outcome, SpliceOutcome::Full);
        assert!(direct.cls_prob.approx_eq(&pred.cls_prob, 0.0));
        assert!(direct.reg.approx_eq(&pred.reg, 0.0));
    }

    #[test]
    fn fingerprint_is_disjoint_from_lhnn_and_tracks_weights() {
        let a = HybridNet::new(HybridNetConfig::default(), 0);
        let b = HybridNet::new(HybridNetConfig::default(), 0);
        assert_eq!(a.weights_fingerprint(), b.weights_fingerprint());
        let other_seed = HybridNet::new(HybridNetConfig::default(), 1);
        assert_ne!(a.weights_fingerprint(), other_seed.weights_fingerprint());
        let lhnn = crate::Lhnn::new(crate::LhnnConfig::default(), 0);
        assert_ne!(a.weights_fingerprint(), lhnn.weights_fingerprint());
    }

    #[test]
    fn gradient_flows_to_all_parameters() {
        let (ops, feats) = sample();
        let mut model = HybridNet::new(HybridNetConfig::default(), 0);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &ops, &feats);
        let s1 = tape.sum_all(out.cls_logits);
        let s2 = tape.sum_all(out.reg);
        let loss = tape.add(s1, s2);
        tape.backward(loss);
        model.store.absorb_grads(&mut tape);
        let with_grad =
            model.store.iter().filter(|p| p.grad.as_slice().iter().any(|&g| g != 0.0)).count();
        let total = model.store.len();
        assert!(
            with_grad * 10 >= total * 8,
            "only {with_grad}/{total} parameter tensors got gradients"
        );
    }
}
