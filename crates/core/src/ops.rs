//! Graph operators as consumed by the model, with ablation and
//! neighbour-sampling support.
//!
//! [`GraphOps`] snapshots the four aggregation matrices of an
//! [`lh_graph::LhGraph`]. Ablations replace a relation's matrix
//! with an all-zero matrix of the same shape (messages vanish, parameters
//! stay); neighbour sampling keeps at most `fanout` random entries per row
//! and renormalises, mirroring DGL's sampled aggregation.

use std::sync::Arc;

use lh_graph::LhGraph;
use neurograd::CsrMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::config::AblationSpec;

/// The aggregation operators used by one forward pass.
#[derive(Debug, Clone)]
pub struct GraphOps {
    /// Sum aggregation G-net → G-cell (`H`), used by FeatureGen.
    pub gnc_sum: Arc<CsrMatrix>,
    /// Mean aggregation G-net → G-cell (`D⁻¹H`), used by HyperMP.
    pub gnc_mean: Arc<CsrMatrix>,
    /// Mean aggregation G-cell → G-net (`B⁻¹Hᵀ`), used by HyperMP.
    pub gcn_mean: Arc<CsrMatrix>,
    /// Mean lattice aggregation (`P⁻¹A`), used by LatticeMP.
    pub lattice_mean: Arc<CsrMatrix>,
    /// Number of G-cell nodes.
    pub num_gcells: usize,
    /// Number of G-net nodes.
    pub num_gnets: usize,
}

impl GraphOps {
    /// Snapshots the operators of a graph under an ablation spec.
    pub fn from_graph(graph: &LhGraph, ablation: &AblationSpec) -> Self {
        let (n_c, n_n) = (graph.num_gcells(), graph.num_gnets());
        let empty = |rows: usize, cols: usize| Arc::new(CsrMatrix::empty(rows, cols));
        Self {
            gnc_sum: if ablation.featuregen_edges {
                Arc::clone(graph.gnc_sum())
            } else {
                empty(n_c, n_n.max(1))
            },
            gnc_mean: if ablation.hypermp_edges {
                Arc::clone(graph.gnc_mean())
            } else {
                empty(n_c, n_n.max(1))
            },
            gcn_mean: if ablation.hypermp_edges {
                Arc::clone(graph.gcn_mean())
            } else {
                empty(n_n.max(1), n_c)
            },
            lattice_mean: if ablation.latticemp_edges {
                Arc::clone(graph.lattice_mean())
            } else {
                empty(n_c, n_c)
            },
            num_gcells: n_c,
            num_gnets: n_n,
        }
    }

    /// A content fingerprint over all four operators and the node counts.
    ///
    /// Serving caches key predictions on this value: two `GraphOps`
    /// fingerprint equal iff every aggregation matrix is bitwise equal
    /// (ablated, sampled or rebuilt graphs all hash differently).
    ///
    /// Built from each operator's cached
    /// [`CsrMatrix::content_fingerprint`](neurograd::CsrMatrix::content_fingerprint)
    /// digest, so re-fingerprinting after an incremental
    /// [`GraphOps::patch_from`] only hashes the matrices that actually
    /// changed — untouched operators (and repeat requests against the
    /// same operators) answer from their memoised digest in O(1).
    pub fn fingerprint(&self) -> u64 {
        let mut h = neurograd::Fnv64::new();
        h.write_usize(self.num_gcells);
        h.write_usize(self.num_gnets);
        h.write_u64(self.gnc_sum.content_fingerprint());
        h.write_u64(self.gnc_mean.content_fingerprint());
        h.write_u64(self.gcn_mean.content_fingerprint());
        h.write_u64(self.lattice_mean.content_fingerprint());
        h.finish()
    }

    /// Block-diagonal stack of several designs' operators, for one
    /// cross-design batched forward over vertically stacked features.
    ///
    /// Each operator becomes [`CsrMatrix::block_diag`] of the blocks'
    /// operators, so design `i`'s G-cell rows only ever aggregate design
    /// `i`'s G-net/G-cell rows — with entries in the same per-row order —
    /// and every row-partitioned kernel produces per-design output rows
    /// bitwise identical to forwarding each design alone. Dense layers
    /// are row-local, so stacking features changes nothing there either.
    ///
    /// Transpose/fingerprint caches start cold; batched operators are
    /// throwaway (the per-design caches key the serving layer's state).
    pub fn block_diag(blocks: &[&GraphOps]) -> Self {
        fn stack(blocks: &[&GraphOps], pick: impl Fn(&GraphOps) -> &CsrMatrix) -> Arc<CsrMatrix> {
            let mats: Vec<&CsrMatrix> = blocks.iter().map(|b| pick(b)).collect();
            Arc::new(CsrMatrix::block_diag(&mats))
        }
        Self {
            gnc_sum: stack(blocks, |b| &b.gnc_sum),
            gnc_mean: stack(blocks, |b| &b.gnc_mean),
            gcn_mean: stack(blocks, |b| &b.gcn_mean),
            lattice_mean: stack(blocks, |b| &b.lattice_mean),
            num_gcells: blocks.iter().map(|b| b.num_gcells).sum(),
            num_gnets: blocks.iter().map(|b| b.num_gnets).sum(),
        }
    }

    /// Re-snapshots the operators from an incrementally patched graph.
    /// Matrices the patch left untouched are the very allocations this
    /// snapshot already shares, so warm transpose and fingerprint caches
    /// survive; ablated relations reuse this snapshot's existing empty
    /// matrices instead of allocating fresh ones.
    ///
    /// Equivalent in content to `GraphOps::from_graph(graph, ablation)` —
    /// fingerprints of the two are always equal — but O(1) in the
    /// untouched portion.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different G-cell count or fewer G-net
    /// columns than this snapshot (incremental patches never resize the
    /// lattice and only ever *append* G-net columns; a compaction must go
    /// through [`GraphOps::from_graph`]).
    pub fn patch_from(&self, graph: &LhGraph, ablation: &AblationSpec) -> Self {
        assert_eq!(
            self.num_gcells,
            graph.num_gcells(),
            "patch_from requires an unchanged g-cell count"
        );
        assert!(
            graph.num_gnets() >= self.num_gnets,
            "patch_from cannot shrink the g-net column space ({} -> {})",
            self.num_gnets,
            graph.num_gnets()
        );
        // Kept relations just Arc-clone from the patched graph: matrices
        // the patch left untouched are the *same allocation* this snapshot
        // already holds, so warm transpose and fingerprint caches survive
        // for free. Ablated relations reuse this snapshot's existing empty
        // matrices (keeping their memoised digests) instead of allocating.
        let keep_empty = |mine: &Arc<CsrMatrix>, rows: usize, cols: usize| {
            if mine.shape() == (rows, cols) && mine.nnz() == 0 {
                Arc::clone(mine)
            } else {
                Arc::new(CsrMatrix::empty(rows, cols))
            }
        };
        let (n_c, n_n) = (self.num_gcells, graph.num_gnets());
        Self {
            gnc_sum: if ablation.featuregen_edges {
                Arc::clone(graph.gnc_sum())
            } else {
                keep_empty(&self.gnc_sum, n_c, n_n.max(1))
            },
            gnc_mean: if ablation.hypermp_edges {
                Arc::clone(graph.gnc_mean())
            } else {
                keep_empty(&self.gnc_mean, n_c, n_n.max(1))
            },
            gcn_mean: if ablation.hypermp_edges {
                Arc::clone(graph.gcn_mean())
            } else {
                keep_empty(&self.gcn_mean, n_n.max(1), n_c)
            },
            lattice_mean: if ablation.latticemp_edges {
                Arc::clone(graph.lattice_mean())
            } else {
                keep_empty(&self.lattice_mean, n_c, n_c)
            },
            num_gcells: n_c,
            num_gnets: n_n,
        }
    }

    /// Pre-computes the cached CSR transpose of every operator.
    ///
    /// Backward passes apply `Sᵀ` for each `spmm` recorded on the tape;
    /// with the caches warm (they live inside the shared `Arc<CsrMatrix>`,
    /// so clones of this `GraphOps` benefit too) no training step ever
    /// rebuilds a transpose. Warming is invisible to results and to
    /// [`GraphOps::fingerprint`].
    pub fn warm_transpose_caches(&self) {
        let _ = self.gnc_sum.transpose_cached();
        let _ = self.gnc_mean.transpose_cached();
        let _ = self.gcn_mean.transpose_cached();
        let _ = self.lattice_mean.transpose_cached();
    }

    /// Returns a copy with each relation subsampled to the given fanouts
    /// `[featuregen, hypermp, latticemp]` (the paper's {6, 3, 2}).
    ///
    /// Mean operators are renormalised after sampling; the sum operator
    /// (`H`) is rescaled by `row_degree / kept` so expected messages are
    /// unbiased.
    pub fn sampled(&self, fanouts: [usize; 3], rng: &mut StdRng) -> Self {
        Self {
            gnc_sum: Arc::new(sample_rows(&self.gnc_sum, fanouts[0], true, rng)),
            gnc_mean: Arc::new(sample_rows(&self.gnc_mean, fanouts[1], false, rng)),
            gcn_mean: Arc::new(sample_rows(&self.gcn_mean, fanouts[1], false, rng)),
            lattice_mean: Arc::new(sample_rows(&self.lattice_mean, fanouts[2], false, rng)),
            num_gcells: self.num_gcells,
            num_gnets: self.num_gnets,
        }
    }
}

/// Keeps at most `fanout` random entries per row.
///
/// With `rescale_sum`, kept entries are scaled by `degree / kept` (unbiased
/// sum estimate); otherwise the row is renormalised to sum to 1 (mean
/// estimate).
fn sample_rows(csr: &CsrMatrix, fanout: usize, rescale_sum: bool, rng: &mut StdRng) -> CsrMatrix {
    let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
    for r in 0..csr.rows() {
        let entries: Vec<(usize, f32)> = csr.row_entries(r).collect();
        if entries.is_empty() {
            continue;
        }
        if entries.len() <= fanout {
            for (c, v) in entries {
                triplets.push((r, c, v));
            }
            continue;
        }
        let mut idx: Vec<usize> = (0..entries.len()).collect();
        idx.shuffle(rng);
        idx.truncate(fanout);
        if rescale_sum {
            let scale = entries.len() as f32 / fanout as f32;
            for &i in &idx {
                triplets.push((r, entries[i].0, entries[i].1 * scale));
            }
        } else {
            let kept_sum: f32 = idx.iter().map(|&i| entries[i].1).sum();
            let norm = if kept_sum > 0.0 { 1.0 / kept_sum } else { 0.0 };
            for &i in &idx {
                triplets.push((r, entries[i].0, entries[i].1 * norm));
            }
        }
    }
    CsrMatrix::from_triplets(csr.rows(), csr.cols(), &triplets)
}

/// Derives a fresh sampling RNG for an epoch from a base seed.
pub fn epoch_rng(seed: u64, epoch: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Convenience: random permutation of `0..n` (training-set shuffling).
pub fn shuffled_indices(n: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use lh_graph::LhGraphConfig;
    use vlsi_netlist::synth::{generate, SynthConfig};
    use vlsi_place::GlobalPlacer;

    fn graph() -> LhGraph {
        let cfg = SynthConfig { n_cells: 150, grid_nx: 8, grid_ny: 8, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        LhGraph::build(&synth.circuit, &placed.placement, &grid, &LhGraphConfig::default()).unwrap()
    }

    #[test]
    fn full_spec_shares_graph_matrices() {
        let g = graph();
        let ops = GraphOps::from_graph(&g, &AblationSpec::full());
        assert_eq!(ops.gnc_sum.nnz(), g.gnc_sum().nnz());
        assert_eq!(ops.lattice_mean.nnz(), g.lattice_mean().nnz());
        assert_eq!(ops.num_gcells, g.num_gcells());
        assert_eq!(ops.num_gnets, g.num_gnets());
    }

    #[test]
    fn ablations_zero_the_right_relations() {
        let g = graph();
        let no_fg = GraphOps::from_graph(&g, &AblationSpec::without_featuregen());
        assert_eq!(no_fg.gnc_sum.nnz(), 0);
        assert!(no_fg.gnc_mean.nnz() > 0);

        let no_hyper = GraphOps::from_graph(&g, &AblationSpec::without_hypermp());
        assert_eq!(no_hyper.gnc_mean.nnz(), 0);
        assert_eq!(no_hyper.gcn_mean.nnz(), 0);
        assert!(no_hyper.gnc_sum.nnz() > 0);
        assert!(no_hyper.lattice_mean.nnz() > 0);

        let no_lat = GraphOps::from_graph(&g, &AblationSpec::without_latticemp());
        assert_eq!(no_lat.lattice_mean.nnz(), 0);
        assert!(no_lat.gnc_mean.nnz() > 0);
    }

    #[test]
    fn ablation_preserves_shapes() {
        let g = graph();
        for spec in [
            AblationSpec::without_featuregen(),
            AblationSpec::without_hypermp(),
            AblationSpec::without_latticemp(),
        ] {
            let ops = GraphOps::from_graph(&g, &spec);
            assert_eq!(ops.gnc_sum.shape(), g.gnc_sum().shape());
            assert_eq!(ops.gcn_mean.shape(), g.gcn_mean().shape());
            assert_eq!(ops.lattice_mean.shape(), g.lattice_mean().shape());
        }
    }

    #[test]
    fn sampling_caps_row_degree() {
        let g = graph();
        let ops = GraphOps::from_graph(&g, &AblationSpec::full());
        let mut rng = StdRng::seed_from_u64(1);
        let sampled = ops.sampled([6, 3, 2], &mut rng);
        for r in 0..sampled.lattice_mean.rows() {
            assert!(sampled.lattice_mean.row_nnz(r) <= 2);
        }
        for r in 0..sampled.gnc_mean.rows() {
            assert!(sampled.gnc_mean.row_nnz(r) <= 3);
        }
        for r in 0..sampled.gnc_sum.rows() {
            assert!(sampled.gnc_sum.row_nnz(r) <= 6);
        }
    }

    #[test]
    fn sampled_mean_rows_stay_stochastic() {
        let g = graph();
        let ops = GraphOps::from_graph(&g, &AblationSpec::full());
        let mut rng = StdRng::seed_from_u64(2);
        let sampled = ops.sampled([6, 3, 2], &mut rng);
        for s in sampled.lattice_mean.row_sums() {
            assert!(s.abs() < 1e-6 || (s - 1.0).abs() < 1e-4, "row sum {s}");
        }
    }

    #[test]
    fn sampled_sum_is_unbiased_in_expectation() {
        // A row with 4 unit entries sampled at fanout 2 and rescaled by 2
        // has expected row sum 4.
        let csr =
            CsrMatrix::from_triplets(1, 4, &[(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let s = sample_rows(&csr, 2, true, &mut rng);
            total += s.row_sums()[0];
        }
        let mean = total / trials as f32;
        assert!((mean - 4.0).abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn transpose_warmup_is_invisible_to_fingerprint_and_spmm_t() {
        use neurograd::Matrix;
        let g = graph();
        let ops = GraphOps::from_graph(&g, &AblationSpec::full());
        let fp_cold = ops.fingerprint();
        let x = Matrix::from_vec(
            ops.gnc_sum.rows(),
            2,
            (0..ops.gnc_sum.rows() * 2).map(|i| (i as f32).sin()).collect(),
        )
        .unwrap();
        let scatter = neurograd::kernels::reference::spmm_t_scatter(&ops.gnc_sum, &x);
        ops.warm_transpose_caches();
        assert!(ops.gnc_sum.transpose_cache_warm());
        assert!(ops.lattice_mean.transpose_cache_warm());
        assert_eq!(fp_cold, ops.fingerprint(), "cache warming must not change the fingerprint");
        // warm-path spmm_t is bitwise identical to the scatter reference
        assert!(ops.gnc_sum.spmm_t(&x).approx_eq(&scatter, 0.0));
        // clones share the warmed cache through the Arc'd operators
        let clone = ops.clone();
        assert!(clone.gcn_mean.transpose_cache_warm());
        assert_eq!(fp_cold, clone.fingerprint());
    }

    #[test]
    fn patch_from_matches_from_graph_and_keeps_arcs() {
        let g = graph();
        let ops = GraphOps::from_graph(&g, &AblationSpec::full());
        let fp = ops.fingerprint();
        // Patch against the *same* graph (the no-op patch): all four
        // operators must be carried over by pointer, fingerprint equal.
        let patched = ops.patch_from(&g, &AblationSpec::full());
        assert!(Arc::ptr_eq(&patched.gnc_sum, &ops.gnc_sum));
        assert!(Arc::ptr_eq(&patched.lattice_mean, &ops.lattice_mean));
        assert_eq!(patched.fingerprint(), fp);
        assert_eq!(
            patched.fingerprint(),
            GraphOps::from_graph(&g, &AblationSpec::full()).fingerprint()
        );
        // Ablated relations reuse the existing empty matrices.
        let ablated = GraphOps::from_graph(&g, &AblationSpec::without_latticemp());
        let ablated_patch = ablated.patch_from(&g, &AblationSpec::without_latticemp());
        assert!(Arc::ptr_eq(&ablated_patch.lattice_mean, &ablated.lattice_mean));
        assert_eq!(
            ablated_patch.fingerprint(),
            GraphOps::from_graph(&g, &AblationSpec::without_latticemp()).fingerprint()
        );
        assert_ne!(ablated_patch.fingerprint(), fp);
    }

    #[test]
    fn epoch_rng_varies_by_epoch_and_seed() {
        let a: u64 = epoch_rng(1, 0).gen();
        let b: u64 = epoch_rng(1, 1).gen();
        let c: u64 = epoch_rng(2, 0).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
        let a2: u64 = epoch_rng(1, 0).gen();
        assert_eq!(a, a2);
    }

    #[test]
    fn shuffled_indices_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut idx = shuffled_indices(20, &mut rng);
        idx.sort_unstable();
        assert_eq!(idx, (0..20).collect::<Vec<_>>());
    }
}
