//! Acceptance proptests for the bounded-radius incremental forward
//! ([`lhnn::IncrementalForward`]):
//!
//! 1. **Bitwise splice parity**: over random delta sequences — small
//!    nudges, cross-die jumps, and structural size-filter crossings — the
//!    spliced prediction is bitwise identical to a from-scratch
//!    [`lhnn::Lhnn::predict`] on the same inputs, with the splice running
//!    at 1..4 compute threads and the reference at 1.
//! 2. **Halo coverage** (the property the splice relies on): the ≤5-hop
//!    receptive-field halo of a dirty set, re-derived here from the
//!    public [`lh_graph::halo`] primitives, contains every G-cell row
//!    whose full-forward output changes.

use std::sync::Arc;

use lh_graph::halo::{canonicalize, dilate, union_sorted};
use lhnn::{
    CongestionModel, ForwardDirty, HybridNet, HybridNetConfig, IncrementalForward,
    InvalidationCause, LatticePipeline, Lhnn, LhnnConfig, PipelineUpdate, RebuildCause,
    SpliceOutcome,
};
use neurograd::{pool, Matrix};
use proptest::prelude::*;
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_netlist::{CellId, PlacementDelta, Point};
use vlsi_place::GlobalPlacer;

fn pipeline(seed: u64, n_cells: usize, side: u32) -> LatticePipeline {
    let cfg = SynthConfig { seed, n_cells, grid_nx: side, grid_ny: side, ..SynthConfig::default() };
    let synth = generate(&cfg).expect("synth");
    let grid = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &grid).expect("place");
    LatticePipeline::for_serving(Arc::new(synth.circuit), placed.placement, grid).expect("build")
}

/// `kind % 2`: 0 → [`Lhnn`], 1 → [`HybridNet`] — both splice through the
/// same [`IncrementalForward`] engine.
fn build_model(kind: usize, seed: u64) -> Box<dyn CongestionModel> {
    match kind % 2 {
        0 => Box::new(Lhnn::new(LhnnConfig::default(), seed)),
        _ => Box::new(HybridNet::new(HybridNetConfig::default(), seed)),
    }
}

fn bitwise_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn row_bits(m: &Matrix, row: usize) -> Vec<u32> {
    let c = m.shape().1;
    m.as_slice()[row * c..(row + 1) * c].iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Drives a pipeline + [`IncrementalForward`] pair exactly the way a
    /// serving session does — `Incremental` outcomes noted as dirt,
    /// `FullRebuild` outcomes noted as structural — and checks every
    /// prediction bitwise against a from-scratch forward, for EITHER
    /// architecture behind [`CongestionModel`].
    #[test]
    fn spliced_forward_matches_full_forward_bitwise(
        seed in 0u64..3,
        model_kind in 0usize..2,
        moves in proptest::collection::vec(
            (0usize..4096, 0.0f32..1.0, 0.0f32..1.0, 0u32..2), 1..10),
        chunk in 1usize..4,
        threads in 1usize..4,
    ) {
        let mut p = pipeline(seed, 110, 8);
        let die = p.circuit().die;
        let grid = p.grid().clone();
        let model = build_model(model_kind, seed);
        let model = model.as_ref();
        let version = model.weights_fingerprint();
        let incr = IncrementalForward::new();
        let n_cells = p.circuit().num_cells();
        for group in moves.chunks(chunk) {
            let mut delta = PlacementDelta::new();
            for &(cell, fx, fy, nudge) in group {
                let id = CellId((cell % n_cells) as u32);
                // `nudge` keeps the move sub-g-cell (likely incremental);
                // otherwise jump anywhere on the die (often structural)
                let target = if nudge == 0 {
                    let pos = p.placement().position(id);
                    die.clamp(Point::new(
                        pos.x + (fx - 0.5) * grid.gcell_width(),
                        pos.y + (fy - 0.5) * grid.gcell_height(),
                    ))
                } else {
                    Point::new(die.lx + fx * die.width(), die.ly + fy * die.height())
                };
                delta.push(id, target);
            }
            match p.apply(&delta) {
                Ok(PipelineUpdate::Incremental { dirty_nets, dirty_gcells }) => {
                    incr.note_incremental(&ForwardDirty::new(dirty_gcells, dirty_nets));
                }
                Ok(PipelineUpdate::FullRebuild { cause }) => {
                    incr.note_structural(InvalidationCause::from(&cause));
                }
                Ok(PipelineUpdate::Noop) => {}
                // every net dropped by the filter: nothing to forward
                Err(_) => return,
            }
            let (ops, features) = (p.ops(), p.features());
            pool::configure_threads(threads);
            let (spliced, _path) = incr.predict(model, version, &ops, &features, incr.seq());
            pool::configure_threads(1);
            let full = model.predict(&ops, &features);
            prop_assert!(
                bitwise_eq(&spliced.cls_prob, &full.cls_prob)
                    && bitwise_eq(&spliced.reg, &full.reg),
                "spliced prediction diverged from the full forward \
                 (kind {}, threads {})",
                model.kind(),
                threads
            );
        }
    }

    /// Forced out-and-back size-filter crossings must splice, not
    /// rebuild: stable G-net columns turn a crossing into tombstone/
    /// revive/append patches riding the ordinary dirty sets, so the
    /// activation cache survives and every spliced prediction stays
    /// bitwise identical to a full forward at 1..4 threads. The only
    /// full rebuilds allowed between crossings are lazy compactions.
    #[test]
    fn forced_crossings_splice_without_rebuilds(
        seed in 0u64..3,
        yanks in proptest::collection::vec(0usize..4096, 1..5),
        threads in 1usize..4,
    ) {
        let mut p = pipeline(seed, 110, 8);
        let die = p.circuit().die;
        let model = Lhnn::new(LhnnConfig::default(), seed);
        let version = model.weights_fingerprint();
        let incr = IncrementalForward::new();
        let n_cells = p.circuit().num_cells();
        for &cell in &yanks {
            let id = CellId((cell % n_cells) as u32);
            let home = p.placement().position(id);
            // Yank the cell to the far corner (stretching its nets past
            // the 5% size filter), then put it back home: two crossings.
            for target in [Point::new(die.ux, die.uy), home] {
                match p.apply(&PlacementDelta::single(id, target)) {
                    Ok(PipelineUpdate::Incremental { dirty_nets, dirty_gcells }) => {
                        incr.note_incremental(&ForwardDirty::new(dirty_gcells, dirty_nets));
                    }
                    Ok(PipelineUpdate::Noop) => {}
                    Ok(PipelineUpdate::FullRebuild { cause }) => {
                        prop_assert!(
                            matches!(cause, RebuildCause::Compaction { .. }),
                            "only compaction may rebuild on a crossing loop, got {:?}", cause
                        );
                        incr.note_structural(InvalidationCause::from(&cause));
                    }
                    Err(e) => panic!("apply failed: {e}"),
                }
                let (ops, features) = (p.ops(), p.features());
                pool::configure_threads(threads);
                let (spliced, _path) = incr.predict(&model, version, &ops, &features, incr.seq());
                pool::configure_threads(1);
                let full = model.predict(&ops, &features);
                prop_assert!(
                    bitwise_eq(&spliced.cls_prob, &full.cls_prob)
                        && bitwise_eq(&spliced.reg, &full.reg),
                    "crossing prediction diverged from the full forward (threads {})",
                    threads
                );
            }
        }
        let stats = p.stats();
        prop_assert_eq!(
            stats.full_rebuilds, stats.rebuilds_compaction,
            "only compactions may rebuild between crossings: {:?}", stats
        );
        prop_assert_eq!(stats.rebuilds_filter_crossing, 0);
    }

    /// Re-derives the receptive-field halo of an incremental update's
    /// dirty sets by dilating them through the operators' sparsity — one
    /// `H` hop, two hops per HyperMP block, one hop per LatticeMP block —
    /// and checks it contains every G-cell row whose full-forward output
    /// changed. A row outside the halo with a changed output would be
    /// served stale by the splice path.
    #[test]
    fn halo_contains_every_row_the_forward_changes(
        seed in 0u64..4,
        cell in 0usize..4096,
        fx in -0.9f32..0.9,
        fy in -0.9f32..0.9,
    ) {
        let mut p = pipeline(seed, 110, 8);
        let die = p.circuit().die;
        let grid = p.grid().clone();
        let cfg = LhnnConfig::default();
        let model = Lhnn::new(cfg.clone(), seed);

        let (ops_before, feats_before) = (p.ops(), p.features());
        let before = model.predict(&ops_before, &feats_before);

        let id = CellId((cell % p.circuit().num_cells()) as u32);
        let pos = p.placement().position(id);
        let target = die.clamp(Point::new(
            pos.x + fx * grid.gcell_width(),
            pos.y + fy * grid.gcell_height(),
        ));
        let outcome = match p.apply(&PlacementDelta::single(id, target)) {
            Ok(o) => o,
            Err(_) => return,
        };
        let PipelineUpdate::Incremental { dirty_nets, dirty_gcells } = outcome else {
            // Noop (nothing changed) or FullRebuild (no halo to check)
            return;
        };

        // mirror the splice path's layer-by-layer dilation
        let ops = p.ops();
        let mut dc = canonicalize(dirty_gcells);
        let mut dn = canonicalize(dirty_nets);
        dc = union_sorted(&dc, &dilate(ops.gnc_sum.transpose_cached(), &dn));
        for _ in 0..cfg.hypermp_layers {
            dn = union_sorted(&dn, &dilate(ops.gcn_mean.transpose_cached(), &dc));
            dc = union_sorted(&dc, &dilate(ops.gnc_mean.transpose_cached(), &dn));
        }
        for _ in 0..cfg.latticemp_encode_layers + cfg.latticemp_joint_layers {
            dc = union_sorted(&dc, &dilate(ops.lattice_mean.transpose_cached(), &dc));
        }

        let after = model.predict(&ops, &p.features());
        prop_assert_eq!(before.cls_prob.shape(), after.cls_prob.shape());
        let mut halo = dc.iter().copied().peekable();
        for row in 0..ops.num_gcells {
            if halo.peek() == Some(&row) {
                halo.next();
                continue;
            }
            prop_assert!(
                row_bits(&before.cls_prob, row) == row_bits(&after.cls_prob, row)
                    && row_bits(&before.reg, row) == row_bits(&after.reg, row),
                "G-cell row {} changed outside the {}-row halo of a {}-cell dirty set",
                row, dc.len(), ops.num_gcells
            );
        }
    }
}

/// The splice path must actually engage end-to-end (no silent always-full
/// fallback): a sub-g-cell nudge after a primed cache takes
/// [`SpliceOutcome::Spliced`] with a halo strictly smaller than the grid.
#[test]
fn small_nudge_takes_the_splice_path() {
    let mut p = pipeline(11, 150, 10);
    let die = p.circuit().die;
    let grid = p.grid().clone();
    let model = Lhnn::new(LhnnConfig::default(), 0);
    let version = model.weights_fingerprint();
    let incr = IncrementalForward::new();
    let (_, path) = incr.predict(&model, version, &p.ops(), &p.features(), incr.seq());
    assert_eq!(path, SpliceOutcome::Full, "first forward must be full");

    // nudge movable cells until one yields an incremental outcome
    for i in 0..p.circuit().num_cells() {
        let id = CellId(i as u32);
        if p.circuit().cell(id).is_terminal() {
            continue;
        }
        let pos = p.placement().position(id);
        let target = die
            .clamp(Point::new(pos.x + 0.4 * grid.gcell_width(), pos.y + 0.4 * grid.gcell_height()));
        match p.apply(&PlacementDelta::single(id, target)).expect("apply") {
            PipelineUpdate::Incremental { dirty_nets, dirty_gcells } => {
                incr.note_incremental(&ForwardDirty::new(dirty_gcells, dirty_nets));
                let (spliced, path) =
                    incr.predict(&model, version, &p.ops(), &p.features(), incr.seq());
                let SpliceOutcome::Spliced { gcell_rows, .. } = path else {
                    panic!("nudge after a primed cache must splice, got {path:?}");
                };
                assert!(
                    gcell_rows < p.ops().num_gcells,
                    "halo ({gcell_rows} rows) must be smaller than the grid"
                );
                let full = model.predict(&p.ops(), &p.features());
                assert!(
                    spliced.cls_prob.approx_eq(&full.cls_prob, 0.0)
                        && spliced.reg.approx_eq(&full.reg, 0.0)
                );
                return;
            }
            _ => continue,
        }
    }
    panic!("no cell produced an incremental update");
}
