//! End-to-end bitwise-equality proptests for [`LatticePipeline`]: random
//! placement-delta sequences (including no-ops and whole-design shifts)
//! must leave operators, features, fingerprints — and the model's
//! predictions — **bitwise identical** to a from-scratch rebuild, at any
//! compute-pool thread count.

use std::sync::Arc;

use lh_graph::{FeatureSet, LhGraph, LhGraphConfig};
use lhnn::{AblationSpec, GraphOps, LatticePipeline, Lhnn, LhnnConfig};
use neurograd::pool;
use proptest::prelude::*;
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_netlist::{CellId, PlacementDelta, Point};
use vlsi_place::GlobalPlacer;

fn pipeline(seed: u64, n_cells: usize, side: u32) -> LatticePipeline {
    let cfg = SynthConfig { seed, n_cells, grid_nx: side, grid_ny: side, ..SynthConfig::default() };
    let synth = generate(&cfg).expect("synth");
    let grid = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &grid).expect("place");
    LatticePipeline::for_serving(Arc::new(synth.circuit), placed.placement, grid).expect("build")
}

/// Batch-built `(ops, features)` at the pipeline's current placement,
/// with the pipeline's own stable column layout (equal to the canonical
/// `LhGraph::build` right after every compaction).
fn batch_state(p: &LatticePipeline) -> (GraphOps, FeatureSet) {
    let graph = LhGraph::build_with_columns(
        p.circuit(),
        p.placement(),
        p.grid(),
        &LhGraphConfig::default(),
        p.graph().kept_nets(),
    )
    .expect("rebuild graph");
    let features =
        FeatureSet::build(&graph, p.circuit(), p.placement(), p.grid()).expect("rebuild features");
    (GraphOps::from_graph(&graph, &AblationSpec::full()), features)
}

fn bitwise_eq(a: &neurograd::Matrix, b: &neurograd::Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full acceptance property: after every delta in a random
    /// sequence, the incremental pipeline fingerprints equal a batch
    /// rebuild's, and `Lhnn::predict` on the incremental state is bitwise
    /// identical to predict on the batch state — at 1 and N compute
    /// threads.
    #[test]
    fn pipeline_state_and_predictions_match_batch_rebuild(
        seed in 0u64..3,
        moves in proptest::collection::vec(
            (0usize..4096, 0.0f32..1.0, 0.0f32..1.0), 1..12),
        chunk in 1usize..5,
        threads in 1usize..4,
    ) {
        let mut p = pipeline(seed, 110, 8);
        let die = p.circuit().die;
        let model = Lhnn::new(LhnnConfig::default(), seed);
        let n_cells = p.circuit().num_cells();
        for group in moves.chunks(chunk) {
            let mut delta = PlacementDelta::new();
            for &(cell, fx, fy) in group {
                delta.push(
                    CellId((cell % n_cells) as u32),
                    Point::new(die.lx + fx * die.width(), die.ly + fy * die.height()),
                );
            }
            if p.apply(&delta).is_err() {
                // every net dropped by the filter: a batch build fails
                // identically, so there is no state to compare
                return;
            }
            let (batch_ops, batch_features) = batch_state(&p);
            prop_assert_eq!(p.ops().fingerprint(), batch_ops.fingerprint());
            prop_assert_eq!(p.features().fingerprint(), batch_features.fingerprint());

            pool::configure_threads(threads);
            let incremental = model.predict(&p.ops(), &p.features());
            pool::configure_threads(1);
            let batch = model.predict(&batch_ops, &batch_features);
            prop_assert!(
                bitwise_eq(&incremental.cls_prob, &batch.cls_prob),
                "predictions diverged (threads {})", threads
            );
            prop_assert!(bitwise_eq(&incremental.reg, &batch.reg));
        }
    }
}

#[test]
fn noop_and_whole_design_shift_round_trip() {
    let mut p = pipeline(7, 150, 10);
    let die = p.circuit().die;
    let initial_fps = p.fingerprints();

    // no-op: every cell moved to its own position
    let mut noop = PlacementDelta::new();
    for i in 0..p.circuit().num_cells() {
        noop.push(CellId(i as u32), p.placement().position(CellId(i as u32)));
    }
    p.apply(&noop).unwrap();
    assert_eq!(p.fingerprints(), initial_fps);

    // whole-design shift by one g-cell, then back: fingerprints must
    // return to the initial values exactly (same placement → same state,
    // whether reached incrementally or not)
    let shift = |p: &LatticePipeline, dx: f32, dy: f32| {
        let mut d = PlacementDelta::new();
        for i in 0..p.circuit().num_cells() {
            let id = CellId(i as u32);
            let pos = p.placement().position(id);
            d.push(id, die.clamp(Point::new(pos.x + dx, pos.y + dy)));
        }
        d
    };
    let original = p.placement().clone();
    let initial_columns = p.graph().kept_nets().to_vec();
    let (gw, gh) = (p.grid().gcell_width(), p.grid().gcell_height());
    let there = shift(&p, -gw * 0.5, -gh * 0.5);
    p.apply(&there).unwrap();
    let mid_fps = p.fingerprints();
    assert_ne!(mid_fps, initial_fps, "the shift must change the state");
    let back = shift(&p, gw * 0.5, gh * 0.5);
    p.apply(&back).unwrap();
    if *p.placement() == original
        && p.graph().kept_nets() == initial_columns.as_slice()
        && p.graph().tombstoned_gnets() == 0
    {
        // round trip was lossless (no clamping, and the stable column
        // space kept its initial layout): the incremental state must
        // land back on the exact initial fingerprints
        assert_eq!(p.fingerprints(), initial_fps);
    }
    // parity with batch at the final placement regardless
    let (batch_ops, batch_features) = batch_state(&p);
    assert_eq!(p.ops().fingerprint(), batch_ops.fingerprint());
    assert_eq!(p.features().fingerprint(), batch_features.fingerprint());
}
