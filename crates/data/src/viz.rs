//! Map visualisation: ASCII heat maps and PGM images (Figure 4).
//!
//! The paper's Figure 4 shows label vs prediction maps for three test
//! designs of very different congestion rates. These helpers render any
//! per-G-cell scalar field; the `figure4` bench binary writes one PGM per
//! (design, model) pair plus an ASCII summary to stdout.

use std::fs;
use std::path::Path;

use crate::error::Result;

/// Renders a row-major `ny × nx` map as ASCII art (one char per G-cell),
/// darker = larger. Row 0 (gy = 0) is printed at the bottom, matching die
/// coordinates.
pub fn ascii_map(values: &[f32], nx: usize, ny: usize) -> String {
    assert_eq!(values.len(), nx * ny, "map size mismatch");
    const RAMP: &[u8] = b" .:-=+*#%@";
    let max = values.iter().fold(0.0f32, |m, &v| m.max(v)).max(1e-9);
    let mut out = String::with_capacity((nx + 1) * ny);
    for gy in (0..ny).rev() {
        for gx in 0..nx {
            let v = (values[gy * nx + gx] / max).clamp(0.0, 1.0);
            let idx = ((v * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Serialises a map as an ASCII PGM (P2) image with 255 grey levels,
/// normalised to the map maximum. `gy = 0` is the bottom row of the image.
pub fn to_pgm(values: &[f32], nx: usize, ny: usize) -> String {
    assert_eq!(values.len(), nx * ny, "map size mismatch");
    let max = values.iter().fold(0.0f32, |m, &v| m.max(v)).max(1e-9);
    let mut out = format!("P2\n{nx} {ny}\n255\n");
    for gy in (0..ny).rev() {
        let row: Vec<String> = (0..nx)
            .map(|gx| {
                let v = (values[gy * nx + gx] / max).clamp(0.0, 1.0);
                format!("{}", (v * 255.0).round() as u32)
            })
            .collect();
        out.push_str(&row.join(" "));
        out.push('\n');
    }
    out
}

/// Writes a PGM file, creating parent directories.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_pgm(values: &[f32], nx: usize, ny: usize, path: &Path) -> Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, to_pgm(values, nx, ny))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_dimensions() {
        let m = ascii_map(&[0.0, 1.0, 0.5, 0.25], 2, 2);
        let lines: Vec<&str> = m.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 2);
        // top line is gy=1: values 0.5, 0.25; bottom is 0.0, 1.0
        assert_eq!(lines[1].chars().next().unwrap(), ' ');
        assert_eq!(lines[1].chars().nth(1).unwrap(), '@');
    }

    #[test]
    fn pgm_header_and_values() {
        let pgm = to_pgm(&[0.0, 2.0], 2, 1);
        let mut lines = pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("2 1"));
        assert_eq!(lines.next(), Some("255"));
        assert_eq!(lines.next(), Some("0 255"));
    }

    #[test]
    fn zero_map_does_not_divide_by_zero() {
        let pgm = to_pgm(&[0.0; 4], 2, 2);
        assert!(pgm.contains("0 0"));
        let a = ascii_map(&[0.0; 4], 2, 2);
        assert!(a.chars().filter(|c| *c != '\n').all(|c| c == ' '));
    }

    #[test]
    fn pgm_writes_to_disk() {
        let path = std::env::temp_dir().join("lhnn_viz_test/map.pgm");
        write_pgm(&[0.0, 1.0, 0.5, 0.2], 2, 2, &path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().starts_with("P2"));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    #[should_panic(expected = "map size mismatch")]
    fn rejects_size_mismatch() {
        ascii_map(&[0.0; 3], 2, 2);
    }
}
