//! Error type for the `lhnn-data` crate.

use std::error::Error as StdError;
use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;

/// Errors produced by dataset assembly and experiment harnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A pipeline stage failed for one design.
    Pipeline {
        /// Stage name (`generate`, `place`, `route`, `lh-graph`, …).
        stage: &'static str,
        /// Underlying error rendered to text.
        message: String,
    },
    /// An experiment configuration was invalid.
    InvalidConfig(String),
    /// Result file I/O failed.
    Io(String),
}

impl DataError {
    /// Wraps a stage failure.
    pub fn pipeline(stage: &'static str, err: &dyn fmt::Display) -> Self {
        DataError::Pipeline { stage, message: err.to_string() }
    }
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Pipeline { stage, message } => {
                write!(f, "pipeline stage `{stage}` failed: {message}")
            }
            DataError::InvalidConfig(m) => write!(f, "invalid experiment configuration: {m}"),
            DataError::Io(m) => write!(f, "result i/o failed: {m}"),
        }
    }
}

impl StdError for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataError::pipeline("route", &"overflow");
        assert!(e.to_string().contains("route") && e.to_string().contains("overflow"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
