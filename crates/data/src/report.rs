//! Result formatting: paper-style `mean±std` tables and CSV output.
//!
//! Kept dependency-free on purpose (DESIGN.md §5): experiment binaries
//! print fixed-width tables to stdout and mirror them as CSV files under
//! `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::error::Result;

/// Formats `mean ± std` in percent with two decimals, as the paper's
/// tables do (e.g. `40.89±1.82`).
pub fn pct(mean: f64, std: f64) -> String {
    format!("{:.2}±{:.2}", mean * 100.0, std * 100.0)
}

/// Formats a plain percentage with two decimals.
pub fn pct1(v: f64) -> String {
    format!("{:.2}", v * 100.0)
}

/// A fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| (*s).to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", cell, w = widths[i] + 2);
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.min(120)));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        let _ = cols;
        out
    }

    /// Serialises to CSV (naive quoting: cells with commas are quoted).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in rows {
            let line: Vec<String> = row.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())?;
        Ok(())
    }
}

/// One baseline-vs-candidate measurement of a bench harness.
///
/// Earlier revisions hard-coded the two columns as `ms_1t`/`ms_nt`
/// ("1 thread" vs "N threads"), and benches that compared anything else —
/// `loop-bench`'s "full rebuild" vs "incremental update", say — silently
/// redefined the fields. The record now names its own columns, so every
/// `BENCH_*.json` is self-describing; the JSON writer still emits the
/// legacy `ms_1t`/`ms_nt` keys (baseline/candidate respectively) so files
/// from either era read the same way.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Workload label (e.g. `matmul_4096x64x64`).
    pub name: String,
    /// What the baseline column measures (e.g. `"1 thread"`,
    /// `"full rebuild"`, `"serial sessions"`).
    pub baseline_label: String,
    /// Wall-clock milliseconds of the baseline.
    pub baseline_ms: f64,
    /// What the candidate column measures (e.g. `"4 threads"`,
    /// `"incremental update"`).
    pub candidate_label: String,
    /// Wall-clock milliseconds of the candidate.
    pub candidate_ms: f64,
    /// Extra named numeric columns emitted verbatim into the JSON record
    /// (e.g. `full_rebuilds`, `fallback_fraction`, `halo_gcells`). Keys
    /// must not collide with the fixed column names.
    pub extras: Vec<(String, f64)>,
}

impl BenchRecord {
    /// A record with explicit column semantics.
    pub fn labeled(
        name: impl Into<String>,
        baseline_label: impl Into<String>,
        baseline_ms: f64,
        candidate_label: impl Into<String>,
        candidate_ms: f64,
    ) -> Self {
        Self {
            name: name.into(),
            baseline_label: baseline_label.into(),
            baseline_ms,
            candidate_label: candidate_label.into(),
            candidate_ms,
            extras: Vec::new(),
        }
    }

    /// Appends an extra named numeric column to the JSON record.
    #[must_use]
    pub fn with_extra(mut self, key: impl Into<String>, value: f64) -> Self {
        self.extras.push((key.into(), value));
        self
    }

    /// The classic serial-vs-parallel record: baseline on 1 compute
    /// thread, candidate on `threads`.
    pub fn thread_scaling(name: impl Into<String>, ms_1t: f64, threads: usize, ms_nt: f64) -> Self {
        Self::labeled(name, "1 thread", ms_1t, format!("{threads} threads"), ms_nt)
    }

    /// Speedup of the candidate over the baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline_ms / self.candidate_ms.max(1e-9)
    }
}

/// Writes a machine-readable `BENCH_*.json` perf-trajectory artifact
/// (hand-rolled JSON — the workspace's serde is a compile-only stand-in).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_bench_json(
    path: &Path,
    bench: &str,
    threads: usize,
    records: &[BenchRecord],
) -> Result<()> {
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"{}\",", escape(bench));
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        // `ms_1t`/`ms_nt` are the legacy key names for baseline/candidate;
        // keeping them means files written before the columns were labeled
        // and files written after parse identically.
        let mut extras = String::new();
        for (k, v) in &r.extras {
            let _ = write!(extras, ", \"{}\": {:.4}", escape(k), v);
        }
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"baseline\": \"{}\", \"candidate\": \"{}\", \
             \"ms_baseline\": {:.4}, \"ms_candidate\": {:.4}, \
             \"ms_1t\": {:.4}, \"ms_nt\": {:.4}, \"speedup\": {:.3}{extras}}}{comma}",
            escape(&r.name),
            escape(&r.baseline_label),
            escape(&r.candidate_label),
            r.baseline_ms,
            r.candidate_ms,
            r.baseline_ms,
            r.candidate_ms,
            r.speedup()
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_is_well_formed() {
        let dir = std::env::temp_dir().join("lhnn_bench_json_test");
        let path = dir.join("BENCH_kernels.json");
        let records = vec![
            BenchRecord::thread_scaling("matmul_2x2", 2.0, 4, 1.0),
            BenchRecord::labeled("spmm \"odd\"", "full rebuild", 4.0, "incremental", 2.0)
                .with_extra("full_rebuilds", 3.0)
                .with_extra("fallback_fraction", 0.25),
        ];
        write_bench_json(&path, "kernels", 4, &records).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\": \"kernels\""));
        assert!(text.contains("\"threads\": 4"));
        assert!(text.contains("\"speedup\": 2.000"));
        assert!(text.contains("spmm \\\"odd\\\""), "quotes must be escaped:\n{text}");
        // self-describing columns, with the legacy keys still present
        assert!(text.contains("\"baseline\": \"full rebuild\""));
        assert!(text.contains("\"candidate\": \"incremental\""));
        assert!(text.contains("\"ms_baseline\": 4.0000"));
        assert!(text.contains("\"ms_1t\": 4.0000"), "legacy key must mirror the baseline");
        assert!(text.contains("\"ms_nt\": 2.0000"), "legacy key must mirror the candidate");
        // extra columns land verbatim on their record only
        assert!(text.contains("\"full_rebuilds\": 3.0000"));
        assert!(text.contains("\"fallback_fraction\": 0.2500"));
        assert_eq!(text.matches("full_rebuilds").count(), 1, "extras stay per-record");
        // crude balance check on the hand-rolled JSON
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_record_speedup() {
        let r = BenchRecord::labeled("x", "serial", 3.0, "pipelined", 1.5);
        assert!((r.speedup() - 2.0).abs() < 1e-9);
        let t = BenchRecord::thread_scaling("y", 3.0, 4, 1.0);
        assert_eq!(t.baseline_label, "1 thread");
        assert_eq!(t.candidate_label, "4 threads");
        assert!((t.speedup() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(0.4089, 0.0182), "40.89±1.82");
        assert_eq!(pct1(0.1738), "17.38");
    }

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(&["Model", "F1"]);
        t.add_row(vec!["LHNN".into(), "40.89±1.82".into()]);
        t.add_row(vec!["U-net".into(), "29.75±3.03".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Model"));
        assert!(lines[2].contains("LHNN"));
        // data rows aligned: "F1" column starts at the same offset
        let off = lines[0].find("F1").unwrap();
        assert_eq!(&lines[2][off..off + 2], "40");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(&["a", "b"]);
        t.add_row(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_wrong_arity() {
        let mut t = TextTable::new(&["a"]);
        t.add_row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let mut t = TextTable::new(&["k", "v"]);
        t.add_row(vec!["a".into(), "1".into()]);
        let path = std::env::temp_dir().join("lhnn_data_report_test/out.csv");
        t.write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.starts_with("k,v\n"));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
