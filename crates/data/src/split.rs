//! The fixed 10:5 train/test split of Table 1.
//!
//! The paper iterates *all* 10:5 splits of the 15 designs and fixes the
//! one minimising the train/test difference in average congestion rate,
//! to remove domain-transfer ambiguity. `C(15,5) = 3003` candidates — the
//! search is exhaustive and deterministic (lexicographically first
//! minimiser wins).

use serde::{Deserialize, Serialize};

/// The chosen split: indices into the design list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Split {
    /// Training design indices (size `n - test_size`).
    pub train: Vec<usize>,
    /// Testing design indices (size `test_size`).
    pub test: Vec<usize>,
}

/// Summary of a split search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitSearch {
    /// The winning split.
    pub split: Split,
    /// Mean congestion rate over the training designs.
    pub train_rate: f64,
    /// Mean congestion rate over the testing designs.
    pub test_rate: f64,
    /// Achieved |train − test| gap.
    pub gap: f64,
    /// Number of candidate splits examined.
    pub candidates: usize,
}

/// Enumerates all `k`-subsets of `0..n` in lexicographic order, calling
/// `visit` for each.
fn for_each_combination(n: usize, k: usize, mut visit: impl FnMut(&[usize])) {
    if k > n {
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        visit(&idx);
        // advance
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Finds the test subset of size `test_size` minimising the congestion-
/// rate gap between the two sides.
///
/// # Panics
///
/// Panics if `test_size` is zero or ≥ `rates.len()`.
pub fn best_split(rates: &[f64], test_size: usize) -> SplitSearch {
    let n = rates.len();
    assert!(test_size > 0 && test_size < n, "test_size out of range");
    let total: f64 = rates.iter().sum();
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut candidates = 0usize;
    for_each_combination(n, test_size, |test_idx| {
        candidates += 1;
        let test_sum: f64 = test_idx.iter().map(|&i| rates[i]).sum();
        let test_rate = test_sum / test_size as f64;
        let train_rate = (total - test_sum) / (n - test_size) as f64;
        let gap = (train_rate - test_rate).abs();
        let better = match &best {
            None => true,
            Some((g, _)) => gap < *g - 1e-15,
        };
        if better {
            best = Some((gap, test_idx.to_vec()));
        }
    });
    let (gap, test) = best.expect("at least one combination");
    let train: Vec<usize> = (0..n).filter(|i| !test.contains(i)).collect();
    let test_sum: f64 = test.iter().map(|&i| rates[i]).sum();
    let test_rate = test_sum / test_size as f64;
    let train_rate = (total - test_sum) / (n - test_size) as f64;
    SplitSearch { split: Split { train, test }, train_rate, test_rate, gap, candidates }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_count_matches_binomial() {
        let mut count = 0;
        for_each_combination(15, 5, |_| count += 1);
        assert_eq!(count, 3003);
    }

    #[test]
    fn combinations_are_lexicographic_and_unique() {
        let mut seen = Vec::new();
        for_each_combination(5, 2, |c| seen.push(c.to_vec()));
        assert_eq!(seen.len(), 10);
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert_eq!(seen[0], vec![0, 1]);
        assert_eq!(*seen.last().unwrap(), vec![3, 4]);
        // lexicographic order means `seen` is already sorted
        assert_eq!(seen, sorted);
    }

    #[test]
    fn best_split_finds_exact_balance() {
        // rates engineered so {0.1, 0.3} vs {0.2, 0.2, 0.2} balances at 0.2
        let rates = [0.1, 0.2, 0.2, 0.2, 0.3];
        let s = best_split(&rates, 2);
        assert!(s.gap < 1e-12, "gap = {}", s.gap);
        assert_eq!(s.candidates, 10);
        assert!((s.train_rate - 0.2).abs() < 1e-12);
        assert!((s.test_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn split_partitions_all_indices() {
        let rates: Vec<f64> = (0..15).map(|i| i as f64 / 15.0).collect();
        let s = best_split(&rates, 5);
        assert_eq!(s.split.train.len(), 10);
        assert_eq!(s.split.test.len(), 5);
        let mut all: Vec<usize> = s.split.train.iter().chain(&s.split.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn search_is_deterministic() {
        let rates = [0.05, 0.4, 0.17, 0.23, 0.31, 0.02, 0.11];
        assert_eq!(best_split(&rates, 3), best_split(&rates, 3));
    }

    #[test]
    #[should_panic(expected = "test_size out of range")]
    fn rejects_degenerate_test_size() {
        best_split(&[0.1, 0.2], 2);
    }
}
