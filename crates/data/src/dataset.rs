//! Dataset assembly: synthetic suite → place → route → LH-graph →
//! features/targets, for every design.
//!
//! This is the data-preparation pipeline of §5.1 of the paper
//! (ISPD-2011/DAC-2012 designs → DREAMPlace → NCTU-GR labels), built on
//! the substitute substrates of this reproduction.

use lh_graph::{FeatureSet, LhGraph, LhGraphConfig, Targets};
use lhnn::Sample;
use lhnn_baselines::ImageSample;
use serde::{Deserialize, Serialize};
use vlsi_netlist::synth::{generate, superblue_suite, SynthConfig};
use vlsi_netlist::{Circuit, GcellGrid, Placement, Rect};
use vlsi_place::{GlobalPlacer, GlobalPlacerConfig};
use vlsi_route::{route, CapacityConfig, RouteResult, RouterConfig};

use crate::error::{DataError, Result};

/// How per-design routing capacity is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CapacityMode {
    /// Fixed track counts for every design (`h_tracks`/`v_tracks`).
    FixedTracks,
    /// Two-pass calibration: pattern-route with unbounded capacity, set
    /// each direction's track count to this quantile of its positive edge
    /// demand, then route again with negotiation.
    ///
    /// This reproduces the contest-benchmark regime the paper describes in
    /// §4.4: demand hovers near capacity, so congested and non-congested
    /// cells have *extremely close* demand values and the classification
    /// boundary is thin.
    Quantile(f32),
}

/// Configuration of the full dataset build.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Base seed feeding every per-design generator seed.
    pub base_seed: u64,
    /// Cell-count multiplier on the suite specs (1.0 ≈ 0.5–2.5k cells per
    /// design; shrink for quick tests).
    pub scale: f32,
    /// Capacity selection mode.
    pub capacity_mode: CapacityMode,
    /// Horizontal routing tracks per edge.
    pub h_tracks: f32,
    /// Vertical routing tracks per edge.
    pub v_tracks: f32,
    /// Rip-up-and-reroute rounds for the label router.
    pub rrr_rounds: usize,
    /// Router overflow penalty (higher → more detouring, labels depend
    /// more on topology and less on local density).
    pub overflow_penalty: f32,
    /// Placement spreading target density (lower → smoother density, the
    /// DREAMPlace-like regime where congestion is topology-driven).
    pub target_density: f32,
    /// Nets per movable cell across the suite (Superblue ≈ 0.98; higher
    /// values overlap more G-nets per cell, weakening purely local
    /// features).
    pub nets_per_cell: f32,
    /// Net-degree geometric parameter (lower → heavier high-fanout tail,
    /// larger gap between bbox density features and MST routing).
    pub degree_p: f64,
    /// Large-G-net filter fraction for the LH-graph.
    pub max_gnet_fraction: f32,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            base_seed: 2022,
            scale: 1.0,
            capacity_mode: CapacityMode::FixedTracks,
            h_tracks: 14.0,
            v_tracks: 14.0,
            rrr_rounds: 12,
            overflow_penalty: 8.0,
            target_density: 1.0,
            nets_per_cell: 1.0,
            degree_p: 0.45,
            max_gnet_fraction: 0.05,
        }
    }
}

/// The `q`-th quantile of the positive values in `data` (linear
/// interpolation, `q ∈ [0, 1]`). Returns 1.0 when no positive values
/// exist.
fn positive_quantile(data: &[f32], q: f32) -> f32 {
    let mut vals: Vec<f32> = data.iter().copied().filter(|&v| v > 0.0).collect();
    if vals.is_empty() {
        return 1.0;
    }
    vals.sort_by(f32::total_cmp);
    let pos = q.clamp(0.0, 1.0) * (vals.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f32;
    vals[lo] * (1.0 - frac) + vals[hi] * frac
}

/// Everything one design contributes to the experiments.
#[derive(Debug, Clone)]
pub struct DesignData {
    /// Design name.
    pub name: String,
    /// The synthesised circuit.
    pub circuit: Circuit,
    /// Placed positions.
    pub placement: Placement,
    /// The G-cell grid.
    pub grid: GcellGrid,
    /// Macro outlines (capacity blockages).
    pub macro_rects: Vec<Rect>,
    /// Router output (labels + stats).
    pub routed: RouteResult,
    /// LHNN-ready sample (graph + normalised features + targets).
    pub sample: Sample,
    /// Statistics for Table 1.
    pub stats: DesignStats,
}

/// Table 1 statistics of one design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignStats {
    /// Design name.
    pub name: String,
    /// Number of cells.
    pub cells: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of G-cells.
    pub gcells: usize,
    /// Congestion rate over both directions (fraction).
    pub congestion_rate: f64,
}

impl DesignData {
    /// The design's image-layout sample for the CNN baselines under a
    /// channel mode.
    pub fn image_sample(&self, mode: lh_graph::ChannelMode) -> ImageSample {
        let cong = self.sample.targets.congestion_channels(mode);
        ImageSample::from_node_major(
            self.name.clone(),
            self.grid.nx() as usize,
            self.grid.ny() as usize,
            &self.sample.features.gcell,
            &cong,
        )
    }
}

/// Builds the inference-side inputs of one synthetic design: generate →
/// place → LH-graph → fixed-scaled features → full-ablation operators.
///
/// This is the request payload of the serving path (`lhnn-serve`), shared
/// by the CLI `serve-bench`, the serving harness/benches and the serving
/// determinism tests — no routing pass, because serving needs no labels.
///
/// # Errors
///
/// Propagates failures from any pipeline stage.
pub fn serving_inputs(
    seed: u64,
    n_cells: usize,
    grid: u32,
) -> Result<(lhnn::GraphOps, FeatureSet)> {
    let synth_cfg = SynthConfig {
        name: format!("serving{seed}"),
        seed,
        n_cells,
        grid_nx: grid,
        grid_ny: grid,
        ..SynthConfig::default()
    };
    let synth = generate(&synth_cfg).map_err(|e| DataError::pipeline("generate", &e))?;
    let g = synth_cfg.grid();
    let placed = GlobalPlacer::default()
        .place_synth(&synth, &g)
        .map_err(|e| DataError::pipeline("place", &e))?;
    let graph = LhGraph::build(&synth.circuit, &placed.placement, &g, &LhGraphConfig::default())
        .map_err(|e| DataError::pipeline("lh-graph", &e))?;
    let (gd, nd) = FeatureSet::default_divisors();
    let features = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &g)
        .map_err(|e| DataError::pipeline("features", &e))?
        .scaled_fixed(&gd, &nd);
    let ops = lhnn::GraphOps::from_graph(&graph, &lhnn::AblationSpec::full());
    Ok((ops, features))
}

/// Builds one design end-to-end from its synthesis config.
///
/// # Errors
///
/// Propagates failures from any pipeline stage.
pub fn build_design(synth_cfg: &SynthConfig, cfg: &DatasetConfig) -> Result<DesignData> {
    let synth = generate(synth_cfg).map_err(|e| DataError::pipeline("generate", &e))?;
    let grid = synth_cfg.grid();
    let placer_cfg = GlobalPlacerConfig {
        spreading: vlsi_place::SpreadConfig {
            target_density: cfg.target_density,
            ..Default::default()
        },
        ..Default::default()
    };
    let placed = GlobalPlacer::new(placer_cfg)
        .place_synth(&synth, &grid)
        .map_err(|e| DataError::pipeline("place", &e))?;
    let (h_tracks, v_tracks) = match cfg.capacity_mode {
        CapacityMode::FixedTracks => (cfg.h_tracks, cfg.v_tracks),
        CapacityMode::Quantile(q) => {
            // Pass 1: unconstrained pattern route to observe raw demand.
            let probe_cfg = RouterConfig {
                capacity: CapacityConfig { h_tracks: 1e6, v_tracks: 1e6, ..Default::default() },
                rrr_rounds: 0,
                ..Default::default()
            };
            let probe = route(&synth.circuit, &placed.placement, &grid, &[], &probe_cfg)
                .map_err(|e| DataError::pipeline("route-probe", &e))?;
            let h = positive_quantile(&probe.labels.demand_h, q);
            let v = positive_quantile(&probe.labels.demand_v, q);
            (h.max(1.0), v.max(1.0))
        }
    };
    let router_cfg = RouterConfig {
        capacity: CapacityConfig { h_tracks, v_tracks, ..Default::default() },
        rrr_rounds: cfg.rrr_rounds,
        cost: vlsi_route::CostModel {
            overflow_penalty: cfg.overflow_penalty,
            ..Default::default()
        },
        ..Default::default()
    };
    let routed = route(&synth.circuit, &placed.placement, &grid, &synth.macro_rects, &router_cfg)
        .map_err(|e| DataError::pipeline("route", &e))?;
    let graph_cfg =
        LhGraphConfig { max_gnet_fraction: cfg.max_gnet_fraction, ..LhGraphConfig::default() };
    let graph = LhGraph::build(&synth.circuit, &placed.placement, &grid, &graph_cfg)
        .map_err(|e| DataError::pipeline("lh-graph", &e))?;
    let (gcell_div, gnet_div) = FeatureSet::default_divisors();
    let features = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid)
        .map_err(|e| DataError::pipeline("features", &e))?
        .scaled_fixed(&gcell_div, &gnet_div);
    let targets = Targets::from_labels(&routed.labels);
    let stats = DesignStats {
        name: synth_cfg.name.clone(),
        cells: synth.circuit.num_cells(),
        nets: synth.circuit.num_nets(),
        gcells: grid.num_gcells(),
        congestion_rate: routed.congestion_rate(),
    };
    let sample = Sample { name: synth_cfg.name.clone(), graph, features, targets };
    Ok(DesignData {
        name: synth_cfg.name.clone(),
        circuit: synth.circuit,
        placement: placed.placement,
        grid,
        macro_rects: synth.macro_rects,
        routed,
        sample,
        stats,
    })
}

/// Builds the full 15-design suite.
///
/// # Errors
///
/// Propagates the first per-design failure.
pub fn build_suite(cfg: &DatasetConfig) -> Result<Vec<DesignData>> {
    superblue_suite(cfg.base_seed, cfg.scale)
        .into_iter()
        .map(|sc| {
            let sc = SynthConfig { nets_per_cell: cfg.nets_per_cell, degree_p: cfg.degree_p, ..sc };
            build_design(&sc, cfg)
        })
        .collect()
}

/// A second synthetic family (`synthred*`) for the cross-design
/// generalization split: the same generator, deliberately pushed into a
/// structurally different regime than the `synthblue` suite — fewer,
/// larger clusters, denser cross-cluster wiring, a heavier high-fanout
/// tail (`degree_p` 0.30 vs 0.45) and more macro blockages. A model
/// trained on `synthblue` therefore sees genuinely out-of-family
/// netlists at eval time; its family knobs are fixed here on purpose and
/// NOT overridden by [`DatasetConfig`] (the knob gap *is* the shift).
pub fn cross_family_suite(base_seed: u64, scale: f32) -> Vec<SynthConfig> {
    // (grid, density multiplier, clusters, macros, cross-cluster prob)
    let specs: [(u32, f32, usize, usize, f64); 5] = [
        (28, 1.05, 3, 5, 0.24),
        (32, 0.80, 2, 4, 0.28),
        (28, 1.30, 3, 6, 0.22),
        (36, 0.95, 4, 5, 0.26),
        (32, 1.15, 3, 6, 0.30),
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, (grid, density, clusters, macros, cross))| SynthConfig {
            name: format!("synthred{}", i + 1),
            seed: base_seed.wrapping_add(7000 + i as u64),
            grid_nx: *grid,
            grid_ny: *grid,
            n_cells: ((*grid as f32 * *grid as f32) * density * scale) as usize,
            n_clusters: *clusters,
            n_macros: *macros,
            cross_cluster_prob: *cross,
            nets_per_cell: 1.2,
            degree_p: 0.30,
            ..SynthConfig::default()
        })
        .collect()
}

/// Builds the cross-design eval suite ([`cross_family_suite`]) end-to-end
/// — placement, routing labels and LHNN-ready samples — under the same
/// routing/placement settings as the training family, so the only shift
/// between the splits is the netlist structure itself.
///
/// # Errors
///
/// Propagates the first per-design failure.
pub fn build_cross_suite(cfg: &DatasetConfig) -> Result<Vec<DesignData>> {
    cross_family_suite(cfg.base_seed, cfg.scale)
        .into_iter()
        .map(|sc| build_design(&sc, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lh_graph::ChannelMode;

    fn tiny_cfg() -> (SynthConfig, DatasetConfig) {
        let synth = SynthConfig {
            name: "tiny".into(),
            n_cells: 220,
            grid_nx: 12,
            grid_ny: 12,
            ..SynthConfig::default()
        };
        let data = DatasetConfig { h_tracks: 8.0, v_tracks: 8.0, ..Default::default() };
        (synth, data)
    }

    #[test]
    fn build_design_produces_consistent_shapes() {
        let (synth, data) = tiny_cfg();
        let d = build_design(&synth, &data).unwrap();
        assert_eq!(d.sample.features.gcell.rows(), 144);
        assert_eq!(d.sample.targets.demand.rows(), 144);
        assert_eq!(d.stats.gcells, 144);
        assert_eq!(d.stats.cells, d.circuit.num_cells());
        assert!(d.routed.wirelength > 0);
    }

    #[test]
    fn image_sample_matches_modes() {
        let (synth, data) = tiny_cfg();
        let d = build_design(&synth, &data).unwrap();
        let uni = d.image_sample(ChannelMode::Uni);
        let duo = d.image_sample(ChannelMode::Duo);
        assert_eq!(uni.out_channels(), 1);
        assert_eq!(duo.out_channels(), 2);
        assert_eq!(uni.in_channels(), 4);
        assert_eq!(uni.input.cols(), 144);
    }

    #[test]
    fn build_design_is_deterministic() {
        let (synth, data) = tiny_cfg();
        let a = build_design(&synth, &data).unwrap();
        let b = build_design(&synth, &data).unwrap();
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.stats, b.stats);
    }
}
