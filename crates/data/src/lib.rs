//! `lhnn-data` — dataset assembly, split search and the experiment harness
//! for the LHNN reproduction (§5 of the paper).
//!
//! * [`dataset`] — builds the 15-design synthetic suite end-to-end
//!   (generate → place → route → LH-graph → features/targets),
//! * [`split`] — the exhaustive 10:5 split search of Table 1,
//! * [`runner`] — the Table 2 model comparison and Table 3 ablation
//!   protocols (5 seeds, per-design F1/ACC),
//! * [`report`] — paper-style `mean±std` tables and CSV output,
//! * [`viz`] — ASCII/PGM map rendering for Figure 4.
//!
//! The `lhnn-bench` crate exposes one binary per table/figure on top of
//! this crate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataset;
pub mod error;
pub mod report;
pub mod runner;
pub mod split;
pub mod viz;

pub use dataset::{
    build_cross_suite, build_design, build_suite, cross_family_suite, serving_inputs, CapacityMode,
    DatasetConfig, DesignData, DesignStats,
};
pub use error::{DataError, Result};
pub use report::{pct, pct1, write_bench_json, BenchRecord, TextTable};
pub use runner::{
    ablation_study, evaluate_image_model, model_comparison, run_baseline_seed, run_lhnn_seed,
    run_model, table3_specs, AblationScore, ExperimentConfig, ModelKind, ModelScore,
    PreparedDataset, SeedScore,
};
pub use split::{best_split, Split, SplitSearch};
pub use viz::{ascii_map, to_pgm, write_pgm};
