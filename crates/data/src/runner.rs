//! Experiment harness: the model-comparison (Table 2) and ablation
//! (Table 3) protocols of §5 of the paper.
//!
//! Each experiment fixes the Table 1 split, trains for a fixed number of
//! epochs, repeats over 5 seeds and reports the mean ± std of per-design
//! F1 and accuracy on the test set. Seeds run on parallel threads
//! (samples are shared immutably; every model owns its parameters).

use lh_graph::ChannelMode;
use lhnn::{evaluate, train, AblationSpec, Lhnn, LhnnConfig, Sample, TrainConfig};
use lhnn_baselines::{
    BaselineTrainConfig, ImageModel, ImageSample, MlpBaseline, Pix2PixModel, UNetModel,
};
use neurograd::{mean_std, Confusion};
use serde::{Deserialize, Serialize};

use crate::dataset::{build_suite, DatasetConfig, DesignData};
use crate::error::Result;
use crate::split::{best_split, SplitSearch};

/// Which model a Table 2 row refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// 4-layer residual MLP.
    Mlp,
    /// Pix2Pix conditional GAN.
    Pix2Pix,
    /// U-Net.
    UNet,
    /// The paper's model.
    Lhnn,
}

impl ModelKind {
    /// Display name matching the paper's table.
    pub fn display(&self) -> &'static str {
        match self {
            ModelKind::Mlp => "4-layer MLP",
            ModelKind::Pix2Pix => "Pix2Pix",
            ModelKind::UNet => "U-net",
            ModelKind::Lhnn => "LHNN(Ours)",
        }
    }

    /// All models in the paper's row order.
    pub fn all() -> [ModelKind; 4] {
        [ModelKind::Mlp, ModelKind::Pix2Pix, ModelKind::UNet, ModelKind::Lhnn]
    }
}

/// Harness configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Dataset build settings.
    pub dataset: DatasetConfig,
    /// Random seeds (paper repeats 5 times).
    pub seeds: Vec<u64>,
    /// LHNN training settings.
    pub lhnn_train: TrainConfig,
    /// Baseline training settings.
    pub baseline_train: BaselineTrainConfig,
    /// LHNN hidden size etc.
    pub lhnn: LhnnConfig,
    /// U-Net / Pix2Pix base feature width.
    pub cnn_features: usize,
    /// MLP hidden width (paper: common hyper-parameters with LHNN → 32).
    pub mlp_hidden: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            dataset: DatasetConfig::default(),
            seeds: vec![0, 1, 2, 3, 4],
            lhnn_train: TrainConfig::default(),
            baseline_train: BaselineTrainConfig::default(),
            lhnn: LhnnConfig::default(),
            cnn_features: 8,
            mlp_hidden: 32,
        }
    }
}

/// The dataset with its fixed split.
#[derive(Debug)]
pub struct PreparedDataset {
    /// All 15 designs.
    pub designs: Vec<DesignData>,
    /// The Table 1 split (indices into `designs`).
    pub search: SplitSearch,
}

impl PreparedDataset {
    /// Builds the suite and runs the exhaustive split search.
    ///
    /// # Errors
    ///
    /// Propagates dataset-build failures.
    pub fn build(cfg: &DatasetConfig) -> Result<Self> {
        let designs = build_suite(cfg)?;
        let rates: Vec<f64> = designs.iter().map(|d| d.stats.congestion_rate).collect();
        let search = best_split(&rates, 5);
        Ok(Self { designs, search })
    }

    /// Training-set LHNN samples.
    pub fn train_samples(&self) -> Vec<Sample> {
        self.search.split.train.iter().map(|&i| self.designs[i].sample.clone()).collect()
    }

    /// Test-set LHNN samples.
    pub fn test_samples(&self) -> Vec<Sample> {
        self.search.split.test.iter().map(|&i| self.designs[i].sample.clone()).collect()
    }

    /// Training-set image samples under a channel mode.
    pub fn train_images(&self, mode: ChannelMode) -> Vec<ImageSample> {
        self.search.split.train.iter().map(|&i| self.designs[i].image_sample(mode)).collect()
    }

    /// Test-set image samples under a channel mode.
    pub fn test_images(&self, mode: ChannelMode) -> Vec<ImageSample> {
        self.search.split.test.iter().map(|&i| self.designs[i].image_sample(mode)).collect()
    }

    /// Test designs ordered by congestion rate (used by Figure 4).
    pub fn test_by_congestion(&self) -> Vec<&DesignData> {
        let mut v: Vec<&DesignData> =
            self.search.split.test.iter().map(|&i| &self.designs[i]).collect();
        v.sort_by(|a, b| {
            a.stats.congestion_rate.partial_cmp(&b.stats.congestion_rate).expect("finite rates")
        });
        v
    }
}

/// One (model, seed) outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeedScore {
    /// Seed used.
    pub seed: u64,
    /// Mean per-design F1 on the test set.
    pub f1: f64,
    /// Mean per-design accuracy on the test set.
    pub accuracy: f64,
}

/// Aggregated Table 2 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelScore {
    /// Model display name.
    pub model: String,
    /// Per-seed scores.
    pub per_seed: Vec<SeedScore>,
    /// `(mean, std)` of F1.
    pub f1: (f64, f64),
    /// `(mean, std)` of accuracy.
    pub accuracy: (f64, f64),
}

fn aggregate(model: String, per_seed: Vec<SeedScore>) -> ModelScore {
    let f1s: Vec<f64> = per_seed.iter().map(|s| s.f1).collect();
    let accs: Vec<f64> = per_seed.iter().map(|s| s.accuracy).collect();
    ModelScore { model, f1: mean_std(&f1s), accuracy: mean_std(&accs), per_seed }
}

/// Per-design evaluation of an image model, averaged like
/// [`lhnn::evaluate`].
pub fn evaluate_image_model(model: &dyn ImageModel, samples: &[ImageSample]) -> (f64, f64) {
    let mut f1 = 0.0;
    let mut acc = 0.0;
    for s in samples {
        let pred = model.predict(s);
        let conf = Confusion::from_scores(pred.as_slice(), s.target_cls.as_slice(), 0.5);
        f1 += conf.f1();
        acc += conf.accuracy();
    }
    let n = samples.len().max(1) as f64;
    (f1 / n, acc / n)
}

/// Trains + evaluates LHNN for one seed.
pub fn run_lhnn_seed(
    prep: &PreparedDataset,
    cfg: &ExperimentConfig,
    mode: ChannelMode,
    ablation: &AblationSpec,
    seed: u64,
) -> SeedScore {
    let model_cfg = LhnnConfig { channel_mode: mode, ..cfg.lhnn.clone() };
    let mut model = Lhnn::new(model_cfg, seed);
    let train_cfg = TrainConfig { seed, ..cfg.lhnn_train.clone() };
    let train_set = prep.train_samples();
    train(&mut model, &train_set, ablation, &train_cfg);
    let test_set = prep.test_samples();
    let eval = evaluate(&model, &test_set, ablation);
    SeedScore { seed, f1: eval.f1, accuracy: eval.accuracy }
}

/// Trains + evaluates one baseline for one seed.
pub fn run_baseline_seed(
    kind: ModelKind,
    prep: &PreparedDataset,
    cfg: &ExperimentConfig,
    mode: ChannelMode,
    seed: u64,
) -> SeedScore {
    let in_dim = 4;
    let out_dim = mode.channels();
    let train_cfg = BaselineTrainConfig { seed, ..cfg.baseline_train.clone() };
    let train_set = prep.train_images(mode);
    let test_set = prep.test_images(mode);
    let mut model: Box<dyn ImageModel> = match kind {
        ModelKind::Mlp => Box::new(MlpBaseline::new(in_dim, out_dim, cfg.mlp_hidden, seed)),
        ModelKind::UNet => Box::new(UNetModel::new(in_dim, out_dim, cfg.cnn_features, seed)),
        ModelKind::Pix2Pix => Box::new(Pix2PixModel::new(in_dim, out_dim, cfg.cnn_features, seed)),
        ModelKind::Lhnn => unreachable!("lhnn is not an image model"),
    };
    model.fit(&train_set, &train_cfg);
    let (f1, accuracy) = evaluate_image_model(model.as_ref(), &test_set);
    SeedScore { seed, f1, accuracy }
}

/// Runs one model across all seeds (parallel threads, one per seed).
pub fn run_model(
    kind: ModelKind,
    prep: &PreparedDataset,
    cfg: &ExperimentConfig,
    mode: ChannelMode,
) -> ModelScore {
    let per_seed: Vec<SeedScore> = std::thread::scope(|scope| {
        let handles: Vec<_> = cfg
            .seeds
            .iter()
            .map(|&seed| {
                scope.spawn(move || match kind {
                    ModelKind::Lhnn => run_lhnn_seed(prep, cfg, mode, &AblationSpec::full(), seed),
                    other => run_baseline_seed(other, prep, cfg, mode, seed),
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("seed thread panicked")).collect()
    });
    aggregate(kind.display().to_string(), per_seed)
}

/// Table 2: every model under a channel mode.
pub fn model_comparison(
    prep: &PreparedDataset,
    cfg: &ExperimentConfig,
    mode: ChannelMode,
) -> Vec<ModelScore> {
    ModelKind::all().iter().map(|&k| run_model(k, prep, cfg, mode)).collect()
}

/// Table 3 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationScore {
    /// Ablation label (`full`, `-hypermp`, …).
    pub label: String,
    /// `(mean, std)` of F1 over seeds.
    pub f1: (f64, f64),
    /// Relative change vs the full model, `ΔF1/F1_full` in percent.
    pub delta_pct: f64,
}

/// The ablation specs of Table 3, in the paper's column order.
pub fn table3_specs() -> Vec<AblationSpec> {
    vec![
        AblationSpec::full(),
        AblationSpec::without_featuregen(),
        AblationSpec::without_hypermp(),
        AblationSpec::without_latticemp(),
        AblationSpec::without_jointing(),
        AblationSpec::without_gcell_features(),
    ]
}

/// Table 3: the uni-channel ablation study.
pub fn ablation_study(prep: &PreparedDataset, cfg: &ExperimentConfig) -> Vec<AblationScore> {
    let specs = table3_specs();
    let mut rows: Vec<(String, (f64, f64))> = Vec::new();
    for spec in &specs {
        let per_seed: Vec<SeedScore> = std::thread::scope(|scope| {
            let handles: Vec<_> = cfg
                .seeds
                .iter()
                .map(|&seed| {
                    scope.spawn(move || run_lhnn_seed(prep, cfg, ChannelMode::Uni, spec, seed))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("seed thread panicked")).collect()
        });
        let f1s: Vec<f64> = per_seed.iter().map(|s| s.f1).collect();
        rows.push((spec.label(), mean_std(&f1s)));
    }
    let full_f1 = rows[0].1 .0.max(1e-12);
    rows.into_iter()
        .map(|(label, f1)| AblationScore {
            label,
            f1,
            delta_pct: (f1.0 - full_f1) / full_f1 * 100.0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast, shrunken configuration for harness tests.
    pub(crate) fn quick_cfg() -> ExperimentConfig {
        ExperimentConfig {
            dataset: DatasetConfig {
                scale: 0.15,
                h_tracks: 6.0,
                v_tracks: 6.0,
                ..Default::default()
            },
            seeds: vec![0, 1],
            lhnn_train: TrainConfig { epochs: 6, ..Default::default() },
            baseline_train: BaselineTrainConfig { epochs: 6, ..Default::default() },
            cnn_features: 4,
            ..Default::default()
        }
    }

    #[test]
    fn prepared_dataset_builds_and_splits() {
        let cfg = quick_cfg();
        let prep = PreparedDataset::build(&cfg.dataset).unwrap();
        assert_eq!(prep.designs.len(), 15);
        assert_eq!(prep.train_samples().len(), 10);
        assert_eq!(prep.test_samples().len(), 5);
        assert_eq!(prep.search.candidates, 3003);
        // congestion sorted test designs are monotone
        let sorted = prep.test_by_congestion();
        for w in sorted.windows(2) {
            assert!(w[0].stats.congestion_rate <= w[1].stats.congestion_rate);
        }
    }

    #[test]
    fn lhnn_seed_run_produces_scores() {
        let mut cfg = quick_cfg();
        // Range-check only — 4 epochs keeps this comfortably inside the
        // ~60s single-test budget on slow machines.
        cfg.lhnn_train.epochs = 4;
        let prep = PreparedDataset::build(&cfg.dataset).unwrap();
        let s = run_lhnn_seed(&prep, &cfg, ChannelMode::Uni, &AblationSpec::full(), 0);
        assert!((0.0..=1.0).contains(&s.f1));
        assert!((0.0..=1.0).contains(&s.accuracy));
    }

    #[test]
    fn mlp_baseline_seed_run_produces_scores() {
        let cfg = quick_cfg();
        let prep = PreparedDataset::build(&cfg.dataset).unwrap();
        let s = run_baseline_seed(ModelKind::Mlp, &prep, &cfg, ChannelMode::Uni, 0);
        assert!((0.0..=1.0).contains(&s.f1));
        assert!(s.accuracy > 0.3, "accuracy implausibly low: {}", s.accuracy);
    }

    #[test]
    fn table3_has_six_specs_in_paper_order() {
        let specs = table3_specs();
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].label(), "full");
        assert_eq!(specs[2].label(), "-hypermp");
        assert_eq!(specs[5].label(), "-gcellfeat");
    }

    #[test]
    fn aggregate_computes_mean_std() {
        let scores = vec![
            SeedScore { seed: 0, f1: 0.4, accuracy: 0.9 },
            SeedScore { seed: 1, f1: 0.6, accuracy: 1.0 },
        ];
        let agg = aggregate("m".into(), scores);
        assert!((agg.f1.0 - 0.5).abs() < 1e-12);
        assert!((agg.accuracy.0 - 0.95).abs() < 1e-12);
        assert!(agg.f1.1 > 0.0);
    }
}
