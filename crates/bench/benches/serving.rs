//! Criterion benchmarks for the serving layer: engine overhead vs a
//! direct forward, and the cache fast path.
//!
//! Three numbers bound the design space: `direct` is the raw forward,
//! `engine_miss` adds queue + worker + fingerprint overhead (should be a
//! small constant on top of `direct`), and `engine_hit` is the cache fast
//! path (hashing only — orders of magnitude below a forward).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use lh_graph::FeatureSet;
use lhnn::{GraphOps, Lhnn, LhnnConfig};
use lhnn_serve::{EngineConfig, ModelRegistry, PredictRequest, ServeEngine};

fn inputs(grid: u32) -> (Arc<GraphOps>, Arc<FeatureSet>) {
    let (ops, features) =
        lhnn_data::serving_inputs(0, (grid * grid) as usize, grid).expect("build design");
    (Arc::new(ops), Arc::new(features))
}

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    let (ops, features) = inputs(16);
    let model = Lhnn::new(LhnnConfig::default(), 0);

    group.bench_function("direct_predict", |b| {
        b.iter(|| model.predict(&ops, &features));
    });

    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", Lhnn::new(LhnnConfig::default(), 0)).expect("register");
    let miss_engine = ServeEngine::new(
        Arc::clone(&registry),
        EngineConfig { workers: 1, cache_capacity: 0, ..EngineConfig::default() },
    );
    let miss = miss_engine.handle();
    let req = PredictRequest::new("m", Arc::clone(&ops), Arc::clone(&features));
    group.bench_function("engine_miss", |b| {
        b.iter(|| miss.predict(&req).expect("serve"));
    });

    let hit_engine = ServeEngine::new(
        registry,
        EngineConfig { workers: 1, cache_capacity: 8, ..EngineConfig::default() },
    );
    let hit = hit_engine.handle();
    hit.predict(&req).expect("warm the cache");
    group.bench_function("engine_hit", |b| {
        b.iter(|| {
            let reply = hit.predict(&req).expect("serve");
            assert!(reply.cached);
        });
    });

    group.finish();
    miss_engine.shutdown();
    hit_engine.shutdown();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
