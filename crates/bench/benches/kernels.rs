//! Criterion micro-benchmarks for the parallel kernel backend: the same
//! matmul/spmm workload at 1 compute thread vs 4, isolating pool speedup.
//! Results are bitwise identical across the sweep (`neurograd::kernels`
//! determinism contract), so only scheduling differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurograd::{pool, CsrMatrix, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .expect("sized")
}

fn bench_matmul_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_matmul");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(0);
    let a = random_matrix(8192, 64, &mut rng);
    let b = random_matrix(64, 64, &mut rng);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("8192x64x64", threads), &threads, |bench, &t| {
            pool::configure_threads(t);
            bench.iter(|| a.matmul(&b));
        });
    }
    group.finish();
    pool::configure_threads(1);
}

fn bench_spmm_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_spmm");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    let rows = 8192usize;
    let triplets: Vec<(usize, usize, f32)> =
        (0..rows).flat_map(|r| [1usize, 7, 63, 64].map(|d| (r, (r + d) % rows, 0.25))).collect();
    let s = CsrMatrix::from_triplets(rows, rows, &triplets);
    let _ = s.transpose_cached(); // exclude the one-time transpose build
    let x = random_matrix(rows, 32, &mut rng);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("spmm_4nnz_x32", threads),
            &threads,
            |bench, &t| {
                pool::configure_threads(t);
                bench.iter(|| s.spmm(&x));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("spmm_t_4nnz_x32", threads),
            &threads,
            |bench, &t| {
                pool::configure_threads(t);
                bench.iter(|| s.spmm_t(&x));
            },
        );
    }
    group.finish();
    pool::configure_threads(1);
}

criterion_group!(benches, bench_matmul_threads, bench_spmm_threads);
criterion_main!(benches);
