//! Criterion benchmarks for the learned models: LHNN inference and one
//! training step vs the CNN baselines, at the experiment grid sizes.
//! These quantify the cost behind every Table 2/3 cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lh_graph::{ChannelMode, FeatureSet, LhGraph, LhGraphConfig, Targets};
use lhnn::{AblationSpec, GraphOps, Lhnn, LhnnConfig, Sample, TrainConfig};
use lhnn_baselines::{BaselineTrainConfig, ImageModel, ImageSample, MlpBaseline, UNetModel};
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_place::GlobalPlacer;
use vlsi_route::{route, RouterConfig};

fn sample(n_cells: usize, grid: u32) -> Sample {
    let cfg = SynthConfig {
        name: format!("bench{n_cells}"),
        n_cells,
        grid_nx: grid,
        grid_ny: grid,
        ..SynthConfig::default()
    };
    let synth = generate(&cfg).expect("generate");
    let g = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &g).expect("place");
    let routed =
        route(&synth.circuit, &placed.placement, &g, &synth.macro_rects, &RouterConfig::default())
            .expect("route");
    let graph = LhGraph::build(&synth.circuit, &placed.placement, &g, &LhGraphConfig::default())
        .expect("graph");
    let (gd, nd) = FeatureSet::default_divisors();
    let features = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &g)
        .expect("features")
        .scaled_fixed(&gd, &nd);
    Sample { name: cfg.name, graph, features, targets: Targets::from_labels(&routed.labels) }
}

fn image_of(s: &Sample, nx: usize, ny: usize) -> ImageSample {
    ImageSample::from_node_major(
        s.name.clone(),
        nx,
        ny,
        &s.features.gcell,
        &s.targets.congestion_channels(ChannelMode::Uni),
    )
}

fn bench_lhnn(c: &mut Criterion) {
    let mut group = c.benchmark_group("lhnn");
    group.sample_size(10);
    for grid in [16u32, 32] {
        let s = sample((grid * grid) as usize, grid);
        let ops = GraphOps::from_graph(&s.graph, &AblationSpec::full());
        let model = Lhnn::new(LhnnConfig::default(), 0);
        group.bench_with_input(BenchmarkId::new("inference", grid * grid), &grid, |b, _| {
            b.iter(|| model.predict(&ops, &s.features));
        });
        group.bench_with_input(BenchmarkId::new("train_epoch", grid * grid), &grid, |b, _| {
            b.iter(|| {
                let mut m = Lhnn::new(LhnnConfig::default(), 0);
                let cfg = TrainConfig { epochs: 1, ..Default::default() };
                lhnn::train(&mut m, std::slice::from_ref(&s), &AblationSpec::full(), &cfg)
            });
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    let grid = 32u32;
    let s = sample((grid * grid) as usize, grid);
    let img = image_of(&s, grid as usize, grid as usize);
    let mlp = MlpBaseline::new(4, 1, 32, 0);
    let unet = UNetModel::new(4, 1, 8, 0);
    group.bench_function("mlp_inference_1024", |b| {
        b.iter(|| mlp.predict(&img));
    });
    group.bench_function("unet_inference_1024", |b| {
        b.iter(|| unet.predict(&img));
    });
    group.bench_function("unet_train_epoch_1024", |b| {
        b.iter(|| {
            let mut m = UNetModel::new(4, 1, 8, 0);
            m.fit(
                std::slice::from_ref(&img),
                &BaselineTrainConfig { epochs: 1, ..Default::default() },
            );
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lhnn, bench_baselines);
criterion_main!(benches);
