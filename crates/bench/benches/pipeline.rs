//! Criterion benchmarks for the EDA pipeline stages that generate the
//! paper's data: placement, global routing (the Table 1 label generator),
//! RUDY estimation and LH-graph construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lh_graph::{FeatureSet, LhGraph, LhGraphConfig};
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_place::GlobalPlacer;
use vlsi_route::{route, rudy_maps, RouterConfig};

fn design(n_cells: usize, grid: u32) -> SynthConfig {
    SynthConfig {
        name: format!("bench{n_cells}"),
        n_cells,
        grid_nx: grid,
        grid_ny: grid,
        ..SynthConfig::default()
    }
}

fn bench_placer(c: &mut Criterion) {
    let mut group = c.benchmark_group("placer");
    group.sample_size(10);
    for (cells, grid) in [(500usize, 16u32), (1500, 32)] {
        let cfg = design(cells, grid);
        let synth = generate(&cfg).expect("generate");
        let g = cfg.grid();
        group.bench_with_input(BenchmarkId::new("global_place", cells), &cells, |b, _| {
            b.iter(|| GlobalPlacer::default().place_synth(&synth, &g).expect("place"));
        });
    }
    group.finish();
}

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("router");
    group.sample_size(10);
    for (cells, grid) in [(500usize, 16u32), (1500, 32)] {
        let cfg = design(cells, grid);
        let synth = generate(&cfg).expect("generate");
        let g = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &g).expect("place");
        group.bench_with_input(BenchmarkId::new("route_labels", cells), &cells, |b, _| {
            b.iter(|| {
                route(
                    &synth.circuit,
                    &placed.placement,
                    &g,
                    &synth.macro_rects,
                    &RouterConfig::default(),
                )
                .expect("route")
            });
        });
        group.bench_with_input(BenchmarkId::new("rudy", cells), &cells, |b, _| {
            b.iter(|| rudy_maps(&synth.circuit, &placed.placement, &g));
        });
    }
    group.finish();
}

fn bench_lhgraph(c: &mut Criterion) {
    let mut group = c.benchmark_group("lhgraph");
    group.sample_size(10);
    for (cells, grid) in [(500usize, 16u32), (1500, 32)] {
        let cfg = design(cells, grid);
        let synth = generate(&cfg).expect("generate");
        let g = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &g).expect("place");
        group.bench_with_input(BenchmarkId::new("build_graph", cells), &cells, |b, _| {
            b.iter(|| {
                LhGraph::build(&synth.circuit, &placed.placement, &g, &LhGraphConfig::default())
                    .expect("graph")
            });
        });
        let graph =
            LhGraph::build(&synth.circuit, &placed.placement, &g, &LhGraphConfig::default())
                .expect("graph");
        group.bench_with_input(BenchmarkId::new("build_features", cells), &cells, |b, _| {
            b.iter(|| {
                FeatureSet::build(&graph, &synth.circuit, &placed.placement, &g).expect("features")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_placer, bench_router, bench_lhgraph);
criterion_main!(benches);
