//! Criterion micro-benchmarks for the numeric substrates: dense/sparse
//! linear algebra and the convolution kernels that every experiment's
//! runtime is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neurograd::{Conv2dCfg, CsrMatrix, Matrix, Tape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .expect("sized")
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(0);
    for n in [256usize, 1024] {
        let a = random_matrix(n, 32, &mut rng);
        let b = random_matrix(32, 32, &mut rng);
        group.bench_with_input(BenchmarkId::new("nx32_32x32", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b));
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    for n in [1024usize, 2048] {
        // ~8 entries per row, like an LH-graph incidence matrix
        let triplets: Vec<(usize, usize, f32)> = (0..n)
            .flat_map(|r| {
                let mut rng = StdRng::seed_from_u64(r as u64);
                (0..8).map(move |_| (r, rng.gen_range(0..n), 1.0)).collect::<Vec<_>>()
            })
            .collect();
        let s = CsrMatrix::from_triplets(n, n, &triplets);
        let x = random_matrix(n, 32, &mut rng);
        group.bench_with_input(BenchmarkId::new("8nnz_row_x32", n), &n, |bench, _| {
            bench.iter(|| s.spmm(&x));
        });
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(2);
    for hw in [32usize, 64] {
        let cfg = Conv2dCfg::same(8, 8, hw, hw, 3);
        let x = random_matrix(8, hw * hw, &mut rng);
        let w = random_matrix(8, 8 * 9, &mut rng);
        let b = Matrix::zeros(8, 1);
        group.bench_with_input(BenchmarkId::new("8ch_3x3", hw), &hw, |bench, _| {
            bench.iter(|| {
                let mut tape = Tape::new();
                let xv = tape.leaf(x.clone());
                let wv = tape.leaf(w.clone());
                let bv = tape.leaf(b.clone());
                tape.conv2d(xv, wv, bv, cfg)
            });
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("tape_backward");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(3);
    let x = random_matrix(1024, 32, &mut rng);
    let w = random_matrix(32, 32, &mut rng);
    group.bench_function("mlp3_1024x32", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.leaf_grad(x.clone());
            let wv = tape.leaf_grad(w.clone());
            let mut h = xv;
            for _ in 0..3 {
                h = tape.matmul(h, wv);
                h = tape.relu(h);
            }
            let loss = tape.mean_all(h);
            tape.backward(loss);
            tape.grad(wv).map(Matrix::sum)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_spmm, bench_conv2d, bench_backward);
criterion_main!(benches);
