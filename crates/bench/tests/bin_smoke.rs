//! One smoke test per harness binary: `--help` must print the shared
//! usage text and exit successfully *without* starting the experiment
//! protocol (which at default scale trains for 150 epochs).

use std::process::Command;

fn assert_help(exe: &str, binary_name: &str) {
    let out = Command::new(exe).arg("--help").output().expect("spawn harness binary");
    assert!(out.status.success(), "{binary_name} --help failed: {:?}", out.status);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"), "{binary_name}: no usage text:\n{text}");
    assert!(text.contains(binary_name), "{binary_name}: usage lacks binary name:\n{text}");
    assert!(text.contains("--scale"), "{binary_name}: usage lacks shared flags:\n{text}");
}

macro_rules! help_smoke {
    ($($test:ident => $env:literal / $name:literal;)*) => {$(
        #[test]
        fn $test() {
            assert_help(env!($env), $name);
        }
    )*};
}

help_smoke! {
    table1_prints_help => "CARGO_BIN_EXE_table1" / "table1";
    table2_prints_help => "CARGO_BIN_EXE_table2" / "table2";
    table3_prints_help => "CARGO_BIN_EXE_table3" / "table3";
    figure4_prints_help => "CARGO_BIN_EXE_figure4" / "figure4";
    gamma_sweep_prints_help => "CARGO_BIN_EXE_gamma_sweep" / "gamma_sweep";
    fanout_ablation_prints_help => "CARGO_BIN_EXE_fanout_ablation" / "fanout_ablation";
    scaling_prints_help => "CARGO_BIN_EXE_scaling" / "scaling";
    serving_prints_help => "CARGO_BIN_EXE_serving" / "serving";
    kernels_prints_help => "CARGO_BIN_EXE_kernels" / "kernels";
}
