//! `lhnn-bench` — the benchmark harness regenerating every table and
//! figure of the LHNN paper's evaluation (§5).
//!
//! Binaries (run with `cargo run --release -p lhnn-bench --bin <name>`):
//!
//! * `table1` — dataset statistics + the fixed 10:5 split,
//! * `table2` — model comparison (uni-/duo-channel F1 + ACC, 5 seeds),
//! * `table3` — the uni-channel ablation study,
//! * `figure4` — prediction-map visualisations for three test designs,
//! * `gamma_sweep`, `fanout_ablation`, `scaling` — extensions beyond the
//!   paper (DESIGN.md §7),
//! * `serving` — throughput/latency/cache sweep of the `lhnn-serve`
//!   inference engine across worker counts.
//!
//! Every binary accepts `--scale`, `--epochs` and `--seeds` to shrink the
//! protocol for smoke runs, and writes CSV mirrors under `results/`.
//! Criterion micro-benchmarks for the underlying substrates live in
//! `benches/`.

#![warn(missing_docs)]

use lhnn::TrainConfig;
use lhnn_baselines::BaselineTrainConfig;
use lhnn_data::{DatasetConfig, ExperimentConfig};

/// Usage text for a harness binary: the flags [`HarnessArgs::parse`]
/// understands (binaries may accept further flags of their own).
pub fn usage(binary: &str) -> String {
    format!(
        "\
{binary} — LHNN evaluation harness binary

USAGE:
  cargo run --release -p lhnn-bench --bin {binary} [-- OPTIONS]

OPTIONS:
  --scale F     dataset scale multiplier (default 1.0)
  --epochs N    training epochs for all models (default 150)
  --seeds N     number of random seeds (default 5)
  --out DIR     output directory for CSV/PGM results (default results/)
  -h, --help    print this help and exit"
    )
}

/// Command-line overrides shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Dataset scale multiplier.
    pub scale: f32,
    /// Training epochs (all models).
    pub epochs: usize,
    /// Number of random seeds.
    pub seeds: usize,
    /// Output directory for CSV/PGM results.
    pub out_dir: String,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self { scale: 1.0, epochs: 150, seeds: 5, out_dir: "results".into() }
    }
}

impl HarnessArgs {
    /// Parses `--scale F --epochs N --seeds N --out DIR` from `args`
    /// (unknown flags are ignored so binaries can add their own).
    pub fn parse(args: &[String]) -> Self {
        let mut out = Self::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        out.scale = v;
                    }
                }
                "--epochs" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        out.epochs = v;
                    }
                }
                "--seeds" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        out.seeds = v;
                    }
                }
                "--out" => {
                    if let Some(v) = it.next() {
                        out.out_dir = v.clone();
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Parses from the process arguments.
    ///
    /// `--help` / `-h` prints the shared usage text and exits, so every
    /// harness binary supports a cheap smoke invocation that never starts
    /// the (expensive) experiment protocol.
    pub fn from_env() -> Self {
        let mut args = std::env::args();
        let binary = args
            .next()
            .map(|p| {
                std::path::Path::new(&p)
                    .file_stem()
                    .map_or_else(|| p.clone(), |s| s.to_string_lossy().into_owned())
            })
            .unwrap_or_else(|| "lhnn-bench".into());
        let args: Vec<String> = args.collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", usage(&binary));
            std::process::exit(0);
        }
        Self::parse(&args)
    }

    /// Builds the experiment configuration these arguments describe.
    pub fn experiment_config(&self) -> ExperimentConfig {
        ExperimentConfig {
            dataset: DatasetConfig { scale: self.scale, ..Default::default() },
            seeds: (0..self.seeds as u64).collect(),
            lhnn_train: TrainConfig { epochs: self.epochs, ..Default::default() },
            baseline_train: BaselineTrainConfig { epochs: self.epochs, ..Default::default() },
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_overrides() {
        let args: Vec<String> = ["--scale", "0.3", "--epochs", "10", "--seeds", "2", "--out", "x"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let h = HarnessArgs::parse(&args);
        assert_eq!(h.scale, 0.3);
        assert_eq!(h.epochs, 10);
        assert_eq!(h.seeds, 2);
        assert_eq!(h.out_dir, "x");
    }

    #[test]
    fn defaults_match_paper_protocol() {
        let h = HarnessArgs::default();
        assert_eq!(h.seeds, 5);
        let cfg = h.experiment_config();
        assert_eq!(cfg.seeds.len(), 5);
        assert_eq!(cfg.lhnn_train.epochs, cfg.baseline_train.epochs);
    }

    #[test]
    fn unknown_flags_are_ignored() {
        let args: Vec<String> =
            ["--bogus", "7", "--epochs", "3"].iter().map(|s| (*s).to_string()).collect();
        let h = HarnessArgs::parse(&args);
        assert_eq!(h.epochs, 3);
        assert_eq!(h.scale, 1.0);
    }
}
