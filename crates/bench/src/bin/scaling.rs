//! Extension experiment (DESIGN.md §7): inference cost vs circuit size.
//!
//! The practical promise of learned congestion prediction is replacing the
//! global router inside the placement loop. This harness measures, per
//! grid size: router label time, LHNN inference time (single-threaded and
//! through the `lhnn-serve` worker pool) and U-Net inference time — the
//! speed-up a placer would see, and how it scales across cores.
//!
//! ```text
//! cargo run --release -p lhnn-bench --bin scaling [-- --threads N]
//! ```

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use lh_graph::{ChannelMode, FeatureSet, LhGraph, LhGraphConfig, Targets};
use lhnn::{train, AblationSpec, GraphOps, Lhnn, LhnnConfig, Sample, TrainConfig};
use lhnn_baselines::{ImageModel, ImageSample, UNetModel};
use lhnn_bench::HarnessArgs;
use lhnn_data::TextTable;
use lhnn_serve::{EngineConfig, ModelRegistry, PredictRequest, ServeEngine};
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_place::GlobalPlacer;
use vlsi_route::{route, rudy_maps, RouterConfig};

fn time_ms(mut f: impl FnMut()) -> f64 {
    // warm-up + best of 3
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

/// Wall-clock (ms) for a burst of distinct same-size requests through an
/// engine with `workers` threads; the per-request mean shows pool scaling.
fn serve_burst_ms(ops: &Arc<GraphOps>, variants: &[Arc<FeatureSet>], workers: usize) -> f64 {
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", Lhnn::new(LhnnConfig::default(), 0)).expect("register");
    // cache off: we are measuring forwards, not lookups
    let engine = ServeEngine::new(
        registry,
        EngineConfig { workers, cache_capacity: 0, ..EngineConfig::default() },
    );
    let handle = engine.handle();
    let requests: Vec<PredictRequest> =
        variants.iter().map(|f| PredictRequest::new("m", Arc::clone(ops), Arc::clone(f))).collect();
    let total = time_ms(|| {
        for r in handle.predict_batch(&requests) {
            r.expect("serve");
        }
    });
    engine.shutdown();
    total / variants.len() as f64
}

fn main() {
    let args = HarnessArgs::from_env();
    // extra flag: worker-pool width for the parallel columns
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let threads = raw
        .windows(2)
        .find(|w| w[0] == "--threads")
        .and_then(|w| w[1].parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get).min(4)
        })
        .max(1);
    // Pin the intra-op pool to one lane so the worker-pool columns keep
    // measuring request-level parallelism; the epoch columns re-widen it
    // explicitly. Kernel results are bitwise identical either way.
    neurograd::pool::configure_threads(1);
    let mut table = TextTable::new(&[
        "G-cells",
        "#cells",
        "route (ms)",
        "rudy (ms)",
        "lhnn direct (ms)",
        "lhnn 1T (ms)",
        &format!("lhnn {threads}T (ms)"),
        "pool speedup",
        "epoch 1T (ms)",
        &format!("epoch {threads}T (ms)"),
        "epoch speedup",
        "unet (ms)",
        "router/lhnn",
    ]);
    for grid in [16u32, 24, 32, 48, 64] {
        let n_cells = (grid * grid) as usize;
        let cfg = SynthConfig {
            name: format!("scale{grid}"),
            n_cells,
            grid_nx: grid,
            grid_ny: grid,
            ..SynthConfig::default()
        };
        let synth = generate(&cfg).expect("generate");
        let g = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &g).expect("place");
        let route_ms = time_ms(|| {
            route(
                &synth.circuit,
                &placed.placement,
                &g,
                &synth.macro_rects,
                &RouterConfig::default(),
            )
            .expect("route");
        });
        let rudy_ms = time_ms(|| {
            rudy_maps(&synth.circuit, &placed.placement, &g);
        });
        let routed = route(
            &synth.circuit,
            &placed.placement,
            &g,
            &synth.macro_rects,
            &RouterConfig::default(),
        )
        .expect("route");
        let graph =
            LhGraph::build(&synth.circuit, &placed.placement, &g, &LhGraphConfig::default())
                .expect("graph");
        let (gd, nd) = FeatureSet::default_divisors();
        let features = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &g)
            .expect("features")
            .scaled_fixed(&gd, &nd);
        let sample = Sample {
            name: cfg.name.clone(),
            graph,
            features,
            targets: Targets::from_labels(&routed.labels),
        };
        let ops = Arc::new(GraphOps::from_graph(&sample.graph, &AblationSpec::full()));
        let lhnn = Lhnn::new(LhnnConfig::default(), 0);
        let lhnn_ms = time_ms(|| {
            lhnn.predict(&ops, &sample.features);
        });
        // Distinct same-shape feature variants (tiny rescale changes the
        // fingerprint, not the cost) so neither the cache nor single-flight
        // collapses the burst; 2 per worker keeps every thread busy.
        let variants: Vec<Arc<FeatureSet>> = (0..threads * 2)
            .map(|i| {
                let eps = 1.0 + i as f32 * 1e-6;
                Arc::new(FeatureSet {
                    gnet: sample.features.gnet.map(|v| v * eps),
                    gcell: sample.features.gcell.map(|v| v * eps),
                })
            })
            .collect();
        let serve_1t_ms = serve_burst_ms(&ops, &variants, 1);
        let serve_nt_ms = serve_burst_ms(&ops, &variants, threads);
        let speedup = serve_1t_ms / serve_nt_ms.max(1e-9);
        // One training epoch (forward + backward + Adam step) on this
        // design, intra-op serial vs the pooled kernels.
        let epoch_samples = [sample.clone()];
        let epoch_cfg = TrainConfig { epochs: 1, ..Default::default() };
        let run_epoch = || {
            let mut model = Lhnn::new(LhnnConfig::default(), 0);
            train(&mut model, &epoch_samples, &AblationSpec::full(), &epoch_cfg);
        };
        let epoch_1t_ms = time_ms(run_epoch);
        neurograd::pool::configure_threads(threads);
        let epoch_nt_ms = time_ms(run_epoch);
        neurograd::pool::configure_threads(1);
        let epoch_speedup = epoch_1t_ms / epoch_nt_ms.max(1e-9);
        let unet = UNetModel::new(4, 1, 8, 0);
        let img = ImageSample::from_node_major(
            cfg.name.clone(),
            grid as usize,
            grid as usize,
            &sample.features.gcell,
            &sample.targets.congestion_channels(ChannelMode::Uni),
        );
        let unet_ms = time_ms(|| {
            unet.predict(&img);
        });
        println!(
            "grid {grid}x{grid}: route {route_ms:.1} ms, rudy {rudy_ms:.2} ms, lhnn {lhnn_ms:.1} ms (pool {serve_1t_ms:.1} -> {serve_nt_ms:.1} ms/req at {threads}T, {speedup:.2}x; epoch {epoch_1t_ms:.1} -> {epoch_nt_ms:.1} ms, {epoch_speedup:.2}x), unet {unet_ms:.1} ms"
        );
        table.add_row(vec![
            (grid * grid).to_string(),
            n_cells.to_string(),
            format!("{route_ms:.1}"),
            format!("{rudy_ms:.2}"),
            format!("{lhnn_ms:.1}"),
            format!("{serve_1t_ms:.1}"),
            format!("{serve_nt_ms:.1}"),
            format!("{speedup:.2}x"),
            format!("{epoch_1t_ms:.1}"),
            format!("{epoch_nt_ms:.1}"),
            format!("{epoch_speedup:.2}x"),
            format!("{unet_ms:.1}"),
            format!("{:.1}x", route_ms / lhnn_ms.max(1e-9)),
        ]);
    }
    println!("\nInference scaling (single thread vs {threads}-worker pool):");
    println!("{}", table.render());
    table.write_csv(&Path::new(&args.out_dir).join("scaling.csv")).expect("write csv");
}
