//! Extension experiment (DESIGN.md §7): inference cost vs circuit size.
//!
//! The practical promise of learned congestion prediction is replacing the
//! global router inside the placement loop. This harness measures, per
//! grid size: router label time, LHNN inference time and U-Net inference
//! time — the speed-up a placer would see.
//!
//! ```text
//! cargo run --release -p lhnn-bench --bin scaling
//! ```

use std::path::Path;
use std::time::Instant;

use lh_graph::{ChannelMode, FeatureSet, LhGraph, LhGraphConfig, Targets};
use lhnn::{AblationSpec, GraphOps, Lhnn, LhnnConfig, Sample};
use lhnn_baselines::{ImageModel, ImageSample, UNetModel};
use lhnn_bench::HarnessArgs;
use lhnn_data::TextTable;
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_place::GlobalPlacer;
use vlsi_route::{route, rudy_maps, RouterConfig};

fn time_ms(mut f: impl FnMut()) -> f64 {
    // warm-up + best of 3
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

fn main() {
    let args = HarnessArgs::from_env();
    let mut table = TextTable::new(&[
        "G-cells",
        "#cells",
        "route (ms)",
        "rudy (ms)",
        "lhnn (ms)",
        "unet (ms)",
        "router/lhnn",
    ]);
    for grid in [16u32, 24, 32, 48, 64] {
        let n_cells = (grid * grid) as usize;
        let cfg = SynthConfig {
            name: format!("scale{grid}"),
            n_cells,
            grid_nx: grid,
            grid_ny: grid,
            ..SynthConfig::default()
        };
        let synth = generate(&cfg).expect("generate");
        let g = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &g).expect("place");
        let route_ms = time_ms(|| {
            route(
                &synth.circuit,
                &placed.placement,
                &g,
                &synth.macro_rects,
                &RouterConfig::default(),
            )
            .expect("route");
        });
        let rudy_ms = time_ms(|| {
            rudy_maps(&synth.circuit, &placed.placement, &g);
        });
        let routed = route(
            &synth.circuit,
            &placed.placement,
            &g,
            &synth.macro_rects,
            &RouterConfig::default(),
        )
        .expect("route");
        let graph =
            LhGraph::build(&synth.circuit, &placed.placement, &g, &LhGraphConfig::default())
                .expect("graph");
        let (gd, nd) = FeatureSet::default_divisors();
        let features = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &g)
            .expect("features")
            .scaled_fixed(&gd, &nd);
        let sample = Sample {
            name: cfg.name.clone(),
            graph,
            features,
            targets: Targets::from_labels(&routed.labels),
        };
        let ops = GraphOps::from_graph(&sample.graph, &AblationSpec::full());
        let lhnn = Lhnn::new(LhnnConfig::default(), 0);
        let lhnn_ms = time_ms(|| {
            lhnn.predict(&ops, &sample.features);
        });
        let unet = UNetModel::new(4, 1, 8, 0);
        let img = ImageSample::from_node_major(
            cfg.name.clone(),
            grid as usize,
            grid as usize,
            &sample.features.gcell,
            &sample.targets.congestion_channels(ChannelMode::Uni),
        );
        let unet_ms = time_ms(|| {
            unet.predict(&img);
        });
        println!(
            "grid {grid}x{grid}: route {route_ms:.1} ms, rudy {rudy_ms:.2} ms, lhnn {lhnn_ms:.1} ms, unet {unet_ms:.1} ms"
        );
        table.add_row(vec![
            (grid * grid).to_string(),
            n_cells.to_string(),
            format!("{route_ms:.1}"),
            format!("{rudy_ms:.2}"),
            format!("{lhnn_ms:.1}"),
            format!("{unet_ms:.1}"),
            format!("{:.1}x", route_ms / lhnn_ms.max(1e-9)),
        ]);
    }
    println!("\nInference scaling (single thread):");
    println!("{}", table.render());
    table.write_csv(&Path::new(&args.out_dir).join("scaling.csv")).expect("write csv");
}
