//! Extension experiment (DESIGN.md §7): sensitivity of LHNN to the label
//! balance weight γ of Eq. 5. The paper fixes γ = 0.7; this sweep shows
//! the trade-off it controls — small γ inflates recall at the cost of
//! precision, γ = 1 disables the re-weighting.
//!
//! ```text
//! cargo run --release -p lhnn-bench --bin gamma_sweep [--scale F] [--epochs N] [--seeds N]
//! ```

use std::path::Path;

use lh_graph::ChannelMode;
use lhnn::{AblationSpec, TrainConfig};
use lhnn_bench::HarnessArgs;
use lhnn_data::{pct, run_lhnn_seed, ExperimentConfig, PreparedDataset, TextTable};
use neurograd::mean_std;

fn main() {
    let args = HarnessArgs::from_env();
    let base = args.experiment_config();
    eprintln!(
        "gamma sweep: scale {}, {} epochs, {} seeds",
        args.scale,
        base.lhnn_train.epochs,
        base.seeds.len()
    );
    let prep = PreparedDataset::build(&base.dataset).expect("dataset build failed");

    let mut table = TextTable::new(&["gamma", "F1", "ACC"]);
    for gamma in [0.1f32, 0.3, 0.5, 0.7, 0.9, 1.0] {
        let cfg = ExperimentConfig {
            lhnn_train: TrainConfig { gamma, ..base.lhnn_train.clone() },
            ..base.clone()
        };
        let scores: Vec<(f64, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = cfg
                .seeds
                .iter()
                .map(|&seed| {
                    let cfg = &cfg;
                    let prep = &prep;
                    scope.spawn(move || {
                        let s =
                            run_lhnn_seed(prep, cfg, ChannelMode::Uni, &AblationSpec::full(), seed);
                        (s.f1, s.accuracy)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("seed thread")).collect()
        });
        let f1s: Vec<f64> = scores.iter().map(|s| s.0).collect();
        let accs: Vec<f64> = scores.iter().map(|s| s.1).collect();
        let f1 = mean_std(&f1s);
        let acc = mean_std(&accs);
        println!("gamma={gamma}: F1 {} ACC {}", pct(f1.0, f1.1), pct(acc.0, acc.1));
        table.add_row(vec![format!("{gamma}"), pct(f1.0, f1.1), pct(acc.0, acc.1)]);
    }
    println!("\nGamma sensitivity (uni-channel):");
    println!("{}", table.render());
    table.write_csv(&Path::new(&args.out_dir).join("gamma_sweep.csv")).expect("write csv");
}
