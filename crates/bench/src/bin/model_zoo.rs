//! **Model zoo**: cross-model, cross-design comparison of every
//! [`lhnn::CongestionModel`] architecture behind the serving stack.
//!
//! Each architecture is trained by the same data-parallel trainer on the
//! `synthblue` training split, then scored twice:
//!
//! * **in_dist** — the held-out `synthblue` test designs (the paper's
//!   Table 2 protocol),
//! * **cross_design** — the `synthred` family
//!   ([`lhnn_data::cross_family_suite`]), a structurally different
//!   synthesis regime never seen in training, probing generalization
//!   across design families.
//!
//! ```text
//! cargo run --release -p lhnn-bench --bin model_zoo [--scale F] [--epochs N]
//! ```
//!
//! Writes `OUT_DIR/BENCH_model_zoo.json` (one row per model × split with
//! `f1`, `accuracy`, `params` and `train_s` columns) plus a CSV of the
//! same table. Single-seed by design: the zoo compares architectures
//! under one shared training budget, not seed variance (table2 covers
//! the multi-seed protocol).

use std::path::Path;
use std::time::Instant;

use lhnn::{
    evaluate, train, AblationSpec, CongestionModel, HybridNet, HybridNetConfig, Lhnn, LhnnConfig,
    TrainConfig,
};
use lhnn_bench::HarnessArgs;
use lhnn_data::{
    build_cross_suite, pct1, write_bench_json, BenchRecord, PreparedDataset, TextTable,
};

/// The zoo: every architecture served through the trait, seeded alike.
fn zoo(seed: u64) -> Vec<(&'static str, Box<dyn CongestionModel>)> {
    vec![
        ("lhnn", Box::new(Lhnn::new(LhnnConfig::default(), seed))),
        ("hybridnet", Box::new(HybridNet::new(HybridNetConfig::default(), seed))),
    ]
}

fn main() {
    let args = HarnessArgs::from_env();
    let cfg = args.experiment_config();
    eprintln!("building synthblue suite (scale {})...", args.scale);
    let prep = PreparedDataset::build(&cfg.dataset).expect("dataset build failed");
    let train_set = prep.train_samples();
    let test_set = prep.test_samples();
    eprintln!("building synthred cross-design suite (scale {})...", args.scale);
    let cross = build_cross_suite(&cfg.dataset).expect("cross-design suite build failed");
    let cross_set: Vec<lhnn::Sample> = cross.iter().map(|d| d.sample.clone()).collect();
    let cross_rate =
        cross.iter().map(|d| d.stats.congestion_rate).sum::<f64>() / cross.len().max(1) as f64;
    println!(
        "splits: {} train / {} in-distribution test (synthblue), {} cross-design \
         (synthred, congestion rate {})",
        train_set.len(),
        test_set.len(),
        cross_set.len(),
        pct1(cross_rate),
    );

    let tc = TrainConfig { epochs: args.epochs, ..cfg.lhnn_train };
    let mut table = TextTable::new(&["Model", "Split", "F1", "ACC", "#params", "train (s)"]);
    let mut records = Vec::new();
    for (name, mut model) in zoo(tc.seed) {
        eprintln!(
            "training {name} ({} parameters) for {} epochs...",
            model.num_parameters(),
            tc.epochs
        );
        let t0 = Instant::now();
        train(model.as_mut(), &train_set, &AblationSpec::full(), &tc);
        let train_s = t0.elapsed().as_secs_f64();
        for (split, samples) in [("in_dist", &test_set), ("cross_design", &cross_set)] {
            let t1 = Instant::now();
            let eval = evaluate(model.as_ref(), samples, &AblationSpec::full());
            let eval_s = t1.elapsed().as_secs_f64();
            table.add_row(vec![
                name.to_string(),
                split.to_string(),
                format!("{:.3}", eval.f1),
                format!("{:.3}", eval.accuracy),
                model.num_parameters().to_string(),
                format!("{train_s:.1}"),
            ]);
            records.push(
                BenchRecord::labeled(
                    format!("{name}_{split}"),
                    "train",
                    train_s * 1e3,
                    "eval",
                    eval_s * 1e3,
                )
                .with_extra("f1", eval.f1)
                .with_extra("accuracy", eval.accuracy)
                .with_extra("params", model.num_parameters() as f64)
                .with_extra("train_s", train_s),
            );
        }
    }
    println!("Model zoo: in-distribution vs cross-design generalization");
    println!("{}", table.render());

    let out = Path::new(&args.out_dir);
    std::fs::create_dir_all(out).expect("create out dir");
    write_bench_json(&out.join("BENCH_model_zoo.json"), "model_zoo", tc.threads.max(1), &records)
        .expect("write bench json");
    table.write_csv(&out.join("model_zoo.csv")).expect("write csv");
    eprintln!("wrote {}/BENCH_model_zoo.json and {}/model_zoo.csv", args.out_dir, args.out_dir);
}
