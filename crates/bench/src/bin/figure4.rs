//! Regenerates **Figure 4** of the paper: visual comparison of predicted
//! congestion maps on three test designs of very different congestion
//! rates (two low, one high). The paper's observation: LHNN adapts its
//! prediction level per design, while conventional models predict an
//! "averaged" congestion level — false positives on sparse designs, false
//! negatives on dense ones.
//!
//! Writes one PGM per (design, source) to `results/figure4/` and prints
//! ASCII maps plus per-design false-positive/negative counts.
//!
//! ```text
//! cargo run --release -p lhnn-bench --bin figure4 [--scale F] [--epochs N]
//! ```

use std::path::Path;

use lh_graph::ChannelMode;
use lhnn::{predict_map, train, AblationSpec, Lhnn, LhnnConfig, TrainConfig};
use lhnn_baselines::{ImageModel, MlpBaseline, Pix2PixModel, UNetModel};
use lhnn_bench::HarnessArgs;
use lhnn_data::{ascii_map, pct1, write_pgm, DesignData, PreparedDataset, TextTable};

fn binary(map: &[f32]) -> Vec<f32> {
    map.iter().map(|&p| if p >= 0.5 { 1.0 } else { 0.0 }).collect()
}

fn fp_fn(pred: &[f32], label: &[f32]) -> (usize, usize) {
    let mut fp = 0;
    let mut fn_ = 0;
    for (&p, &y) in pred.iter().zip(label) {
        if p >= 0.5 && y < 0.5 {
            fp += 1;
        }
        if p < 0.5 && y >= 0.5 {
            fn_ += 1;
        }
    }
    (fp, fn_)
}

fn main() {
    let args = HarnessArgs::from_env();
    let cfg = args.experiment_config();
    eprintln!("figure4: scale {}, {} epochs", args.scale, cfg.lhnn_train.epochs);
    let prep = PreparedDataset::build(&cfg.dataset).expect("dataset build failed");

    // Train every model once (seed 0) on the uni-channel task.
    let train_set = prep.train_samples();
    let mut lhnn = Lhnn::new(LhnnConfig { channel_mode: ChannelMode::Uni, ..cfg.lhnn.clone() }, 0);
    let tcfg = TrainConfig { seed: 0, ..cfg.lhnn_train.clone() };
    eprintln!("training LHNN...");
    train(&mut lhnn, &train_set, &AblationSpec::full(), &tcfg);

    let train_imgs = prep.train_images(ChannelMode::Uni);
    let bcfg = cfg.baseline_train.clone();
    let mut mlp = MlpBaseline::new(4, 1, cfg.mlp_hidden, 0);
    let mut unet = UNetModel::new(4, 1, cfg.cnn_features, 0);
    let mut pix = Pix2PixModel::new(4, 1, cfg.cnn_features, 0);
    eprintln!("training MLP...");
    mlp.fit(&train_imgs, &bcfg);
    eprintln!("training U-Net...");
    unet.fit(&train_imgs, &bcfg);
    eprintln!("training Pix2Pix...");
    pix.fit(&train_imgs, &bcfg);

    // The paper shows superblue 5, 6, 9: two lowest-congestion test
    // designs plus the highest.
    let by_rate = prep.test_by_congestion();
    let picks: Vec<&DesignData> = vec![by_rate[0], by_rate[1], by_rate[by_rate.len() - 1]];

    let out_dir = Path::new(&args.out_dir).join("figure4");
    let mut summary = TextTable::new(&["Design", "Rate (%)", "Model", "Pred rate (%)", "FP", "FN"]);
    for d in picks {
        let (nx, ny) = (d.grid.nx() as usize, d.grid.ny() as usize);
        let (lhnn_prob, label) = predict_map(&lhnn, &d.sample, &AblationSpec::full());
        let img = d.image_sample(ChannelMode::Uni);
        let preds: Vec<(&str, Vec<f32>)> = vec![
            ("label", label.clone()),
            ("lhnn", lhnn_prob),
            ("mlp", mlp.predict(&img).into_vec()),
            ("unet", unet.predict(&img).into_vec()),
            ("pix2pix", pix.predict(&img).into_vec()),
        ];
        println!("=== {} (congestion rate {}%) ===", d.name, pct1(d.stats.congestion_rate));
        for (name, map) in &preds {
            let bin = binary(map);
            let (fp, fn_) = fp_fn(&bin, &label);
            let pred_rate = bin.iter().sum::<f32>() as f64 / bin.len() as f64;
            if *name != "label" {
                summary.add_row(vec![
                    d.name.clone(),
                    pct1(d.stats.congestion_rate),
                    (*name).to_string(),
                    pct1(pred_rate),
                    fp.to_string(),
                    fn_.to_string(),
                ]);
            }
            write_pgm(map, nx, ny, &out_dir.join(format!("{}_{name}.pgm", d.name)))
                .expect("write pgm");
        }
        // ASCII: label vs LHNN vs U-Net, side by side conceptually
        println!("label:");
        println!("{}", ascii_map(&preds[0].1, nx, ny));
        println!("lhnn prediction:");
        println!("{}", ascii_map(&binary(&preds[1].1), nx, ny));
        println!("unet prediction:");
        println!("{}", ascii_map(&binary(&preds[3].1), nx, ny));
    }
    println!("Figure 4 summary (per-design calibration):");
    println!("{}", summary.render());
    summary.write_csv(&Path::new(&args.out_dir).join("figure4_summary.csv")).expect("write csv");
    eprintln!("pgm maps + csv written under {}/", args.out_dir);
}
