//! Regenerates **Table 1** of the paper: dataset information and the
//! fixed 10:5 split minimising the train/test congestion-rate gap.
//!
//! ```text
//! cargo run --release -p lhnn-bench --bin table1 [--scale F]
//! ```

use std::path::Path;

use lhnn_bench::HarnessArgs;
use lhnn_data::{pct1, PreparedDataset, TextTable};

fn main() {
    let args = HarnessArgs::from_env();
    let cfg = args.experiment_config();
    eprintln!("building 15-design suite (scale {})...", args.scale);
    let prep = PreparedDataset::build(&cfg.dataset).expect("dataset build failed");

    // Per-design statistics.
    let mut per_design =
        TextTable::new(&["Design", "#cells", "#nets", "#G-cells", "Congestion rate (%)", "Split"]);
    for (i, d) in prep.designs.iter().enumerate() {
        let split = if prep.search.split.test.contains(&i) { "test" } else { "train" };
        per_design.add_row(vec![
            d.stats.name.clone(),
            d.stats.cells.to_string(),
            d.stats.nets.to_string(),
            d.stats.gcells.to_string(),
            pct1(d.stats.congestion_rate),
            split.to_string(),
        ]);
    }
    println!("Per-design statistics:");
    println!("{}", per_design.render());

    // The paper's aggregated Table 1 view.
    let avg = |idx: &[usize], f: &dyn Fn(&lhnn_data::DesignStats) -> f64| -> f64 {
        idx.iter().map(|&i| f(&prep.designs[i].stats)).sum::<f64>() / idx.len().max(1) as f64
    };
    let all: Vec<usize> = (0..prep.designs.len()).collect();
    let mut table1 =
        TextTable::new(&["Split", "Designs", "#cells", "#nets", "#G-cells", "Congestion rate (%)"]);
    for (name, idx) in [
        ("Training", prep.search.split.train.clone()),
        ("Testing", prep.search.split.test.clone()),
        ("Total", all),
    ] {
        let names: Vec<String> = idx
            .iter()
            .map(|&i| prep.designs[i].name.trim_start_matches("synthblue").to_string())
            .collect();
        table1.add_row(vec![
            name.to_string(),
            names.join(","),
            format!("{:.0}", avg(&idx, &|s| s.cells as f64)),
            format!("{:.0}", avg(&idx, &|s| s.nets as f64)),
            format!("{:.0}", avg(&idx, &|s| s.gcells as f64)),
            pct1(avg(&idx, &|s| s.congestion_rate)),
        ]);
    }
    println!("Table 1: Dataset Information (averages per split)");
    println!("{}", table1.render());
    println!(
        "split search: {} candidates, gap = {:.4} percentage points",
        prep.search.candidates,
        prep.search.gap * 100.0
    );

    let out = Path::new(&args.out_dir);
    per_design.write_csv(&out.join("table1_designs.csv")).expect("write csv");
    table1.write_csv(&out.join("table1.csv")).expect("write csv");
    eprintln!("csv written to {}/table1*.csv", args.out_dir);
}
