//! Extension experiment (DESIGN.md §7): full-graph training vs the
//! paper's DGL neighbour-sampling fanouts {6, 3, 2}.
//!
//! The paper mini-batches with sampled neighbourhoods to fit 300K-G-cell
//! graphs on a T4; at this reproduction's scale, full-graph training is
//! tractable, so the sampling becomes an ablation: how much accuracy does
//! the sampled estimator give up, and does it still train stably?
//!
//! ```text
//! cargo run --release -p lhnn-bench --bin fanout_ablation [--scale F] [--epochs N] [--seeds N]
//! ```

use std::path::Path;

use lh_graph::ChannelMode;
use lhnn::{AblationSpec, TrainConfig};
use lhnn_bench::HarnessArgs;
use lhnn_data::{pct, run_lhnn_seed, ExperimentConfig, PreparedDataset, TextTable};
use neurograd::mean_std;

fn main() {
    let args = HarnessArgs::from_env();
    let base = args.experiment_config();
    eprintln!(
        "fanout ablation: scale {}, {} epochs, {} seeds",
        args.scale,
        base.lhnn_train.epochs,
        base.seeds.len()
    );
    let prep = PreparedDataset::build(&base.dataset).expect("dataset build failed");

    let variants: Vec<(&str, Option<[usize; 3]>)> = vec![
        ("full-graph", None),
        ("fanouts {6,3,2} (paper)", Some([6, 3, 2])),
        ("fanouts {3,2,1}", Some([3, 2, 1])),
        ("fanouts {12,6,4}", Some([12, 6, 4])),
    ];
    let mut table = TextTable::new(&["Sampling", "F1", "ACC"]);
    for (name, fanouts) in variants {
        let cfg = ExperimentConfig {
            lhnn_train: TrainConfig { fanouts, ..base.lhnn_train.clone() },
            ..base.clone()
        };
        let scores: Vec<(f64, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = cfg
                .seeds
                .iter()
                .map(|&seed| {
                    let cfg = &cfg;
                    let prep = &prep;
                    scope.spawn(move || {
                        let s =
                            run_lhnn_seed(prep, cfg, ChannelMode::Uni, &AblationSpec::full(), seed);
                        (s.f1, s.accuracy)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("seed thread")).collect()
        });
        let f1 = mean_std(&scores.iter().map(|s| s.0).collect::<Vec<_>>());
        let acc = mean_std(&scores.iter().map(|s| s.1).collect::<Vec<_>>());
        println!("{name}: F1 {} ACC {}", pct(f1.0, f1.1), pct(acc.0, acc.1));
        table.add_row(vec![name.to_string(), pct(f1.0, f1.1), pct(acc.0, acc.1)]);
    }
    println!("\nNeighbour-sampling ablation (uni-channel):");
    println!("{}", table.render());
    table.write_csv(&Path::new(&args.out_dir).join("fanout_ablation.csv")).expect("write csv");
}
