//! Kernel-level scaling harness: 1-thread vs N-thread wall clock for the
//! hot compute kernels (dense matmul, sparse spmm/spmm_t) and for one full
//! data-parallel training epoch.
//!
//! The parallel backend is bitwise deterministic at any thread count (see
//! `neurograd::kernels`), so the two columns of every row compute the
//! *identical* result — the table isolates pure scheduling speedup.
//!
//! ```text
//! cargo run --release -p lhnn-bench --bin kernels [-- --threads N --out DIR]
//! ```
//!
//! Writes `kernels.csv` plus the machine-readable perf-trajectory artifact
//! `BENCH_kernels.json` under the output directory.

use std::path::Path;
use std::time::Instant;

use lh_graph::{FeatureSet, LhGraph, LhGraphConfig, Targets};
use lhnn::{AblationSpec, Lhnn, LhnnConfig, Sample, TrainConfig};
use lhnn_bench::HarnessArgs;
use lhnn_data::{write_bench_json, BenchRecord, TextTable};
use neurograd::{pool, CsrMatrix, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_place::GlobalPlacer;
use vlsi_route::{route, RouterConfig};

fn time_ms(mut f: impl FnMut()) -> f64 {
    // warm-up + best of 3
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

/// Times `f` at 1 compute thread and again at `threads`.
fn scale_ms(threads: usize, mut f: impl FnMut()) -> (f64, f64) {
    pool::configure_threads(1);
    let ms_1t = time_ms(&mut f);
    pool::configure_threads(threads);
    let ms_nt = time_ms(&mut f);
    (ms_1t, ms_nt)
}

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .expect("sized")
}

/// A lattice-like CSR operator: `rows × rows`, ~4 entries per row.
fn lattice_like(rows: usize) -> CsrMatrix {
    let mut triplets = Vec::with_capacity(rows * 4);
    for r in 0..rows {
        for d in [1usize, 7, 63, 64] {
            triplets.push((r, (r + d) % rows, 0.25));
        }
    }
    CsrMatrix::from_triplets(rows, rows, &triplets)
}

/// One synthetic training sample (same recipe as the trainer tests, sized
/// for measurable epoch work).
fn training_sample(seed: u64, grid: u32) -> Sample {
    let cfg = SynthConfig {
        name: format!("kbench{seed}"),
        seed,
        n_cells: (grid * grid) as usize,
        grid_nx: grid,
        grid_ny: grid,
        ..SynthConfig::default()
    };
    let synth = generate(&cfg).expect("generate");
    let g = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &g).expect("place");
    let routed =
        route(&synth.circuit, &placed.placement, &g, &synth.macro_rects, &RouterConfig::default())
            .expect("route");
    let graph = LhGraph::build(&synth.circuit, &placed.placement, &g, &LhGraphConfig::default())
        .expect("graph");
    let features = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &g)
        .expect("features")
        .normalized();
    Sample { name: cfg.name, graph, features, targets: Targets::from_labels(&routed.labels) }
}

fn main() {
    let args = HarnessArgs::from_env();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let threads = raw
        .windows(2)
        .find(|w| w[0] == "--threads")
        .and_then(|w| w[1].parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get).min(4)
        })
        .max(2);

    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "host parallelism: {host} (expect ~min(threads, host)x scaling; \
         on a 1-core host the columns measure pure dispatch overhead)"
    );

    let mut rng = StdRng::seed_from_u64(0);
    let mut records: Vec<BenchRecord> = Vec::new();

    // dense matmul: LHNN-shaped (tall × hidden-sized) products
    for rows in [4096usize, 16384] {
        let a = random_matrix(rows, 64, &mut rng);
        let b = random_matrix(64, 64, &mut rng);
        let (ms_1t, ms_nt) = scale_ms(threads, || {
            std::hint::black_box(a.matmul(&b));
        });
        records.push(BenchRecord::thread_scaling(
            format!("matmul_{rows}x64x64"),
            ms_1t,
            threads,
            ms_nt,
        ));
    }

    // sparse spmm / spmm_t: lattice-like aggregation over 32 channels
    for rows in [4096usize, 16384] {
        let s = lattice_like(rows);
        let x = random_matrix(rows, 32, &mut rng);
        let (ms_1t, ms_nt) = scale_ms(threads, || {
            std::hint::black_box(s.spmm(&x));
        });
        records.push(BenchRecord::thread_scaling(
            format!("spmm_{rows}x{rows}x32"),
            ms_1t,
            threads,
            ms_nt,
        ));
        let _ = s.transpose_cached(); // warm: measure the product, not the build
        let (ms_1t, ms_nt) = scale_ms(threads, || {
            std::hint::black_box(s.spmm_t(&x));
        });
        records.push(BenchRecord::thread_scaling(
            format!("spmm_t_{rows}x{rows}x32"),
            ms_1t,
            threads,
            ms_nt,
        ));
    }

    // one full data-parallel training epoch over the synthetic suite
    let n_samples = threads.max(4);
    eprintln!("building {n_samples} training designs for the epoch benchmark...");
    let samples: Vec<Sample> = (0..n_samples as u64).map(|s| training_sample(s, 16)).collect();
    let epoch = |train_threads: usize| {
        let cfg = TrainConfig {
            epochs: 1,
            threads: train_threads,
            batch_size: n_samples,
            ..Default::default()
        };
        let mut model = Lhnn::new(LhnnConfig::default(), 0);
        lhnn::train(&mut model, &samples, &AblationSpec::full(), &cfg)
    };
    pool::configure_threads(1);
    let hist_1t = epoch(1);
    let ms_1t = time_ms(|| {
        std::hint::black_box(epoch(1));
    });
    pool::configure_threads(threads);
    let hist_nt = epoch(threads);
    let ms_nt = time_ms(|| {
        std::hint::black_box(epoch(threads));
    });
    assert_eq!(
        hist_1t.epoch_loss, hist_nt.epoch_loss,
        "parallel epoch must reproduce the serial loss exactly"
    );
    records.push(BenchRecord::thread_scaling(
        format!("train_epoch_{n_samples}designs_16x16"),
        ms_1t,
        threads,
        ms_nt,
    ));

    let mut table = TextTable::new(&["kernel", "1T (ms)", &format!("{threads}T (ms)"), "speedup"]);
    for r in &records {
        println!(
            "{}: {:.2} ms -> {:.2} ms at {threads} threads ({:.2}x)",
            r.name,
            r.baseline_ms,
            r.candidate_ms,
            r.speedup()
        );
        table.add_row(vec![
            r.name.clone(),
            format!("{:.2}", r.baseline_ms),
            format!("{:.2}", r.candidate_ms),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    println!("\nKernel scaling (1 thread vs {threads}; identical bitwise results):");
    println!("{}", table.render());
    let out_dir = Path::new(&args.out_dir);
    table.write_csv(&out_dir.join("kernels.csv")).expect("write csv");
    write_bench_json(&out_dir.join("BENCH_kernels.json"), "kernels", threads, &records)
        .expect("write json");
    println!("wrote {}/kernels.csv and {}/BENCH_kernels.json", args.out_dir, args.out_dir);
}
