//! Kernel-level scaling harness: 1-thread vs N-thread wall clock for the
//! hot compute kernels (dense matmul, sparse spmm/spmm_t) and for one full
//! data-parallel training epoch.
//!
//! The parallel backend is bitwise deterministic at any thread count (see
//! `neurograd::kernels`), so the two columns of every row compute the
//! *identical* result — the table isolates pure scheduling speedup.
//!
//! ```text
//! cargo run --release -p lhnn-bench --bin kernels [-- --threads N --simd on|off --out DIR]
//! ```
//!
//! `--simd off` routes every kernel through the scalar lane-emulation
//! path for the main columns (bitwise identical results — the SIMD
//! contract); each dense/sparse row also carries `simd_on_ms_1t` /
//! `simd_off_ms_1t` / `simd_speedup` extras measuring both modes, and the
//! inference row compares the fused tape-free predict against the taped
//! forward it replaced (`fused_speedup`).
//!
//! Writes `kernels.csv` plus the machine-readable perf-trajectory artifact
//! `BENCH_kernels.json` under the output directory.

use std::path::Path;
use std::time::Instant;

use lh_graph::{FeatureSet, LhGraph, LhGraphConfig, Targets};
use lhnn::{AblationSpec, Lhnn, LhnnConfig, Sample, TrainConfig};
use lhnn_bench::HarnessArgs;
use lhnn_data::{write_bench_json, BenchRecord, TextTable};
use neurograd::{pool, simd, CsrMatrix, Matrix, Tape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_place::GlobalPlacer;
use vlsi_route::{route, RouterConfig};

fn time_ms(mut f: impl FnMut()) -> f64 {
    // warm-up + best of 3
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

/// Times `f` at 1 compute thread and again at `threads`.
fn scale_ms(threads: usize, mut f: impl FnMut()) -> (f64, f64) {
    pool::configure_threads(1);
    let ms_1t = time_ms(&mut f);
    pool::configure_threads(threads);
    let ms_nt = time_ms(&mut f);
    (ms_1t, ms_nt)
}

/// Times `f` with the SIMD lane path on and off (1 compute thread), then
/// restores the run's configured mode. Both runs compute identical bits;
/// the pair isolates the pure lane-kernel speedup.
fn simd_onoff_ms(restore_on: bool, mut f: impl FnMut()) -> (f64, f64) {
    pool::configure_threads(1);
    simd::set_enabled(true);
    let on = time_ms(&mut f);
    simd::set_enabled(false);
    let off = time_ms(&mut f);
    simd::set_enabled(restore_on);
    (on, off)
}

/// Tags a thread-scaling record with the SIMD on/off pair for the same
/// workload.
fn with_simd_extras(record: BenchRecord, on_ms: f64, off_ms: f64) -> BenchRecord {
    record
        .with_extra("simd_on_ms_1t", on_ms)
        .with_extra("simd_off_ms_1t", off_ms)
        .with_extra("simd_speedup", off_ms / on_ms.max(1e-9))
}

fn random_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .expect("sized")
}

/// A lattice-like CSR operator: `rows × rows`, ~4 entries per row.
fn lattice_like(rows: usize) -> CsrMatrix {
    let mut triplets = Vec::with_capacity(rows * 4);
    for r in 0..rows {
        for d in [1usize, 7, 63, 64] {
            triplets.push((r, (r + d) % rows, 0.25));
        }
    }
    CsrMatrix::from_triplets(rows, rows, &triplets)
}

/// One synthetic training sample (same recipe as the trainer tests, sized
/// for measurable epoch work).
fn training_sample(seed: u64, grid: u32) -> Sample {
    let cfg = SynthConfig {
        name: format!("kbench{seed}"),
        seed,
        n_cells: (grid * grid) as usize,
        grid_nx: grid,
        grid_ny: grid,
        ..SynthConfig::default()
    };
    let synth = generate(&cfg).expect("generate");
    let g = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &g).expect("place");
    let routed =
        route(&synth.circuit, &placed.placement, &g, &synth.macro_rects, &RouterConfig::default())
            .expect("route");
    let graph = LhGraph::build(&synth.circuit, &placed.placement, &g, &LhGraphConfig::default())
        .expect("graph");
    let features = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &g)
        .expect("features")
        .normalized();
    Sample { name: cfg.name, graph, features, targets: Targets::from_labels(&routed.labels) }
}

fn main() {
    let args = HarnessArgs::from_env();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let threads = raw
        .windows(2)
        .find(|w| w[0] == "--threads")
        .and_then(|w| w[1].parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get).min(4)
        })
        .max(2);

    let simd_on = raw.windows(2).find(|w| w[0] == "--simd").map_or(true, |w| w[1] != "off");
    simd::set_enabled(simd_on);

    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "host parallelism: {host} (expect ~min(threads, host)x scaling; \
         on a 1-core host the columns measure pure dispatch overhead)"
    );
    println!("{}", simd::isa_report());

    let mut rng = StdRng::seed_from_u64(0);
    let mut records: Vec<BenchRecord> = Vec::new();

    // dense matmul: LHNN-shaped (tall × hidden-sized) products
    for rows in [4096usize, 16384] {
        let a = random_matrix(rows, 64, &mut rng);
        let b = random_matrix(64, 64, &mut rng);
        let (ms_1t, ms_nt) = scale_ms(threads, || {
            std::hint::black_box(a.matmul(&b));
        });
        let (on_ms, off_ms) = simd_onoff_ms(simd_on, || {
            std::hint::black_box(a.matmul(&b));
        });
        records.push(with_simd_extras(
            BenchRecord::thread_scaling(format!("matmul_{rows}x64x64"), ms_1t, threads, ms_nt),
            on_ms,
            off_ms,
        ));
    }

    // sparse spmm / spmm_t: lattice-like aggregation over 32 channels
    for rows in [4096usize, 16384] {
        let s = lattice_like(rows);
        let x = random_matrix(rows, 32, &mut rng);
        let (ms_1t, ms_nt) = scale_ms(threads, || {
            std::hint::black_box(s.spmm(&x));
        });
        let (on_ms, off_ms) = simd_onoff_ms(simd_on, || {
            std::hint::black_box(s.spmm(&x));
        });
        records.push(with_simd_extras(
            BenchRecord::thread_scaling(format!("spmm_{rows}x{rows}x32"), ms_1t, threads, ms_nt),
            on_ms,
            off_ms,
        ));
        let _ = s.transpose_cached(); // warm: measure the product, not the build
        let (ms_1t, ms_nt) = scale_ms(threads, || {
            std::hint::black_box(s.spmm_t(&x));
        });
        records.push(BenchRecord::thread_scaling(
            format!("spmm_t_{rows}x{rows}x32"),
            ms_1t,
            threads,
            ms_nt,
        ));
    }

    // one full data-parallel training epoch over the synthetic suite
    let n_samples = threads.max(4);
    eprintln!("building {n_samples} training designs for the epoch benchmark...");
    let samples: Vec<Sample> = (0..n_samples as u64).map(|s| training_sample(s, 16)).collect();
    let epoch = |train_threads: usize| {
        let cfg = TrainConfig {
            epochs: 1,
            threads: train_threads,
            batch_size: n_samples,
            ..Default::default()
        };
        let mut model = Lhnn::new(LhnnConfig::default(), 0);
        lhnn::train(&mut model, &samples, &AblationSpec::full(), &cfg)
    };
    pool::configure_threads(1);
    let hist_1t = epoch(1);
    let ms_1t = time_ms(|| {
        std::hint::black_box(epoch(1));
    });
    pool::configure_threads(threads);
    let hist_nt = epoch(threads);
    let ms_nt = time_ms(|| {
        std::hint::black_box(epoch(threads));
    });
    assert_eq!(
        hist_1t.epoch_loss, hist_nt.epoch_loss,
        "parallel epoch must reproduce the serial loss exactly"
    );
    records.push(BenchRecord::thread_scaling(
        format!("train_epoch_{n_samples}designs_16x16"),
        ms_1t,
        threads,
        ms_nt,
    ));

    // fused tape-free inference vs the taped forward it replaced (both
    // bitwise identical; the fused path skips tape allocation, node
    // bookkeeping and the value round-trips)
    let (ops, feats) = lhnn_data::serving_inputs(7, 6000, 48).expect("serving design");
    let model = Lhnn::new(LhnnConfig::default(), 0);
    let mut scratch = lhnn::InferenceScratch::new();
    pool::configure_threads(threads);
    let taped_ms = time_ms(|| {
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &ops, &feats);
        let prob = tape.sigmoid(out.cls_logits);
        std::hint::black_box((tape.value(prob).clone(), tape.value(out.reg).clone()));
    });
    let fused_ms = time_ms(|| {
        std::hint::black_box(model.predict_into(&ops, &feats, &mut scratch));
    });
    records.push(
        BenchRecord::labeled(
            format!("predict_{}gcells", ops.num_gcells),
            "taped forward",
            taped_ms,
            "fused tape-free",
            fused_ms,
        )
        .with_extra("fused_speedup", taped_ms / fused_ms.max(1e-9)),
    );

    let mut table = TextTable::new(&["kernel", "baseline (ms)", "candidate (ms)", "speedup"]);
    for r in &records {
        println!(
            "{}: {} {:.2} ms -> {} {:.2} ms ({:.2}x)",
            r.name,
            r.baseline_label,
            r.baseline_ms,
            r.candidate_label,
            r.candidate_ms,
            r.speedup()
        );
        table.add_row(vec![
            r.name.clone(),
            format!("{:.2}", r.baseline_ms),
            format!("{:.2}", r.candidate_ms),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    println!("\nKernel scaling (1 thread vs {threads}; identical bitwise results):");
    println!("{}", table.render());
    let out_dir = Path::new(&args.out_dir);
    table.write_csv(&out_dir.join("kernels.csv")).expect("write csv");
    write_bench_json(&out_dir.join("BENCH_kernels.json"), "kernels", threads, &records)
        .expect("write json");
    println!("wrote {}/kernels.csv and {}/BENCH_kernels.json", args.out_dir, args.out_dir);
}
