//! Regenerates **Table 3** of the paper: the uni-channel ablation study —
//! remove FeatureGen/HyperMP/LatticeMP edges, the jointing branch, or the
//! G-cell input features, and report F1 with the relative change
//! `ΔF1/F1_full`.
//!
//! ```text
//! cargo run --release -p lhnn-bench --bin table3 [--scale F] [--epochs N] [--seeds N]
//! ```

use std::path::Path;
use std::time::Instant;

use lhnn_bench::HarnessArgs;
use lhnn_data::{ablation_study, pct, PreparedDataset, TextTable};

fn main() {
    let args = HarnessArgs::from_env();
    let cfg = args.experiment_config();
    eprintln!(
        "table3: scale {}, {} epochs, {} seeds, 6 ablation variants",
        args.scale,
        cfg.lhnn_train.epochs,
        cfg.seeds.len()
    );
    let t0 = Instant::now();
    let prep = PreparedDataset::build(&cfg.dataset).expect("dataset build failed");
    eprintln!("dataset ready in {:.0}s", t0.elapsed().as_secs_f64());

    let t1 = Instant::now();
    let rows = ablation_study(&prep, &cfg);
    eprintln!("ablation study done in {:.0}s", t1.elapsed().as_secs_f64());

    let mut table = TextTable::new(&["Model", "F1", "dF1/F1_full (%)"]);
    for r in &rows {
        table.add_row(vec![r.label.clone(), pct(r.f1.0, r.f1.1), format!("{:+.2}", r.delta_pct)]);
    }
    println!("Table 3: Ablation study on uni-channel experiments");
    println!("{}", table.render());

    let out = Path::new(&args.out_dir);
    table.write_csv(&out.join("table3.csv")).expect("write csv");
    eprintln!("csv written to {}/table3.csv", args.out_dir);
}
