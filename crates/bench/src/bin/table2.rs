//! Regenerates **Table 2** of the paper: model comparison on the synthetic
//! ISPD-2011/DAC-2012 stand-in suite — F1 and accuracy, mean ± std over
//! seeds, for the uni- and duo-channel tasks.
//!
//! ```text
//! cargo run --release -p lhnn-bench --bin table2 [--scale F] [--epochs N] [--seeds N]
//! ```

use std::path::Path;
use std::time::Instant;

use lh_graph::ChannelMode;
use lhnn_bench::HarnessArgs;
use lhnn_data::{model_comparison, pct, PreparedDataset, TextTable};

fn main() {
    let args = HarnessArgs::from_env();
    let cfg = args.experiment_config();
    eprintln!(
        "table2: scale {}, {} epochs, {} seeds",
        args.scale,
        cfg.lhnn_train.epochs,
        cfg.seeds.len()
    );
    let t0 = Instant::now();
    let prep = PreparedDataset::build(&cfg.dataset).expect("dataset build failed");
    eprintln!("dataset ready in {:.0}s", t0.elapsed().as_secs_f64());

    let mut table = TextTable::new(&["Model", "Uni F1", "Uni ACC", "Duo F1", "Duo ACC"]);
    let t1 = Instant::now();
    let uni = model_comparison(&prep, &cfg, ChannelMode::Uni);
    eprintln!("uni-channel done in {:.0}s", t1.elapsed().as_secs_f64());
    let t2 = Instant::now();
    let duo = model_comparison(&prep, &cfg, ChannelMode::Duo);
    eprintln!("duo-channel done in {:.0}s", t2.elapsed().as_secs_f64());

    for (u, d) in uni.iter().zip(&duo) {
        table.add_row(vec![
            u.model.clone(),
            pct(u.f1.0, u.f1.1),
            pct(u.accuracy.0, u.accuracy.1),
            pct(d.f1.0, d.f1.1),
            pct(d.accuracy.0, d.accuracy.1),
        ]);
    }
    println!("Table 2: Model comparison (mean±std over {} seeds)", cfg.seeds.len());
    println!("{}", table.render());

    // Relative F1 improvements, as quoted in the paper's abstract.
    let lhnn_f1 = uni.last().expect("lhnn row").f1.0;
    for row in &uni[..uni.len() - 1] {
        let rel = (lhnn_f1 - row.f1.0) / row.f1.0.max(1e-12) * 100.0;
        println!("uni-channel F1 improvement of LHNN over {}: {rel:+.2}%", row.model);
    }

    let out = Path::new(&args.out_dir);
    table.write_csv(&out.join("table2.csv")).expect("write csv");
    eprintln!("csv written to {}/table2.csv", args.out_dir);
}
