//! Serving harness: throughput, latency percentiles and cache behaviour
//! of the `lhnn-serve` engine under a synthetic placement-loop workload.
//!
//! Sweeps worker counts over a fixed request stream (each design queried
//! repeatedly, as a placer polling congestion would) and reports wall
//! time, req/s, p50/p95/p99 latency and cache hit rate per configuration.
//!
//! ```text
//! cargo run --release -p lhnn-bench --bin serving -- [--scale F] [--out DIR]
//! ```
//!
//! `--scale` shrinks the workload (designs, requests and design size) for
//! smoke runs, like every other harness binary.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use lh_graph::FeatureSet;
use lhnn::{GraphOps, Lhnn, LhnnConfig};
use lhnn_bench::HarnessArgs;
use lhnn_data::TextTable;
use lhnn_serve::{EngineConfig, ModelRegistry, PredictRequest, ServeEngine};

fn design(seed: u64, n_cells: usize, grid: u32) -> (Arc<GraphOps>, Arc<FeatureSet>) {
    let (ops, features) = lhnn_data::serving_inputs(seed, n_cells, grid).expect("build design");
    (Arc::new(ops), Arc::new(features))
}

fn main() {
    let args = HarnessArgs::from_env();
    let scale = args.scale.max(0.05);
    let designs_n = ((4.0 * scale).round() as usize).max(2);
    let requests = ((96.0 * scale).round() as usize).max(8);
    let cells = ((600.0 * scale) as usize).max(80);
    let grid = (((20.0 * scale.sqrt()) as u32).max(8)).min(32);
    let max_workers =
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get).min(8);

    eprintln!(
        "workload: {requests} requests over {designs_n} designs ({cells} cells, {grid}x{grid} g-cells)"
    );
    let designs: Vec<_> = (0..designs_n as u64).map(|s| design(s, cells, grid)).collect();
    // Repeat stream: each design queried over and over — the placer-loop
    // access pattern the cache rows measure.
    let repeat_stream: Vec<PredictRequest> = (0..requests)
        .map(|i| {
            let (ops, feats) = &designs[i % designs_n];
            PredictRequest::new("m", Arc::clone(ops), Arc::clone(feats))
        })
        .collect();
    // Unique stream: every request gets a distinct fingerprint (a tiny
    // same-shape feature rescale), so neither the cache nor single-flight
    // dedup collapses it — the cache-0 rows measure raw forward
    // throughput across the pool.
    let unique_stream: Vec<PredictRequest> = (0..requests)
        .map(|i| {
            let (ops, feats) = &designs[i % designs_n];
            let eps = 1.0 + i as f32 * 1e-6;
            let variant = Arc::new(FeatureSet {
                gnet: feats.gnet.map(|v| v * eps),
                gcell: feats.gcell.map(|v| v * eps),
            });
            PredictRequest::new("m", Arc::clone(ops), variant)
        })
        .collect();

    let mut table = TextTable::new(&[
        "workers", "cache", "wall (s)", "req/s", "p50 (ms)", "p95 (ms)", "p99 (ms)", "hit rate",
    ]);
    let mut workers_col: Vec<usize> = vec![1];
    let mut w = 2;
    while w <= max_workers {
        workers_col.push(w);
        w *= 2;
    }
    for &workers in &workers_col {
        for cache in [0usize, 128] {
            let registry = Arc::new(ModelRegistry::new());
            registry.register("m", Lhnn::new(LhnnConfig::default(), 0)).expect("register");
            let engine = ServeEngine::new(
                registry,
                EngineConfig { workers, cache_capacity: cache, ..EngineConfig::default() },
            );
            let handle = engine.handle();
            let stream = if cache == 0 { &unique_stream } else { &repeat_stream };
            let start = Instant::now();
            for reply in handle.predict_batch(stream) {
                reply.expect("serve");
            }
            let wall = start.elapsed().as_secs_f64();
            let stats = handle.stats();
            engine.shutdown();
            println!(
                "workers {workers}, cache {cache:>3}: {wall:.2}s, {:.1} req/s, hit rate {:.0}%",
                requests as f64 / wall.max(1e-9),
                stats.cache_hit_rate * 100.0
            );
            table.add_row(vec![
                workers.to_string(),
                cache.to_string(),
                format!("{wall:.2}"),
                format!("{:.1}", requests as f64 / wall.max(1e-9)),
                format!("{:.2}", stats.p50_us as f64 / 1000.0),
                format!("{:.2}", stats.p95_us as f64 / 1000.0),
                format!("{:.2}", stats.p99_us as f64 / 1000.0),
                format!("{:.1}%", stats.cache_hit_rate * 100.0),
            ]);
        }
    }
    println!(
        "\nServing scaling (requests repeat per design — cache rows show the placer-loop case):"
    );
    println!("{}", table.render());
    table.write_csv(&Path::new(&args.out_dir).join("serving.csv")).expect("write csv");
}
