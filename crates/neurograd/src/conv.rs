//! Image-style operators: conv2d (im2col), max-pooling, nearest upsampling
//! and instance normalisation.
//!
//! Feature maps are stored as `(channels, height·width)` matrices — one
//! sample at a time, which matches the paper's per-circuit training. All
//! forward functions here are pure; the [`Tape`](crate::tape::Tape) methods
//! wrap them and record what the backward pass needs.

use crate::matrix::Matrix;

/// Static configuration of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dCfg {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2dCfg {
    /// A stride-1 "same" convolution for odd kernels (`padding = k/2`).
    pub fn same(
        in_channels: usize,
        out_channels: usize,
        height: usize,
        width: usize,
        kernel: usize,
    ) -> Self {
        Self { in_channels, out_channels, height, width, kernel, stride: 1, padding: kernel / 2 }
    }

    /// Output height.
    pub fn out_height(&self) -> usize {
        (self.height + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_width(&self) -> usize {
        (self.width + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Expected weight shape `(out_channels, in_channels·k·k)`.
    pub fn weight_shape(&self) -> (usize, usize) {
        (self.out_channels, self.in_channels * self.kernel * self.kernel)
    }
}

/// Lowers the padded input into the im2col matrix of shape
/// `(C_in·k·k, H_out·W_out)`.
fn im2col(input: &Matrix, cfg: Conv2dCfg) -> Matrix {
    let (oh, ow) = (cfg.out_height(), cfg.out_width());
    let k = cfg.kernel;
    let mut cols = Matrix::zeros(cfg.in_channels * k * k, oh * ow);
    for c in 0..cfg.in_channels {
        let in_row = input.row(c);
        for ky in 0..k {
            for kx in 0..k {
                let col_row = cols.row_mut(c * k * k + ky * k + kx);
                for oy in 0..oh {
                    let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                    if iy < 0 || iy >= cfg.height as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                        if ix < 0 || ix >= cfg.width as isize {
                            continue;
                        }
                        col_row[oy * ow + ox] = in_row[iy as usize * cfg.width + ix as usize];
                    }
                }
            }
        }
    }
    cols
}

/// Scatters an im2col-shaped gradient back onto the input layout.
fn col2im(cols_grad: &Matrix, cfg: Conv2dCfg) -> Matrix {
    let (oh, ow) = (cfg.out_height(), cfg.out_width());
    let k = cfg.kernel;
    let mut input_grad = Matrix::zeros(cfg.in_channels, cfg.height * cfg.width);
    for c in 0..cfg.in_channels {
        let in_row = input_grad.row_mut(c);
        for ky in 0..k {
            for kx in 0..k {
                let col_row = cols_grad.row(c * k * k + ky * k + kx);
                for oy in 0..oh {
                    let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                    if iy < 0 || iy >= cfg.height as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                        if ix < 0 || ix >= cfg.width as isize {
                            continue;
                        }
                        in_row[iy as usize * cfg.width + ix as usize] += col_row[oy * ow + ox];
                    }
                }
            }
        }
    }
    input_grad
}

/// Forward convolution. Returns `(output, cached im2col matrix)`.
///
/// # Panics
///
/// Panics if input/weight/bias shapes disagree with `cfg`.
pub(crate) fn conv2d_forward(
    input: &Matrix,
    weight: &Matrix,
    bias: &Matrix,
    cfg: Conv2dCfg,
) -> (Matrix, Matrix) {
    assert_eq!(
        input.shape(),
        (cfg.in_channels, cfg.height * cfg.width),
        "conv2d input shape mismatch"
    );
    assert_eq!(weight.shape(), cfg.weight_shape(), "conv2d weight shape mismatch");
    assert_eq!(bias.shape(), (cfg.out_channels, 1), "conv2d bias shape mismatch");
    let cols = im2col(input, cfg);
    let mut out = weight.matmul(&cols);
    for co in 0..cfg.out_channels {
        let b = bias[(co, 0)];
        for v in out.row_mut(co) {
            *v += b;
        }
    }
    (out, cols)
}

/// Backward convolution. Returns `(d_input, d_weight, d_bias)`, each only
/// when the corresponding flag requests it.
pub(crate) fn conv2d_backward(
    grad_out: &Matrix,
    weight: &Matrix,
    cols: &Matrix,
    cfg: Conv2dCfg,
    need_input: bool,
    need_weight: bool,
    need_bias: bool,
) -> (Option<Matrix>, Option<Matrix>, Option<Matrix>) {
    let gi = need_input.then(|| {
        // d_cols = Wᵀ · dY, then scatter back.
        let cols_grad = weight.matmul_tn(grad_out);
        col2im(&cols_grad, cfg)
    });
    let gw = need_weight.then(|| grad_out.matmul_nt(cols));
    let gb = need_bias.then(|| {
        let mut gb = Matrix::zeros(cfg.out_channels, 1);
        for co in 0..cfg.out_channels {
            gb[(co, 0)] = grad_out.row(co).iter().sum();
        }
        gb
    });
    (gi, gw, gb)
}

/// 2×2/stride-2 max pooling. Returns `(output, argmax flat indices)`.
///
/// # Panics
///
/// Panics if `h`/`w` are odd or the input shape is inconsistent.
pub(crate) fn max_pool2d_forward(input: &Matrix, h: usize, w: usize) -> (Matrix, Vec<usize>) {
    assert_eq!(input.cols(), h * w, "max_pool2d input shape mismatch");
    assert!(h.is_multiple_of(2) && w.is_multiple_of(2), "max_pool2d requires even h and w");
    let channels = input.rows();
    let (oh, ow) = (h / 2, w / 2);
    let mut out = Matrix::zeros(channels, oh * ow);
    let mut argmax = vec![0usize; channels * oh * ow];
    for c in 0..channels {
        let row = input.row(c);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let idx = (oy * 2 + dy) * w + ox * 2 + dx;
                        if row[idx] > best {
                            best = row[idx];
                            best_idx = idx;
                        }
                    }
                }
                out[(c, oy * ow + ox)] = best;
                argmax[c * oh * ow + oy * ow + ox] = best_idx;
            }
        }
    }
    (out, argmax)
}

/// Backward of 2×2 max pooling: routes each output gradient to its argmax.
pub(crate) fn max_pool2d_backward(
    grad_out: &Matrix,
    argmax: &[usize],
    in_rows: usize,
    in_cols: usize,
) -> Matrix {
    let mut gx = Matrix::zeros(in_rows, in_cols);
    let out_cols = grad_out.cols();
    for c in 0..in_rows {
        let g_row = grad_out.row(c);
        let x_row = gx.row_mut(c);
        for o in 0..out_cols {
            x_row[argmax[c * out_cols + o]] += g_row[o];
        }
    }
    gx
}

/// Nearest-neighbour 2× upsampling of a `(C, h·w)` map to `(C, 2h·2w)`.
///
/// # Panics
///
/// Panics if the input shape is inconsistent.
pub(crate) fn upsample_nearest2_forward(input: &Matrix, h: usize, w: usize) -> Matrix {
    assert_eq!(input.cols(), h * w, "upsample input shape mismatch");
    let channels = input.rows();
    let (oh, ow) = (h * 2, w * 2);
    let mut out = Matrix::zeros(channels, oh * ow);
    for c in 0..channels {
        let src = input.row(c);
        let dst = out.row_mut(c);
        for y in 0..oh {
            for x in 0..ow {
                dst[y * ow + x] = src[(y / 2) * w + x / 2];
            }
        }
    }
    out
}

/// Backward of nearest 2× upsampling: sums the 2×2 output block per input.
pub(crate) fn upsample_nearest2_backward(grad_out: &Matrix, h: usize, w: usize) -> Matrix {
    let channels = grad_out.rows();
    let (oh, ow) = (h * 2, w * 2);
    assert_eq!(grad_out.cols(), oh * ow, "upsample grad shape mismatch");
    let mut gx = Matrix::zeros(channels, h * w);
    for c in 0..channels {
        let g = grad_out.row(c);
        let x = gx.row_mut(c);
        for y in 0..oh {
            for xcol in 0..ow {
                x[(y / 2) * w + xcol / 2] += g[y * ow + xcol];
            }
        }
    }
    gx
}

const INSTANCE_NORM_EPS: f32 = 1e-5;

/// Instance norm forward. Returns `(output, x̂, 1/σ per channel)`.
///
/// # Panics
///
/// Panics if `gamma`/`beta` are not `(C, 1)`.
pub(crate) fn instance_norm_forward(
    input: &Matrix,
    gamma: &Matrix,
    beta: &Matrix,
) -> (Matrix, Matrix, Vec<f32>) {
    let (c, n) = input.shape();
    assert_eq!(gamma.shape(), (c, 1), "instance_norm gamma shape mismatch");
    assert_eq!(beta.shape(), (c, 1), "instance_norm beta shape mismatch");
    assert!(n > 0, "instance_norm over empty spatial dims");
    let mut xhat = Matrix::zeros(c, n);
    let mut out = Matrix::zeros(c, n);
    let mut inv_std = vec![0.0f32; c];
    for ch in 0..c {
        let row = input.row(ch);
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let is = 1.0 / (var + INSTANCE_NORM_EPS).sqrt();
        inv_std[ch] = is;
        let (g, b) = (gamma[(ch, 0)], beta[(ch, 0)]);
        for i in 0..n {
            let xh = (row[i] - mean) * is;
            xhat[(ch, i)] = xh;
            out[(ch, i)] = g * xh + b;
        }
    }
    (out, xhat, inv_std)
}

/// Instance norm backward. Returns `(d_input?, d_gamma, d_beta)`.
pub(crate) fn instance_norm_backward(
    grad_out: &Matrix,
    xhat: &Matrix,
    inv_std: &[f32],
    gamma: &Matrix,
    need_input: bool,
) -> (Option<Matrix>, Matrix, Matrix) {
    let (c, n) = grad_out.shape();
    let mut d_gamma = Matrix::zeros(c, 1);
    let mut d_beta = Matrix::zeros(c, 1);
    for ch in 0..c {
        let g = grad_out.row(ch);
        let xh = xhat.row(ch);
        d_gamma[(ch, 0)] = g.iter().zip(xh).map(|(&a, &b)| a * b).sum();
        d_beta[(ch, 0)] = g.iter().sum();
    }
    let d_input = need_input.then(|| {
        let mut gx = Matrix::zeros(c, n);
        let nf = n as f32;
        for ch in 0..c {
            let g = grad_out.row(ch);
            let xh = xhat.row(ch);
            let gam = gamma[(ch, 0)];
            let mean_dy: f32 = g.iter().sum::<f32>() / nf;
            let mean_dy_xhat: f32 = g.iter().zip(xh).map(|(&a, &b)| a * b).sum::<f32>() / nf;
            let row = gx.row_mut(ch);
            for i in 0..n {
                row[i] = gam * inv_std[ch] * (g[i] - mean_dy - xh[i] * mean_dy_xhat);
            }
        }
        gx
    });
    (d_input, d_gamma, d_beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::{Tape, Var};

    fn check_grad(build: impl Fn(&mut Tape, Var) -> Var, x0: &Matrix, tol: f32) {
        let mut tape = Tape::new();
        let x = tape.leaf_grad(x0.clone());
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let analytic = tape.grad(x).expect("grad present").clone();

        let eps = 1e-2;
        let mut numeric = Matrix::zeros(x0.rows(), x0.cols());
        for i in 0..x0.len() {
            let eval = |delta: f32| {
                let mut m = x0.clone();
                m.as_mut_slice()[i] += delta;
                let mut t = Tape::new();
                let v = t.leaf_grad(m);
                let l = build(&mut t, v);
                t.value(l).item()
            };
            numeric.as_mut_slice()[i] = (eval(eps) - eval(-eps)) / (2.0 * eps);
        }
        assert!(
            analytic.approx_eq(&numeric, tol),
            "gradient mismatch:\nanalytic={analytic:?}\nnumeric={numeric:?}"
        );
    }

    #[test]
    fn conv_output_shape() {
        let cfg = Conv2dCfg::same(2, 3, 4, 4, 3);
        assert_eq!(cfg.out_height(), 4);
        assert_eq!(cfg.out_width(), 4);
        let cfg = Conv2dCfg {
            in_channels: 1,
            out_channels: 1,
            height: 5,
            width: 5,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(cfg.out_height(), 3);
    }

    #[test]
    fn conv_identity_kernel_preserves_input() {
        // 1x1 kernel with weight 1 and bias 0 is the identity.
        let cfg = Conv2dCfg {
            in_channels: 1,
            out_channels: 1,
            height: 3,
            width: 3,
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]]);
        let w = Matrix::scalar(1.0);
        let b = Matrix::zeros(1, 1);
        let (y, _) = conv2d_forward(&x, &w, &b, cfg);
        assert!(y.approx_eq(&x, 0.0));
    }

    #[test]
    fn conv_averaging_kernel_known_value() {
        // 3x3 all-ones kernel on constant input of 1 with zero padding:
        // centre pixel sees 9 ones.
        let cfg = Conv2dCfg::same(1, 1, 3, 3, 3);
        let x = Matrix::full(1, 9, 1.0);
        let w = Matrix::full(1, 9, 1.0);
        let b = Matrix::zeros(1, 1);
        let (y, _) = conv2d_forward(&x, &w, &b, cfg);
        // corners see 4, edges 6, centre 9
        assert_eq!(y.as_slice(), &[4.0, 6.0, 4.0, 6.0, 9.0, 6.0, 4.0, 6.0, 4.0]);
    }

    #[test]
    fn conv_bias_is_added_per_channel() {
        let cfg = Conv2dCfg {
            in_channels: 1,
            out_channels: 2,
            height: 2,
            width: 2,
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        let x = Matrix::zeros(1, 4);
        let w = Matrix::zeros(2, 1);
        let b = Matrix::col_vector(&[1.5, -2.5]);
        let (y, _) = conv2d_forward(&x, &w, &b, cfg);
        assert_eq!(y.row(0), &[1.5; 4]);
        assert_eq!(y.row(1), &[-2.5; 4]);
    }

    #[test]
    fn grad_conv2d_input() {
        let cfg = Conv2dCfg::same(1, 2, 3, 3, 3);
        let w = Matrix::from_vec(2, 9, (0..18).map(|i| (i as f32 - 9.0) * 0.1).collect()).unwrap();
        let b = Matrix::col_vector(&[0.1, -0.1]);
        let x0 = Matrix::from_vec(1, 9, (0..9).map(|i| i as f32 * 0.3 - 1.0).collect()).unwrap();
        check_grad(
            move |t, x| {
                let wv = t.leaf(w.clone());
                let bv = t.leaf(b.clone());
                let y = t.conv2d(x, wv, bv, cfg);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            &x0,
            5e-2,
        );
    }

    #[test]
    fn grad_conv2d_weight_and_bias() {
        let cfg = Conv2dCfg::same(1, 1, 3, 3, 3);
        let x = Matrix::from_vec(1, 9, (0..9).map(|i| i as f32 * 0.2 - 0.8).collect()).unwrap();
        // check d/dW via treating weight as the differentiated leaf
        let w0 = Matrix::from_vec(1, 9, (0..9).map(|i| 0.05 * i as f32).collect()).unwrap();
        check_grad(
            move |t, wv| {
                let xv = t.leaf(x.clone());
                let bv = t.leaf(Matrix::zeros(1, 1));
                let y = t.conv2d(xv, wv, bv, cfg);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            &w0,
            5e-2,
        );
    }

    #[test]
    fn grad_max_pool_routes_to_argmax() {
        let mut tape = Tape::new();
        let x = tape.leaf_grad(Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]])); // 2x2 image
        let y = tape.max_pool2d(x, 2, 2);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        assert_eq!(tape.value(y).as_slice(), &[4.0]);
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn grad_upsample_sums_block() {
        let mut tape = Tape::new();
        let x = tape.leaf_grad(Matrix::from_rows(&[&[5.0]])); // 1x1 image
        let y = tape.upsample_nearest2(x, 1, 1);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        assert_eq!(tape.value(y).as_slice(), &[5.0; 4]);
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[4.0]);
    }

    #[test]
    fn upsample_then_pool_is_identity_for_constant_blocks() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]])); // 2x2
        let up = tape.upsample_nearest2(x, 2, 2); // 4x4
        let down = tape.max_pool2d(up, 4, 4); // back to 2x2
        assert!(tape.value(down).approx_eq(tape.value(x), 0.0));
    }

    #[test]
    fn instance_norm_normalises_each_channel() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[10.0, 10.0, 10.0, 10.0]]);
        let gamma = Matrix::col_vector(&[1.0, 1.0]);
        let beta = Matrix::col_vector(&[0.0, 0.0]);
        let (y, _, _) = instance_norm_forward(&x, &gamma, &beta);
        let mean0: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        assert!(mean0.abs() < 1e-5);
        // constant channel maps to 0
        assert!(y.row(1).iter().all(|v| v.abs() < 1e-3));
    }

    #[test]
    fn grad_instance_norm_input() {
        let gamma = Matrix::col_vector(&[1.3]);
        let beta = Matrix::col_vector(&[-0.2]);
        let x0 = Matrix::from_rows(&[&[0.5, -1.0, 2.0, 0.1, 0.7, -0.3]]);
        check_grad(
            move |t, x| {
                let g = t.leaf(gamma.clone());
                let b = t.leaf(beta.clone());
                let y = t.instance_norm(x, g, b);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            &x0,
            5e-2,
        );
    }

    #[test]
    fn grad_instance_norm_gamma_beta() {
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0, 0.1]]);
        let g0 = Matrix::col_vector(&[0.9]);
        check_grad(
            move |t, gv| {
                let xv = t.leaf(x.clone());
                let bv = t.leaf(Matrix::col_vector(&[0.3]));
                let y = t.instance_norm(xv, gv, bv);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            &g0,
            5e-2,
        );
    }
}
