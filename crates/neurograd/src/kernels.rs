//! The compute backend: every dense and sparse kernel in one place.
//!
//! [`Matrix`], [`CsrMatrix`] and the [`Tape`](crate::tape::Tape) dispatch
//! their hot loops through this module instead of open-coding them. Each
//! kernel partitions its **output rows** (or element range) into contiguous
//! chunks via [`pool::chunk_ranges`] and runs the chunks on the process
//! pool ([`pool::global`]).
//!
//! # Determinism contract
//!
//! Per output row (or element) the arithmetic is the *same sequence of
//! operations* as the serial reference in [`reference`], and chunks write
//! disjoint slices — so results are **bitwise identical at any thread
//! count**, including 1. The `parallel_kernels` property tests enforce
//! this. `spmm_t` is computed as `spmm` of the (cached) explicit CSR
//! transpose; because CSR entries are sorted and duplicate-free, the
//! per-output-row accumulation order matches the scatter formulation
//! exactly, so this too is bitwise-stable (and row-partitionable).
//!
//! The inner loops run on [`crate::simd`]'s lane engine. Accumulating
//! kernels (`matmul`, `matmul_tn`, `spmm` and their row-subset variants)
//! build each output row with element-wise `axpy` steps in `k`/entry
//! order — vectorizing across the *row*, never across the reduction — so
//! their float sequences are unchanged from the scalar seed kernels and
//! unchanged by SIMD on/off. `matmul_nt` reduces along `k` and therefore
//! uses the fixed lane schedule (eight independent accumulators, a fixed
//! pairwise tree, in-order remainder); its [`reference`] twin emulates
//! that exact schedule, so SIMD on/off is bitwise invisible there too.
//! The historical `av == 0.0` zero-skips were dropped from the dense
//! kernels: for finite data a skipped `+= 0.0 * bv` step is bitwise
//! unobservable (a `+0.0` accumulator never becomes `-0.0` under
//! round-to-nearest), and the data-dependent branch blocked
//! vectorization. Sparse kernels still skip structurally — absent CSR
//! entries are never touched.
//!
//! Output buffers are **overwritten**: every kernel zero-fills or
//! directly writes each row it owns, so callers can hand over recycled
//! buffers holding stale data without a pre-zeroing pass.
//!
//! Small operands run serially: chunking only engages when a chunk gets at
//! least [`MIN_CHUNK_FLOPS`] worth of work, so tiny matrices skip the
//! dispatch overhead entirely (with, by the contract above, no observable
//! difference in results).

use crate::matrix::Matrix;
use crate::pool;
use crate::simd;
use crate::sparse::CsrMatrix;

/// Minimum per-chunk work (≈ multiply-adds) before a kernel parallelises.
pub const MIN_CHUNK_FLOPS: usize = 16 * 1024;

/// Minimum per-chunk element count for elementwise kernels.
pub const MIN_CHUNK_ELEMS: usize = 4 * 1024;

/// Raw mutable base pointer that may cross thread boundaries.
///
/// Only ever used to carve **disjoint** row/element ranges per chunk; the
/// backing buffer outlives the pool call (which blocks until completion).
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// The base pointer (a method so closures capture the whole wrapper,
    /// which is `Sync`, rather than the raw pointer field, which is not).
    fn get(&self) -> *mut f32 {
        self.0
    }
}

/// Runs `per_row(r, out_row)` for every row, chunked over the pool.
///
/// `cost_per_row` is an estimate of multiply-adds per row used to pick the
/// chunk size; correctness never depends on it.
fn for_each_row(
    out: &mut [f32],
    rows: usize,
    row_len: usize,
    cost_per_row: usize,
    per_row: impl Fn(usize, &mut [f32]) + Sync,
) {
    debug_assert_eq!(out.len(), rows * row_len);
    let min_rows = (MIN_CHUNK_FLOPS / cost_per_row.max(1)).max(1);
    // Sub-threshold fast path: too small to ever split in two — run
    // serially without touching the (locked) global pool at all.
    if rows < 2 * min_rows {
        for (r, out_row) in out.chunks_mut(row_len.max(1)).enumerate().take(rows) {
            per_row(r, out_row);
        }
        return;
    }
    let pool = pool::global();
    let ranges = pool::chunk_ranges(rows, min_rows, pool.threads());
    if ranges.len() <= 1 {
        for (r, out_row) in out.chunks_mut(row_len.max(1)).enumerate().take(rows) {
            per_row(r, out_row);
        }
        return;
    }
    let base = SendPtr(out.as_mut_ptr());
    pool.run(ranges.len(), &|ci| {
        for r in ranges[ci].clone() {
            // SAFETY: chunk ranges are disjoint and `out` outlives the
            // blocking `run` call, so each row slice is exclusive.
            let out_row =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(r * row_len), row_len) };
            per_row(r, out_row);
        }
    });
}

/// Runs `per_elem` over disjoint element ranges, chunked over the pool.
fn for_each_range(out: &mut [f32], per_range: impl Fn(usize, &mut [f32]) + Sync) {
    let len = out.len();
    // Sub-threshold fast path: skip the global-pool lookup entirely.
    if len < 2 * MIN_CHUNK_ELEMS {
        per_range(0, out);
        return;
    }
    let pool = pool::global();
    let ranges = pool::chunk_ranges(len, MIN_CHUNK_ELEMS, pool.threads());
    if ranges.len() <= 1 {
        per_range(0, out);
        return;
    }
    let base = SendPtr(out.as_mut_ptr());
    pool.run(ranges.len(), &|ci| {
        let r = ranges[ci].clone();
        // SAFETY: disjoint ranges of a buffer that outlives the call.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()) };
        per_range(r.start, chunk);
    });
}

// ---- dense kernels ----

/// `out = a · b`, row-partitioned. Rows of `out` are overwritten (stale
/// data is fine).
///
/// # Panics
///
/// Panics if `a.cols != b.rows` or `out` is missized.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut [f32]) {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(k, b.rows(), "matmul shape mismatch: {}x{} * {}x{}", m, k, b.rows(), b.cols());
    assert_eq!(out.len(), m * n, "matmul output buffer mismatch");
    let (a_data, b_data) = (a.as_slice(), b.as_slice());
    let eng = simd::active();
    for_each_row(out, m, n, k * n, |i, out_row| {
        eng.gemm_row(out_row, &a_data[i * k..(i + 1) * k], b_data);
    });
}

/// `out = aᵀ · b` without materialising the transpose, row-partitioned
/// over the `a.cols` output rows. Rows of `out` are overwritten.
///
/// # Panics
///
/// Panics if `a.rows != b.rows` or `out` is missized.
pub fn matmul_tn_into(a: &Matrix, b: &Matrix, out: &mut [f32]) {
    let (rows, m) = a.shape();
    let n = b.cols();
    assert_eq!(
        rows,
        b.rows(),
        "matmul_tn shape mismatch: ({}x{})^T * {}x{}",
        rows,
        m,
        b.rows(),
        b.cols()
    );
    assert_eq!(out.len(), m * n, "matmul_tn output buffer mismatch");
    let (a_data, b_data) = (a.as_slice(), b.as_slice());
    let eng = simd::active();
    for_each_row(out, m, n, rows * n, |i, out_row| {
        eng.gemm_row_strided(out_row, &a_data[i..], m, b_data);
    });
}

/// `out = a · bᵀ` without materialising the transpose, row-partitioned.
/// `out` may hold anything (rows are overwritten).
///
/// # Panics
///
/// Panics if `a.cols != b.cols` or `out` is missized.
pub fn matmul_nt_into(a: &Matrix, b: &Matrix, out: &mut [f32]) {
    let (m, k) = a.shape();
    let n = b.rows();
    assert_eq!(
        k,
        b.cols(),
        "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
        m,
        k,
        b.rows(),
        b.cols()
    );
    assert_eq!(out.len(), m * n, "matmul_nt output buffer mismatch");
    let (a_data, b_data) = (a.as_slice(), b.as_slice());
    let eng = simd::active();
    for_each_row(out, m, n, k * n, |i, out_row| {
        eng.dot_row(out_row, &a_data[i * k..(i + 1) * k], b_data);
    });
}

/// Column concatenation `out[r] = [a[r] | b[r]]` over all rows — the
/// whole-matrix form of [`concat_rows_into`]. Rows of `out` are
/// overwritten.
///
/// # Panics
///
/// Panics if row counts differ or `out` is missized.
pub fn concat_into(a: &Matrix, b: &Matrix, out: &mut [f32]) {
    assert_eq!(a.rows(), b.rows(), "concat row mismatch");
    let (an, bn) = (a.cols(), b.cols());
    let n = an + bn;
    assert_eq!(out.len(), a.rows() * n, "concat output buffer mismatch");
    let (a_data, b_data) = (a.as_slice(), b.as_slice());
    for_each_row(out, a.rows(), n, n.max(1), |r, out_row| {
        out_row[..an].copy_from_slice(&a_data[r * an..(r + 1) * an]);
        out_row[an..].copy_from_slice(&b_data[r * bn..(r + 1) * bn]);
    });
}

// ---- sparse kernels ----

/// `out = s · x`, partitioned over the sparse rows. Rows of `out` are
/// overwritten.
///
/// # Panics
///
/// Panics if `s.cols != x.rows` or `out` is missized.
pub fn spmm_into(s: &CsrMatrix, x: &Matrix, out: &mut [f32]) {
    let rows = s.rows();
    let n = x.cols();
    assert_eq!(
        s.cols(),
        x.rows(),
        "spmm shape mismatch: {}x{} * {}x{}",
        rows,
        s.cols(),
        x.rows(),
        x.cols()
    );
    assert_eq!(out.len(), rows * n, "spmm output buffer mismatch");
    let x_data = x.as_slice();
    let cost = (s.nnz() / rows.max(1)).max(1) * n;
    let eng = simd::active();
    for_each_row(out, rows, n, cost, |r, out_row| {
        let (cols, vals) = s.row_slices(r);
        eng.spmm_row(out_row, cols, vals, x_data);
    });
}

// ---- row-subset kernels ----
//
// Masked variants of the dense/sparse kernels above: they recompute only a
// caller-supplied list of output rows and leave every other row of `out`
// untouched. Because every kernel in this module partitions *output rows*
// and computes each row as an independent, fixed sequence of operations,
// recomputing a row subset with the same per-row loop is bitwise identical
// to the corresponding rows of the full kernel — the foundation of the
// bounded-radius incremental forward in `lhnn`.

/// Runs `per_row(r, out_row)` for every row index in `rows`, chunked over
/// the pool. `rows` must be sorted and duplicate-free so the listed rows
/// address disjoint slices of `out`.
fn for_each_listed_row(
    out: &mut [f32],
    rows: &[usize],
    row_len: usize,
    cost_per_row: usize,
    per_row: impl Fn(usize, &mut [f32]) + Sync,
) {
    debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "row list must be sorted and unique");
    if let Some(&last) = rows.last() {
        assert!((last + 1) * row_len <= out.len(), "row index {} out of bounds", last);
    }
    let min_rows = (MIN_CHUNK_FLOPS / cost_per_row.max(1)).max(1);
    // Sub-threshold fast path — the expected case for small dirty halos.
    if rows.len() < 2 * min_rows {
        for &r in rows {
            per_row(r, &mut out[r * row_len..(r + 1) * row_len]);
        }
        return;
    }
    let pool = pool::global();
    let ranges = pool::chunk_ranges(rows.len(), min_rows, pool.threads());
    if ranges.len() <= 1 {
        for &r in rows {
            per_row(r, &mut out[r * row_len..(r + 1) * row_len]);
        }
        return;
    }
    let base = SendPtr(out.as_mut_ptr());
    pool.run(ranges.len(), &|ci| {
        for li in ranges[ci].clone() {
            let r = rows[li];
            // SAFETY: `rows` is duplicate-free and chunk ranges of the list
            // are disjoint, so each row slice is exclusive; `out` outlives
            // the blocking `run` call.
            let out_row =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(r * row_len), row_len) };
            per_row(r, out_row);
        }
    });
}

/// `out[r] = (a · b)[r]` for every listed row; other rows are untouched.
/// Listed rows are zeroed before accumulation, so `out` may hold stale
/// data. `rows` must be sorted and duplicate-free.
///
/// # Panics
///
/// Panics if `a.cols != b.rows`, `out` is missized, or a row index is out
/// of bounds.
pub fn matmul_rows_into(a: &Matrix, b: &Matrix, rows: &[usize], out: &mut [f32]) {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(k, b.rows(), "matmul shape mismatch: {}x{} * {}x{}", m, k, b.rows(), b.cols());
    assert_eq!(out.len(), m * n, "matmul output buffer mismatch");
    let (a_data, b_data) = (a.as_slice(), b.as_slice());
    let eng = simd::active();
    for_each_listed_row(out, rows, n, k * n, |i, out_row| {
        eng.gemm_row(out_row, &a_data[i * k..(i + 1) * k], b_data);
    });
}

/// `out[r] = act((a · w)[r] + bias)` for every listed row — the fused
/// row-subset form of `Tape::linear` plus an activation map. Bitwise
/// identical to matmul → add-bias → map on the same rows because each
/// element sees the same operation sequence (accumulate in `k` order, add
/// bias, apply `act`). `rows` must be sorted and duplicate-free.
///
/// # Panics
///
/// Panics if shapes mismatch or a row index is out of bounds.
pub fn linear_act_rows_into(
    a: &Matrix,
    w: &Matrix,
    bias: &[f32],
    rows: &[usize],
    out: &mut [f32],
    act: impl Fn(f32) -> f32 + Sync,
) {
    let (m, k) = a.shape();
    let n = w.cols();
    assert_eq!(k, w.rows(), "linear shape mismatch: {}x{} * {}x{}", m, k, w.rows(), w.cols());
    assert_eq!(bias.len(), n, "linear bias length mismatch");
    assert_eq!(out.len(), m * n, "linear output buffer mismatch");
    let (a_data, w_data) = (a.as_slice(), w.as_slice());
    let eng = simd::active();
    for_each_listed_row(out, rows, n, k * n, |i, out_row| {
        eng.gemm_row(out_row, &a_data[i * k..(i + 1) * k], w_data);
        for (o, &bv) in out_row.iter_mut().zip(bias) {
            *o = act(*o + bv);
        }
    });
}

/// Fused `out = act(a · w + bias)` over the full matrix — the whole-matrix
/// form of [`linear_act_rows_into`], and the workhorse of the tape-free
/// inference path. Bitwise identical to matmul → add-bias → map because
/// each element sees the same operation sequence (accumulate in `k`
/// order, add bias, apply `act`). Rows of `out` are overwritten.
///
/// # Panics
///
/// Panics if shapes mismatch or `out` is missized.
pub fn linear_act_into(
    a: &Matrix,
    w: &Matrix,
    bias: &[f32],
    out: &mut [f32],
    act: impl Fn(f32) -> f32 + Sync,
) {
    let (m, k) = a.shape();
    let n = w.cols();
    assert_eq!(k, w.rows(), "linear shape mismatch: {}x{} * {}x{}", m, k, w.rows(), w.cols());
    assert_eq!(bias.len(), n, "linear bias length mismatch");
    assert_eq!(out.len(), m * n, "linear output buffer mismatch");
    let (a_data, w_data) = (a.as_slice(), w.as_slice());
    let eng = simd::active();
    for_each_row(out, m, n, k * n, |i, out_row| {
        eng.gemm_row(out_row, &a_data[i * k..(i + 1) * k], w_data);
        for (o, &bv) in out_row.iter_mut().zip(bias) {
            *o = act(*o + bv);
        }
    });
}

/// `out[r] = (s · x)[r]` for every listed row; other rows are untouched.
/// Listed rows are zeroed before accumulation. `rows` must be sorted and
/// duplicate-free.
///
/// # Panics
///
/// Panics if `s.cols != x.rows`, `out` is missized, or a row index is out
/// of bounds.
pub fn spmm_rows_into(s: &CsrMatrix, x: &Matrix, rows: &[usize], out: &mut [f32]) {
    let m = s.rows();
    let n = x.cols();
    assert_eq!(
        s.cols(),
        x.rows(),
        "spmm shape mismatch: {}x{} * {}x{}",
        m,
        s.cols(),
        x.rows(),
        x.cols()
    );
    assert_eq!(out.len(), m * n, "spmm output buffer mismatch");
    let x_data = x.as_slice();
    let cost = (s.nnz() / m.max(1)).max(1) * n;
    let eng = simd::active();
    for_each_listed_row(out, rows, n, cost, |r, out_row| {
        let (cols, vals) = s.row_slices(r);
        eng.spmm_row(out_row, cols, vals, x_data);
    });
}

/// `out[r][j] = f(a[r][j], b[r][j])` for every listed row; other rows are
/// untouched. `rows` must be sorted and duplicate-free.
///
/// # Panics
///
/// Panics if lengths mismatch or a row index is out of bounds.
pub fn zip_rows_into(
    a: &[f32],
    b: &[f32],
    rows: &[usize],
    row_len: usize,
    out: &mut [f32],
    f: impl Fn(f32, f32) -> f32 + Sync,
) {
    assert_eq!(a.len(), out.len(), "zip length mismatch");
    assert_eq!(b.len(), out.len(), "zip length mismatch");
    for_each_listed_row(out, rows, row_len, row_len.max(1), |r, out_row| {
        let start = r * row_len;
        let end = start + row_len;
        for ((o, &x), &y) in out_row.iter_mut().zip(&a[start..end]).zip(&b[start..end]) {
            *o = f(x, y);
        }
    });
}

/// `out[r][j] = f(a[r][j], out[r][j])` for every listed row — the in-place
/// variant of [`zip_rows_into`] for when one operand is the destination.
/// `rows` must be sorted and duplicate-free.
///
/// # Panics
///
/// Panics if lengths mismatch or a row index is out of bounds.
pub fn zip_rows_inplace(
    a: &[f32],
    rows: &[usize],
    row_len: usize,
    out: &mut [f32],
    f: impl Fn(f32, f32) -> f32 + Sync,
) {
    assert_eq!(a.len(), out.len(), "zip length mismatch");
    for_each_listed_row(out, rows, row_len, row_len.max(1), |r, out_row| {
        let start = r * row_len;
        let end = start + row_len;
        for (o, &x) in out_row.iter_mut().zip(&a[start..end]) {
            *o = f(x, *o);
        }
    });
}

/// Row-subset column concatenation: `out[r] = [a[r] | b[r]]` for every
/// listed row; other rows are untouched. `rows` must be sorted and
/// duplicate-free.
///
/// # Panics
///
/// Panics if row counts differ or `out` is missized.
pub fn concat_rows_into(a: &Matrix, b: &Matrix, rows: &[usize], out: &mut [f32]) {
    assert_eq!(a.rows(), b.rows(), "concat row mismatch");
    let (an, bn) = (a.cols(), b.cols());
    let n = an + bn;
    assert_eq!(out.len(), a.rows() * n, "concat output buffer mismatch");
    let (a_data, b_data) = (a.as_slice(), b.as_slice());
    for_each_listed_row(out, rows, n, n.max(1), |r, out_row| {
        out_row[..an].copy_from_slice(&a_data[r * an..(r + 1) * an]);
        out_row[an..].copy_from_slice(&b_data[r * bn..(r + 1) * bn]);
    });
}

/// `out[r][j] = f(src[r][j])` for every listed row; other rows are
/// untouched. `rows` must be sorted and duplicate-free.
///
/// # Panics
///
/// Panics if lengths mismatch or a row index is out of bounds.
pub fn map_rows_into(
    src: &[f32],
    rows: &[usize],
    row_len: usize,
    out: &mut [f32],
    f: impl Fn(f32) -> f32 + Sync,
) {
    assert_eq!(src.len(), out.len(), "map length mismatch");
    for_each_listed_row(out, rows, row_len, row_len.max(1), |r, out_row| {
        let start = r * row_len;
        let end = start + row_len;
        for (o, &s) in out_row.iter_mut().zip(&src[start..end]) {
            *o = f(s);
        }
    });
}

// ---- elementwise kernels ----

/// `out[i] = f(src[i])`, chunk-partitioned. Lengths must match.
pub fn map_into(src: &[f32], out: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    assert_eq!(src.len(), out.len(), "map length mismatch");
    for_each_range(out, |start, chunk| {
        let end = start + chunk.len();
        for (o, &s) in chunk.iter_mut().zip(&src[start..end]) {
            *o = f(s);
        }
    });
}

/// `data[i] = f(data[i])` in place, chunk-partitioned.
pub fn map_inplace(data: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    for_each_range(data, |_, chunk| {
        for v in chunk {
            *v = f(*v);
        }
    });
}

/// `out[i] = f(a[i], b[i])`, chunk-partitioned. Lengths must match.
pub fn zip_into(a: &[f32], b: &[f32], out: &mut [f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    assert_eq!(a.len(), out.len(), "zip length mismatch");
    assert_eq!(b.len(), out.len(), "zip length mismatch");
    for_each_range(out, |start, chunk| {
        let end = start + chunk.len();
        for ((o, &x), &y) in chunk.iter_mut().zip(&a[start..end]).zip(&b[start..end]) {
            *o = f(x, y);
        }
    });
}

/// `out[i] = f(a[i], out[i])` in place, chunk-partitioned — the
/// whole-buffer form of [`zip_rows_inplace`], for chains where one
/// operand is also the destination (residual skips in the fused
/// inference path). Lengths must match.
pub fn zip_inplace(a: &[f32], out: &mut [f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    assert_eq!(a.len(), out.len(), "zip length mismatch");
    for_each_range(out, |start, chunk| {
        let end = start + chunk.len();
        for (o, &x) in chunk.iter_mut().zip(&a[start..end]) {
            *o = f(x, *o);
        }
    });
}

/// Serial reference implementations, kept loop-for-loop identical to the
/// pre-parallel seed kernels.
///
/// The `parallel_kernels` property tests pin the pooled kernels to these
/// bitwise; they are not meant for production use.
///
/// The accumulating references deliberately **keep** the historical
/// `av == 0.0` zero-skip the hot kernels dropped: for finite data the
/// skip is bitwise unobservable (see the module docs), so the unchanged
/// references double as proof that the SIMD rewrite preserved the seed
/// kernels' numerics exactly. `matmul_nt` is the exception — it reduces
/// along `k`, so its reference is the scalar emulation of the fixed lane
/// schedule (independently spelled out here, not calling into
/// [`crate::simd`]).
pub mod reference {
    use super::{CsrMatrix, Matrix};

    /// Serial `a · b` (i-k-j loop with zero skip).
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        let n = b.cols();
        for i in 0..a.rows() {
            let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            for (k, &av) in a.row(i).iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for (o, &bv) in out_row.iter_mut().zip(b.row(k)) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Serial `aᵀ · b` (k-outer scatter loop with zero skip).
    pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.cols(), b.cols());
        let n = b.cols();
        for k in 0..a.rows() {
            let b_row = b.row(k);
            for (i, &av) in a.row(k).iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Serial `a · bᵀ` (dot products) emulating the fixed lane schedule:
    /// eight independent accumulators walking 8-wide chunks, combined by
    /// the fixed pairwise tree `((a0+a4)+(a2+a6)) + ((a1+a5)+(a3+a7))`,
    /// then the `k % 8` remainder added in index order. This is the
    /// scalar twin the SIMD `dot` is pinned against.
    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        const LANES: usize = 8;
        let mut out = Matrix::zeros(a.rows(), b.rows());
        let k = a.cols();
        let chunks = k / LANES;
        for i in 0..a.rows() {
            let a_row = a.row(i);
            for j in 0..b.rows() {
                let b_row = b.row(j);
                let mut acc = [0.0f32; LANES];
                for c in 0..chunks {
                    let base = c * LANES;
                    for l in 0..LANES {
                        acc[l] += a_row[base + l] * b_row[base + l];
                    }
                }
                let s = [acc[0] + acc[4], acc[1] + acc[5], acc[2] + acc[6], acc[3] + acc[7]];
                let t = [s[0] + s[2], s[1] + s[3]];
                let mut total = t[0] + t[1];
                for idx in chunks * LANES..k {
                    total += a_row[idx] * b_row[idx];
                }
                out[(i, j)] = total;
            }
        }
        out
    }

    /// Serial `s · x` (row loop).
    pub fn spmm(s: &CsrMatrix, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(s.rows(), x.cols());
        let n = x.cols();
        for r in 0..s.rows() {
            let out_row = &mut out.as_mut_slice()[r * n..(r + 1) * n];
            for (c, v) in s.row_entries(r) {
                for (o, &xv) in out_row.iter_mut().zip(x.row(c)) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// Serial `sᵀ · x` in the original *scatter* formulation (iterate the
    /// stored rows, accumulate into transposed output rows).
    pub fn spmm_t_scatter(s: &CsrMatrix, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(s.cols(), x.cols());
        let n = x.cols();
        for r in 0..s.rows() {
            let entries: Vec<(usize, f32)> = s.row_entries(r).collect();
            for (c, v) in entries {
                let x_row = &x.as_slice()[r * n..(r + 1) * n];
                let out_row = &mut out.as_mut_slice()[c * n..(c + 1) * n];
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        }
        out
    }
}
