//! Error type for the `neurograd` crate.

use std::error::Error as StdError;
use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NeuroError>;

/// Errors produced by tensor construction and model plumbing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NeuroError {
    /// A matrix/tensor was built or combined with incompatible dimensions.
    ShapeMismatch {
        /// Shape the operation required.
        expected: (usize, usize),
        /// Shape that was supplied.
        got: (usize, usize),
        /// Operation name for diagnostics.
        context: &'static str,
    },
    /// An index (row, parameter id, node id, …) was out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of valid entries.
        len: usize,
        /// Operation name for diagnostics.
        context: &'static str,
    },
    /// A configuration value was invalid (e.g. zero hidden size).
    InvalidConfig(String),
}

impl fmt::Display for NeuroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeuroError::ShapeMismatch { expected, got, context } => write!(
                f,
                "shape mismatch in {context}: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            NeuroError::IndexOutOfRange { index, len, context } => {
                write!(f, "index {index} out of range in {context} (len {len})")
            }
            NeuroError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl StdError for NeuroError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NeuroError::ShapeMismatch { expected: (2, 3), got: (3, 2), context: "matmul" };
        let s = e.to_string();
        assert!(s.contains("matmul") && s.contains("2x3") && s.contains("3x2"));

        let e = NeuroError::IndexOutOfRange { index: 9, len: 3, context: "param" };
        assert!(e.to_string().contains("9"));

        let e = NeuroError::InvalidConfig("hidden size must be > 0".into());
        assert!(e.to_string().starts_with("invalid configuration"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NeuroError>();
    }
}
