//! Content fingerprints for dense and sparse tensors.
//!
//! The serving layer caches predictions keyed by *what went into the
//! forward pass*: the model weights, the graph operators and the input
//! features. [`Fnv64`] is a seedless FNV-1a 64-bit hasher over raw bytes —
//! deterministic across runs and platforms of the same endianness, unlike
//! `std::hash::DefaultHasher` whose keys are randomised per process.
//!
//! Floats are hashed by their IEEE-754 bit pattern ([`f32::to_bits`]), so
//! two tensors fingerprint equal iff they are bitwise equal — exactly the
//! contract a prediction cache needs (`-0.0` vs `0.0` and NaN payloads are
//! distinguished; a cache miss on such hair-splitting is merely a recompute).
//!
//! # Examples
//!
//! ```
//! use neurograd::{Fnv64, Matrix};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0]]);
//! let b = Matrix::from_rows(&[&[1.0, 2.0]]);
//! assert_eq!(a.fingerprint(), b.fingerprint());
//! assert_ne!(a.fingerprint(), a.transpose().fingerprint()); // shape matters
//!
//! let mut h = Fnv64::new();
//! h.write_u64(7);
//! let once = h.finish();
//! assert_ne!(once, Fnv64::new().finish());
//! ```

use crate::matrix::Matrix;
use crate::sparse::CsrMatrix;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a streaming hasher.
///
/// Not cryptographic — collisions are possible in principle but are
/// vanishingly unlikely for the tensor sizes involved, and a collision
/// costs only a wrong cache hit in trusted-input settings. Callers that
/// serve untrusted inputs should treat the cache as advisory.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` as one FNV-1a step (word-wise, not byte-wise: ~8×
    /// fewer multiplies on tensor-sized inputs, same determinism).
    pub fn write_u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a `usize` as `u64` so fingerprints agree across pointer
    /// widths.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `f32` slice by IEEE-754 bit pattern, one word per step.
    pub fn write_f32s(&mut self, values: &[f32]) {
        for &v in values {
            self.write_u64(u64::from(v.to_bits()));
        }
    }

    /// Absorbs a string (length-prefixed, so `"ab" + "c"` ≠ `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Matrix {
    /// Hashes shape and contents into `h`.
    pub fn hash_into(&self, h: &mut Fnv64) {
        h.write_usize(self.rows());
        h.write_usize(self.cols());
        h.write_f32s(self.as_slice());
    }

    /// A content fingerprint: equal iff shape and every element's bit
    /// pattern are equal.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        self.hash_into(&mut h);
        h.finish()
    }
}

impl CsrMatrix {
    /// Hashes shape, sparsity pattern and values into `h`.
    pub fn hash_into(&self, h: &mut Fnv64) {
        h.write_usize(self.rows());
        h.write_usize(self.cols());
        h.write_usize(self.nnz());
        for (r, c, v) in self.iter() {
            h.write_usize(r);
            h.write_usize(c);
            h.write_u64(u64::from(v.to_bits()));
        }
    }

    /// A content fingerprint over shape, pattern and values.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        self.hash_into(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        let mut h = Fnv64::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn matrix_fingerprint_is_content_sensitive() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.as_mut_slice()[3] += 1e-4;
        assert_ne!(a.fingerprint(), b.fingerprint());
        // bitwise sensitivity: -0.0 and 0.0 are distinct cache keys
        let zero = Matrix::from_rows(&[&[0.0f32]]);
        let neg_zero = Matrix::from_rows(&[&[-0.0f32]]);
        assert_ne!(zero.fingerprint(), neg_zero.fingerprint());
    }

    #[test]
    fn matrix_fingerprint_distinguishes_shape() {
        let flat = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let tall = Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_ne!(flat.fingerprint(), tall.fingerprint());
    }

    #[test]
    fn csr_fingerprint_tracks_pattern_and_values() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let same = CsrMatrix::from_triplets(2, 2, &[(1, 1, 2.0), (0, 0, 1.0)]);
        assert_eq!(a.fingerprint(), same.fingerprint());
        let moved = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 1, 2.0)]);
        assert_ne!(a.fingerprint(), moved.fingerprint());
        let rescaled = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.5), (1, 1, 2.0)]);
        assert_ne!(a.fingerprint(), rescaled.fingerprint());
    }

    #[test]
    fn empty_and_zero_distinguished() {
        let empty = CsrMatrix::empty(2, 2);
        let explicit_zero = CsrMatrix::from_triplets(2, 2, &[(0, 0, 0.0)]);
        assert_ne!(empty.fingerprint(), explicit_zero.fingerprint());
    }

    #[test]
    fn str_hashing_is_length_prefixed() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
