//! Content fingerprints for dense and sparse tensors.
//!
//! The serving layer caches predictions keyed by *what went into the
//! forward pass*: the model weights, the graph operators and the input
//! features. [`Fnv64`] is a seedless FNV-1a 64-bit hasher over raw bytes —
//! deterministic across runs and platforms of the same endianness, unlike
//! `std::hash::DefaultHasher` whose keys are randomised per process.
//!
//! Floats are hashed by a *canonicalised* IEEE-754 bit pattern
//! ([`canonical_f32_bits`]): `-0.0` folds onto `+0.0` and every NaN folds
//! onto the single quiet-NaN pattern. That makes the fingerprint a function
//! of the tensor's *observable* value — two tensors that compare equal
//! under `Matrix`/`CsrMatrix` `PartialEq` (where `-0.0 == 0.0`) always
//! fingerprint equal, so a prediction cache keyed on fingerprints never
//! misses (nor defeats single-flight dedup) between observably identical
//! states. NaN is the one asymmetry: `NaN != NaN` under `PartialEq`, so a
//! NaN-bearing tensor is never *observably* equal to anything, yet all
//! NaN payloads hash alike. That is a deliberate aliasing: two NaN states
//! differing only in payload bits share a cache key even though a direct
//! forward on each could differ bitwise — every such state is already
//! garbage (NaN poisons the whole forward), so no consumer can tell the
//! difference, and payload-sensitive keys would only multiply useless
//! cache entries.
//!
//! # Examples
//!
//! ```
//! use neurograd::{Fnv64, Matrix};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0]]);
//! let b = Matrix::from_rows(&[&[1.0, 2.0]]);
//! assert_eq!(a.fingerprint(), b.fingerprint());
//! assert_ne!(a.fingerprint(), a.transpose().fingerprint()); // shape matters
//!
//! let mut h = Fnv64::new();
//! h.write_u64(7);
//! let once = h.finish();
//! assert_ne!(once, Fnv64::new().finish());
//! ```

use crate::matrix::Matrix;
use crate::sparse::CsrMatrix;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The canonical bit pattern a float hashes by.
///
/// * `-0.0` → the bits of `+0.0` (the two compare equal under `==`, and
///   therefore under every tensor `PartialEq` in the workspace — hashing
///   them apart would split cache keys between observably equal states);
/// * any NaN → the standard quiet-NaN pattern `0x7fc0_0000` (NaN payloads
///   are indistinguishable to every consumer of a tensor; a NaN state is
///   unusable regardless of payload, so the fingerprint collapses them);
/// * every other value → its exact [`f32::to_bits`] pattern.
#[inline]
pub fn canonical_f32_bits(v: f32) -> u32 {
    if v.is_nan() {
        0x7fc0_0000
    } else if v == 0.0 {
        0 // +0.0 and -0.0 share one canonical pattern
    } else {
        v.to_bits()
    }
}

/// A 64-bit FNV-1a streaming hasher.
///
/// Not cryptographic — collisions are possible in principle but are
/// vanishingly unlikely for the tensor sizes involved, and a collision
/// costs only a wrong cache hit in trusted-input settings. Callers that
/// serve untrusted inputs should treat the cache as advisory.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` as one FNV-1a step (word-wise, not byte-wise: ~8×
    /// fewer multiplies on tensor-sized inputs, same determinism).
    pub fn write_u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a `usize` as `u64` so fingerprints agree across pointer
    /// widths.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs one `f32` by its canonical bit pattern (see
    /// [`canonical_f32_bits`]: `-0.0` folds onto `+0.0`, NaNs collapse).
    pub fn write_f32(&mut self, v: f32) {
        self.write_u64(u64::from(canonical_f32_bits(v)));
    }

    /// Absorbs an `f32` slice by canonical bit pattern, one word per step.
    pub fn write_f32s(&mut self, values: &[f32]) {
        for &v in values {
            self.write_f32(v);
        }
    }

    /// Absorbs a string (length-prefixed, so `"ab" + "c"` ≠ `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Matrix {
    /// Hashes shape and contents into `h`.
    pub fn hash_into(&self, h: &mut Fnv64) {
        h.write_usize(self.rows());
        h.write_usize(self.cols());
        h.write_f32s(self.as_slice());
    }

    /// A content fingerprint: equal iff shape and every element's
    /// *canonical* bit pattern are equal — for finite tensors, exactly iff
    /// the matrices compare equal under `PartialEq`.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        self.hash_into(&mut h);
        h.finish()
    }
}

impl CsrMatrix {
    /// Hashes shape, sparsity pattern and values into `h`.
    pub fn hash_into(&self, h: &mut Fnv64) {
        h.write_usize(self.rows());
        h.write_usize(self.cols());
        h.write_usize(self.nnz());
        for (r, c, v) in self.iter() {
            h.write_usize(r);
            h.write_usize(c);
            h.write_f32(v);
        }
    }

    /// A content fingerprint over shape, pattern and values.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        self.hash_into(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        let mut h = Fnv64::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn matrix_fingerprint_is_content_sensitive() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.as_mut_slice()[3] += 1e-4;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    /// Regression (serve-layer bug sweep): for finite tensors, fingerprint
    /// equality must coincide with observable (`PartialEq`) equality in
    /// BOTH directions. `-0.0 == 0.0` under `PartialEq`, so the two must
    /// share a fingerprint — a mismatch made equal placement states miss
    /// the prediction cache and defeat single-flight dedup.
    #[test]
    fn negative_zero_fingerprints_like_positive_zero() {
        let zero = Matrix::from_rows(&[&[0.0f32, 1.5]]);
        let neg_zero = Matrix::from_rows(&[&[-0.0f32, 1.5]]);
        assert_eq!(zero, neg_zero, "PartialEq treats -0.0 and 0.0 as equal");
        assert_eq!(zero.fingerprint(), neg_zero.fingerprint(), "fingerprint must agree");

        let s = CsrMatrix::from_triplets(2, 2, &[(0, 0, 0.0), (1, 1, 2.0)]);
        let sn = CsrMatrix::from_triplets(2, 2, &[(0, 0, -0.0), (1, 1, 2.0)]);
        assert_eq!(s, sn);
        assert_eq!(s.fingerprint(), sn.fingerprint());
        assert_eq!(s.content_fingerprint(), sn.content_fingerprint());

        // ...and the other direction: observably different values keep
        // different fingerprints.
        let other = Matrix::from_rows(&[&[f32::MIN_POSITIVE, 1.5]]);
        assert_ne!(zero, other);
        assert_ne!(zero.fingerprint(), other.fingerprint());
    }

    /// NaN policy: payload bits collapse onto one canonical pattern. A NaN
    /// state is never observably equal to anything (`NaN != NaN`), so the
    /// fingerprint does not try to distinguish the payloads either.
    #[test]
    fn nan_payloads_collapse() {
        assert_eq!(canonical_f32_bits(f32::NAN), 0x7fc0_0000);
        assert_eq!(canonical_f32_bits(f32::from_bits(0x7fc0_dead)), 0x7fc0_0000);
        assert_eq!(canonical_f32_bits(-0.0), 0);
        assert_eq!(canonical_f32_bits(1.5), 1.5f32.to_bits());
        let a = Matrix::from_rows(&[&[f32::NAN]]);
        let b = Matrix::from_rows(&[&[f32::from_bits(0x7fc0_0001)]]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a, b, "NaN keeps PartialEq irreflexive; only the hash collapses");
    }

    #[test]
    fn matrix_fingerprint_distinguishes_shape() {
        let flat = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let tall = Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_ne!(flat.fingerprint(), tall.fingerprint());
    }

    #[test]
    fn csr_fingerprint_tracks_pattern_and_values() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let same = CsrMatrix::from_triplets(2, 2, &[(1, 1, 2.0), (0, 0, 1.0)]);
        assert_eq!(a.fingerprint(), same.fingerprint());
        let moved = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 1, 2.0)]);
        assert_ne!(a.fingerprint(), moved.fingerprint());
        let rescaled = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.5), (1, 1, 2.0)]);
        assert_ne!(a.fingerprint(), rescaled.fingerprint());
    }

    #[test]
    fn empty_and_zero_distinguished() {
        let empty = CsrMatrix::empty(2, 2);
        let explicit_zero = CsrMatrix::from_triplets(2, 2, &[(0, 0, 0.0)]);
        assert_ne!(empty.fingerprint(), explicit_zero.fingerprint());
    }

    #[test]
    fn str_hashing_is_length_prefixed() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
