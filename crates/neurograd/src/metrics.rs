//! Binary-classification metrics: confusion counts, F1 and accuracy.
//!
//! These are the two metrics the LHNN paper reports (Table 2/3). The
//! paper's convention is followed: a design whose ground truth has zero
//! positives yields an F1 of 0, which "holds back" averages — see the note
//! under *Evaluation metrics* in §5.1.

/// Confusion-matrix counts for a binary task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl Confusion {
    /// Builds counts from predicted probabilities and 0/1 targets at the
    /// given decision threshold.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn from_scores(scores: &[f32], targets: &[f32], threshold: f32) -> Self {
        assert_eq!(scores.len(), targets.len(), "scores/targets length mismatch");
        let mut c = Confusion::default();
        for (&s, &t) in scores.iter().zip(targets) {
            let p = s >= threshold;
            let y = t >= 0.5;
            match (p, y) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Merges another confusion into this one.
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Total number of counted samples.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision `tp / (tp + fp)`; 0 when the denominator is 0.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall `tp / (tp + fn)`; 0 when the denominator is 0.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 score, the harmonic mean of precision and recall.
    ///
    /// Returns 0 when there are no predicted or actual positives, matching
    /// the paper's convention for congestion-free circuits.
    pub fn f1(&self) -> f64 {
        let denom = 2 * self.tp + self.fp + self.fn_;
        ratio(2 * self.tp, denom)
    }

    /// Accuracy `(tp + tn) / total`; 0 on empty input.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }
}

fn ratio(num: u64, denom: u64) -> f64 {
    if denom == 0 {
        0.0
    } else {
        num as f64 / denom as f64
    }
}

/// Mean and (population) standard deviation of a sample, as `mean ± std`
/// pairs reported in the paper's tables.
///
/// Returns `(0.0, 0.0)` for an empty slice.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let c = Confusion::from_scores(&[0.9, 0.1, 0.8, 0.2], &[1.0, 0.0, 1.0, 0.0], 0.5);
        assert_eq!(c, Confusion { tp: 2, fp: 0, tn: 2, fn_: 0 });
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
    }

    #[test]
    fn all_wrong_prediction() {
        let c = Confusion::from_scores(&[0.1, 0.9], &[1.0, 0.0], 0.5);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn zero_positive_ground_truth_yields_zero_f1() {
        // the paper's congestion-free circuit convention
        let c = Confusion::from_scores(&[0.1, 0.2, 0.3], &[0.0, 0.0, 0.0], 0.5);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn known_f1_value() {
        // tp=1, fp=1, fn=1 -> precision 0.5, recall 0.5, f1 0.5
        let c = Confusion::from_scores(&[0.9, 0.9, 0.1], &[1.0, 0.0, 1.0], 0.5);
        assert!((c.f1() - 0.5).abs() < 1e-12);
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_moves_decisions() {
        let scores = [0.4, 0.6];
        let targets = [1.0, 1.0];
        assert_eq!(Confusion::from_scores(&scores, &targets, 0.5).tp, 1);
        assert_eq!(Confusion::from_scores(&scores, &targets, 0.3).tp, 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Confusion { tp: 1, fp: 2, tn: 3, fn_: 4 };
        let b = Confusion { tp: 10, fp: 20, tn: 30, fn_: 40 };
        a.merge(&b);
        assert_eq!(a, Confusion { tp: 11, fp: 22, tn: 33, fn_: 44 });
        assert_eq!(a.total(), 110);
    }

    #[test]
    fn mean_std_known_values() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        assert!((s - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
