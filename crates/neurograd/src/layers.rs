//! Reusable network building blocks: [`Linear`], [`Mlp`] and [`ResBlock`].
//!
//! A layer registers its weights in a [`ParamStore`] at construction time
//! and replays them onto a fresh [`Tape`] every forward pass. This mirrors
//! how the LHNN paper composes blocks: `Lin` (a linear layer with
//! activation) and `Res` (a two-layer residual MLP).

use rand::Rng;

use crate::init::{kaiming_normal, xavier_uniform};
use crate::matrix::Matrix;
use crate::optim::ParamStore;
use crate::tape::{ParamId, Tape, Var};

/// Pointwise non-linearity applied after a linear map.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Activation {
    /// No activation.
    #[default]
    Identity,
    /// `max(0, x)`.
    Relu,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(f32),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation on the tape.
    pub fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Identity => x,
            Activation::Relu => tape.relu(x),
            Activation::LeakyRelu(a) => tape.leaky_relu(x, a),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Tanh => tape.tanh(x),
        }
    }

    /// Evaluates the activation on a scalar, using the *same* float
    /// expressions as the tape ops so tape-free forwards stay bitwise
    /// identical to taped ones.
    pub fn eval(self, v: f32) -> f32 {
        match self {
            Activation::Identity => v,
            Activation::Relu => v.max(0.0),
            Activation::LeakyRelu(a) => {
                if v >= 0.0 {
                    v
                } else {
                    a * v
                }
            }
            Activation::Sigmoid => crate::tape::stable_sigmoid(v),
            Activation::Tanh => v.tanh(),
        }
    }
}

/// A fully-connected layer `y = act(x·W + b)`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: ParamId,
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
}

impl Linear {
    /// Creates a layer with Kaiming-normal weights (suited to ReLU nets).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        let weight =
            store.register(format!("{name}.weight"), kaiming_normal(in_dim, out_dim, in_dim, rng));
        let bias = store.register(format!("{name}.bias"), Matrix::zeros(1, out_dim));
        Self { weight, bias, in_dim, out_dim, activation }
    }

    /// Creates a layer with Xavier-uniform weights (suited to tanh/sigmoid).
    pub fn xavier(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        let weight = store.register(format!("{name}.weight"), xavier_uniform(in_dim, out_dim, rng));
        let bias = store.register(format!("{name}.bias"), Matrix::zeros(1, out_dim));
        Self { weight, bias, in_dim, out_dim, activation }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Runs the layer on a `N × in_dim` input.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have `in_dim` columns.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        assert_eq!(tape.shape(x).1, self.in_dim, "linear input dim mismatch");
        let w = store.var(self.weight, tape);
        let b = store.var(self.bias, tape);
        let y = tape.linear(x, w, b);
        self.activation.apply(tape, y)
    }

    /// Tape-free forward over a sorted, duplicate-free subset of input
    /// rows: `out[r] = act(x[r] · W + b)` for each listed row, every other
    /// row of `out` untouched. Bitwise identical to the listed rows of
    /// [`Linear::forward`] (fused matmul → bias → activation preserves the
    /// per-element operation sequence).
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have `in_dim` columns or `out` is not
    /// `x.rows() × out_dim`.
    pub fn forward_rows_into(
        &self,
        store: &ParamStore,
        x: &Matrix,
        rows: &[usize],
        out: &mut Matrix,
    ) {
        assert_eq!(x.cols(), self.in_dim, "linear input dim mismatch");
        assert_eq!(out.shape(), (x.rows(), self.out_dim), "linear output shape mismatch");
        let w = &store.param(self.weight).value;
        let b = store.param(self.bias).value.as_slice();
        let act = self.activation;
        crate::kernels::linear_act_rows_into(x, w, b, rows, out.as_mut_slice(), move |v| {
            act.eval(v)
        });
    }

    /// Tape-free fused forward over the whole input: `out = act(x·W + b)`
    /// in one kernel pass, no tape node, no intermediate buffers. Bitwise
    /// identical to [`Linear::forward`] (the fused kernel preserves the
    /// per-element operation sequence: accumulate in `k` order, add bias,
    /// apply the activation via [`Activation::eval`]).
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have `in_dim` columns or `out` is not
    /// `x.rows() × out_dim`.
    pub fn forward_into(&self, store: &ParamStore, x: &Matrix, out: &mut Matrix) {
        assert_eq!(x.cols(), self.in_dim, "linear input dim mismatch");
        assert_eq!(out.shape(), (x.rows(), self.out_dim), "linear output shape mismatch");
        let w = &store.param(self.weight).value;
        let b = store.param(self.bias).value.as_slice();
        let act = self.activation;
        crate::kernels::linear_act_into(x, w, b, out.as_mut_slice(), move |v| act.eval(v));
    }
}

/// A plain multi-layer perceptron: `in → hidden × (depth-1) → out`.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Creates an MLP with `depth` linear layers, ReLU between them and
    /// `out_activation` on the last.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        depth: usize,
        out_activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(depth > 0, "mlp depth must be positive");
        let mut layers = Vec::with_capacity(depth);
        for l in 0..depth {
            let (i, o) = (
                if l == 0 { in_dim } else { hidden },
                if l == depth - 1 { out_dim } else { hidden },
            );
            let act = if l == depth - 1 { out_activation } else { Activation::Relu };
            layers.push(Linear::new(store, &format!("{name}.l{l}"), i, o, act, rng));
        }
        Self { layers }
    }

    /// Input dimension of the first layer.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension of the last layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("depth > 0").out_dim()
    }

    /// Number of linear layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Runs the MLP.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        for layer in &self.layers {
            h = layer.forward(tape, store, h);
        }
        h
    }
}

/// Two-layer residual MLP: `y = relu(x·W₁ + b₁)·W₂ + b₂ + proj(x)`.
///
/// `proj` is the identity when `in_dim == out_dim`, otherwise a learned
/// linear projection. This is the `Res` block of the LHNN architecture
/// diagram (Figure 3 of the paper).
#[derive(Debug, Clone)]
pub struct ResBlock {
    lin1: Linear,
    lin2: Linear,
    proj: Option<Linear>,
    out_activation: Activation,
}

impl ResBlock {
    /// Creates a residual block mapping `in_dim → out_dim` through `hidden`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        out_activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        let lin1 =
            Linear::new(store, &format!("{name}.lin1"), in_dim, hidden, Activation::Relu, rng);
        let lin2 =
            Linear::new(store, &format!("{name}.lin2"), hidden, out_dim, Activation::Identity, rng);
        let proj = (in_dim != out_dim).then(|| {
            Linear::new(store, &format!("{name}.proj"), in_dim, out_dim, Activation::Identity, rng)
        });
        Self { lin1, lin2, proj, out_activation }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.lin1.in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.lin2.out_dim()
    }

    /// Runs the block.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let h = self.lin1.forward(tape, store, x);
        let h = self.lin2.forward(tape, store, h);
        let skip = match &self.proj {
            Some(p) => p.forward(tape, store, x),
            None => x,
        };
        let y = tape.add(h, skip);
        self.out_activation.apply(tape, y)
    }

    /// Tape-free forward over a sorted, duplicate-free subset of input
    /// rows; every other row of `out` is untouched. Bitwise identical to
    /// the listed rows of [`ResBlock::forward`].
    ///
    /// `scratch_h` (`N × hidden`) and `scratch_y` (`N × out_dim`) hold the
    /// intermediate activations for the listed rows; their other rows are
    /// never read, so stale contents are fine.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn forward_rows_into(
        &self,
        store: &ParamStore,
        x: &Matrix,
        rows: &[usize],
        scratch_h: &mut Matrix,
        scratch_y: &mut Matrix,
        out: &mut Matrix,
    ) {
        let n = self.out_dim();
        assert_eq!(scratch_h.shape(), (x.rows(), self.lin1.out_dim()), "resblock scratch_h shape");
        assert_eq!(scratch_y.shape(), (x.rows(), n), "resblock scratch_y shape");
        assert_eq!(out.shape(), (x.rows(), n), "resblock output shape");
        self.lin1.forward_rows_into(store, x, rows, scratch_h);
        self.lin2.forward_rows_into(store, scratch_h, rows, scratch_y);
        let act = self.out_activation;
        match &self.proj {
            Some(p) => {
                // `out` holds the projected skip; fold `h + skip` in place
                // (same operand order as `tape.add(h, skip)`).
                p.forward_rows_into(store, x, rows, out);
                crate::kernels::zip_rows_inplace(
                    scratch_y.as_slice(),
                    rows,
                    n,
                    out.as_mut_slice(),
                    move |h, skip| act.eval(h + skip),
                );
            }
            None => {
                assert_eq!(x.cols(), n, "identity skip dim mismatch");
                crate::kernels::zip_rows_into(
                    scratch_y.as_slice(),
                    x.as_slice(),
                    rows,
                    n,
                    out.as_mut_slice(),
                    move |h, skip| act.eval(h + skip),
                );
            }
        }
    }

    /// Tape-free fused forward over the whole input — the whole-matrix
    /// form of [`ResBlock::forward_rows_into`], bitwise identical to
    /// [`ResBlock::forward`]. `scratch_h` (`N × hidden`) and `scratch_y`
    /// (`N × out_dim`) are overwritten.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn forward_into(
        &self,
        store: &ParamStore,
        x: &Matrix,
        scratch_h: &mut Matrix,
        scratch_y: &mut Matrix,
        out: &mut Matrix,
    ) {
        let n = self.out_dim();
        assert_eq!(scratch_h.shape(), (x.rows(), self.lin1.out_dim()), "resblock scratch_h shape");
        assert_eq!(scratch_y.shape(), (x.rows(), n), "resblock scratch_y shape");
        assert_eq!(out.shape(), (x.rows(), n), "resblock output shape");
        self.lin1.forward_into(store, x, scratch_h);
        self.lin2.forward_into(store, scratch_h, scratch_y);
        let act = self.out_activation;
        match &self.proj {
            Some(p) => {
                // `out` holds the projected skip; fold `h + skip` in place
                // (same operand order as `tape.add(h, skip)`).
                p.forward_into(store, x, out);
                crate::kernels::zip_inplace(
                    scratch_y.as_slice(),
                    out.as_mut_slice(),
                    move |h, skip| act.eval(h + skip),
                );
            }
            None => {
                assert_eq!(x.cols(), n, "identity skip dim mismatch");
                crate::kernels::zip_into(
                    scratch_y.as_slice(),
                    x.as_slice(),
                    out.as_mut_slice(),
                    move |h, skip| act.eval(h + skip),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, "l", 4, 3, Activation::Relu, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(5, 4));
        let y = lin.forward(&mut tape, &store, x);
        assert_eq!(tape.shape(y), (5, 3));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn mlp_depth_and_dims() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&mut store, "m", 6, 16, 2, 4, Activation::Identity, &mut rng);
        assert_eq!(mlp.depth(), 4);
        assert_eq!(mlp.in_dim(), 6);
        assert_eq!(mlp.out_dim(), 2);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(3, 6));
        let y = mlp.forward(&mut tape, &store, x);
        assert_eq!(tape.shape(y), (3, 2));
    }

    #[test]
    fn resblock_identity_skip_when_dims_match() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let block = ResBlock::new(&mut store, "r", 4, 8, 4, Activation::Identity, &mut rng);
        // 2 linears × (w, b) = 4 params, no projection
        assert_eq!(store.len(), 4);
        assert_eq!(block.in_dim(), 4);
        assert_eq!(block.out_dim(), 4);
    }

    #[test]
    fn resblock_projects_when_dims_differ() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let block = ResBlock::new(&mut store, "r", 4, 8, 6, Activation::Relu, &mut rng);
        assert_eq!(store.len(), 6); // + projection (w, b)
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(2, 4));
        let y = block.forward(&mut tape, &store, x);
        assert_eq!(tape.shape(y), (2, 6));
    }

    #[test]
    fn mlp_learns_xor() {
        // End-to-end sanity check that layers + tape + Adam train.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = Mlp::new(&mut store, "xor", 2, 12, 1, 3, Activation::Identity, &mut rng);
        let mut opt = Adam::new(0.02);
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Arc::new(Matrix::col_vector(&[0.0, 1.0, 1.0, 0.0]));
        let w = Arc::new(Matrix::full(4, 1, 1.0));
        let mut last = f32::INFINITY;
        for _ in 0..400 {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let logits = mlp.forward(&mut tape, &store, xv);
            let loss = tape.bce_with_logits(logits, Arc::clone(&y), Arc::clone(&w));
            last = tape.value(loss).item();
            tape.backward(loss);
            store.absorb_grads(&mut tape);
            opt.step(&mut store);
            store.zero_grad();
        }
        assert!(last < 0.1, "xor failed to train: loss = {last}");
    }

    #[test]
    #[should_panic(expected = "linear input dim mismatch")]
    fn linear_rejects_wrong_input_dim() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, "l", 4, 3, Activation::Identity, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(5, 7));
        lin.forward(&mut tape, &store, x);
    }
}
