//! Compressed sparse row (CSR) matrices for graph aggregation.
//!
//! The LHNN message-passing operators (`B⁻¹Hᵀ`, `D⁻¹H`, `P⁻¹A` from the
//! paper) are all sparse row-stochastic (or sum) aggregation matrices
//! applied on the left of a dense feature block. [`CsrMatrix`] stores them
//! and [`CsrMatrix::spmm`] performs `Y = S · X`.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::error::{NeuroError, Result};
use crate::kernels;
use crate::matrix::Matrix;

/// A sparse matrix in CSR format.
///
/// # Examples
///
/// ```
/// use neurograd::{CsrMatrix, Matrix};
///
/// // 2x3 sparse: [[1, 0, 2], [0, 3, 0]]
/// let s = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
/// let x = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
/// let y = s.spmm(&x);
/// assert_eq!(y.as_slice(), &[3.0, 3.0]);
/// ```
#[derive(Clone)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointers, length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices, length `nnz`.
    indices: Vec<usize>,
    /// Values, length `nnz`.
    values: Vec<f32>,
    /// Lazily computed explicit transpose, shared by clones.
    ///
    /// Backward passes apply `Sᵀ` once per training step; caching the
    /// transpose turns that from an O(nnz log nnz) rebuild per step into a
    /// one-time cost per operator. Not part of equality, fingerprints or
    /// the serialised form.
    transpose_cache: OnceLock<Arc<CsrMatrix>>,
    /// Lazily computed content digest (see
    /// [`CsrMatrix::content_fingerprint`]), shared by clones. A `CsrMatrix`
    /// is immutable after construction, so the digest can never go stale;
    /// like the transpose cache it is invisible to equality.
    fingerprint_cache: OnceLock<u64>,
}

impl PartialEq for CsrMatrix {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality only — a warmed transpose cache is invisible.
        self.rows == other.rows
            && self.cols == other.cols
            && self.indptr == other.indptr
            && self.indices == other.indices
            && self.values == other.values
    }
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate `(row, col)` entries are summed. Triplets need not be
    /// sorted.
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds for {rows}x{cols}");
        }
        let mut sorted: Vec<(usize, usize, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values: Vec<f32> = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            if let (Some(&last_c), true) = (indices.last(), indptr[r + 1] > 0) {
                // Merge duplicate within the same (already-started) row.
                if last_c == c
                    && indptr[r + 1] == indices.len()
                    && row_started(&indptr, r, indices.len())
                {
                    *values.last_mut().expect("values non-empty when indices non-empty") += v;
                    continue;
                }
            }
            indices.push(c);
            values.push(v);
            indptr[r + 1] = indices.len();
        }
        // Fill gaps: rows with no entries keep previous pointer.
        for r in 0..rows {
            if indptr[r + 1] < indptr[r] {
                indptr[r + 1] = indptr[r];
            }
            indptr[r + 1] = indptr[r + 1].max(indptr[r]);
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
            transpose_cache: OnceLock::new(),
            fingerprint_cache: OnceLock::new(),
        }
    }

    /// Builds a CSR matrix directly from raw CSR arrays.
    ///
    /// # Errors
    ///
    /// Returns an error if array lengths are inconsistent, `indptr` is not
    /// monotone, or a column index is out of bounds.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if indptr.len() != rows + 1 || indices.len() != values.len() {
            return Err(NeuroError::InvalidConfig(format!(
                "inconsistent csr arrays: indptr {} (want {}), indices {}, values {}",
                indptr.len(),
                rows + 1,
                indices.len(),
                values.len()
            )));
        }
        if *indptr.first().unwrap_or(&0) != 0 || *indptr.last().unwrap_or(&0) != indices.len() {
            return Err(NeuroError::InvalidConfig("csr indptr endpoints invalid".into()));
        }
        if indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(NeuroError::InvalidConfig("csr indptr not monotone".into()));
        }
        if indices.iter().any(|&c| c >= cols) {
            return Err(NeuroError::InvalidConfig("csr column index out of bounds".into()));
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
            transpose_cache: OnceLock::new(),
            fingerprint_cache: OnceLock::new(),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Block-diagonal stack of the given matrices: block `i` occupies the
    /// row range `Σ_{j<i} rows_j ..` and column range `Σ_{j<i} cols_j ..`,
    /// with each block's entries kept in their original per-row order.
    ///
    /// Row `r` of block `i` therefore sees *exactly* the entries of that
    /// block's row `r` (at shifted column indices, in the same order), so
    /// the row-partitioned spmm kernels produce per-block output rows
    /// bitwise identical to running each block alone — the foundation of
    /// the serving engine's cross-design batched forwards.
    pub fn block_diag(blocks: &[&CsrMatrix]) -> Self {
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0usize);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        let mut col_off = 0;
        let mut nnz_off = 0;
        for b in blocks {
            for r in 0..b.rows {
                indptr.push(nnz_off + b.indptr[r + 1]);
            }
            indices.extend(b.indices.iter().map(|&c| c + col_off));
            values.extend_from_slice(&b.values);
            col_off += b.cols;
            nnz_off += b.nnz();
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
            transpose_cache: OnceLock::new(),
            fingerprint_cache: OnceLock::new(),
        }
    }

    /// Iterator over `(row, col, value)` of stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            self.indices[self.indptr[r]..self.indptr[r + 1]]
                .iter()
                .zip(&self.values[self.indptr[r]..self.indptr[r + 1]])
                .map(move |(&c, &v)| (r, c, v))
        })
    }

    /// The `(column, value)` pairs of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    /// Raw `(column indices, values)` slices of row `r`, in stored
    /// order — the zero-overhead form of [`Self::row_entries`] for the
    /// SIMD row kernels.
    pub fn row_slices(&self, r: usize) -> (&[usize], &[f32]) {
        let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// `(column, value)` pairs of row `r`, in stored order.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        self.indices[self.indptr[r]..self.indptr[r + 1]]
            .iter()
            .zip(&self.values[self.indptr[r]..self.indptr[r + 1]])
            .map(|(&c, &v)| (c, v))
    }

    /// Number of stored entries in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Sparse × dense product `Y = self · X`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != x.rows`.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            x.rows(),
            "spmm shape mismatch: {}x{} * {}x{}",
            self.rows,
            self.cols,
            x.rows(),
            x.cols()
        );
        let mut out = Matrix::zeros(self.rows, x.cols());
        kernels::spmm_into(self, x, out.as_mut_slice());
        out
    }

    /// Transposed sparse × dense product `Y = selfᵀ · X`.
    ///
    /// Computed as `spmm` of the cached explicit transpose (see
    /// [`CsrMatrix::transpose_cached`]): row-partitionable over the output
    /// and bitwise identical to the scatter formulation, because CSR
    /// entries are sorted so each output row accumulates its contributions
    /// in the same (ascending source row) order either way.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != x.rows`.
    pub fn spmm_t(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            self.rows,
            x.rows(),
            "spmm_t shape mismatch: ({}x{})^T * {}x{}",
            self.rows,
            self.cols,
            x.rows(),
            x.cols()
        );
        self.transpose_cached().spmm(x)
    }

    /// Returns the explicit transpose in CSR form (always rebuilt; use
    /// [`CsrMatrix::transpose_cached`] on hot paths).
    pub fn transpose(&self) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f32)> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// The explicit transpose, computed once per matrix and shared by
    /// clones. Backward passes (`spmm_t` per step) hit the cache after the
    /// first call; [`crate::Tape`] and `GraphOps` rely on this so repeated
    /// training/serving steps stop rebuilding the transpose.
    pub fn transpose_cached(&self) -> &Arc<CsrMatrix> {
        self.transpose_cache.get_or_init(|| Arc::new(self.transpose()))
    }

    /// Whether the transpose cache has been populated (diagnostics).
    pub fn transpose_cache_warm(&self) -> bool {
        self.transpose_cache.get().is_some()
    }

    /// Row-normalises: each non-empty row is scaled to sum to 1.
    ///
    /// This converts an incidence/adjacency matrix into the mean-aggregation
    /// operator the paper writes as `D⁻¹H`, `B⁻¹Hᵀ` or `P⁻¹A`.
    pub fn row_normalized(&self) -> CsrMatrix {
        let mut out = self.clone();
        // the values are about to change: drop the inherited caches
        out.transpose_cache = OnceLock::new();
        out.fingerprint_cache = OnceLock::new();
        for r in 0..out.rows {
            let lo = out.indptr[r];
            let hi = out.indptr[r + 1];
            let s: f32 = out.values[lo..hi].iter().sum();
            if s != 0.0 {
                for v in &mut out.values[lo..hi] {
                    *v /= s;
                }
            }
        }
        out
    }

    /// Per-row sums (the degree vector for a 0/1 matrix).
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|r| self.values[self.indptr[r]..self.indptr[r + 1]].iter().sum())
            .collect()
    }

    /// Per-column sums (the degree vector of the transpose).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for (_, c, v) in self.iter() {
            sums[c] += v;
        }
        sums
    }

    /// Densifies into a [`Matrix`] (test helper; avoid on large inputs).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            m[(r, c)] += v;
        }
        m
    }

    /// Keeps only the entries in rows listed in `keep` (a boolean mask per
    /// row), dropping all entries of the other rows. Shape is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != rows`.
    pub fn mask_rows(&self, keep: &[bool]) -> CsrMatrix {
        assert_eq!(keep.len(), self.rows, "mask_rows length mismatch");
        let triplets: Vec<(usize, usize, f32)> = self.iter().filter(|&(r, _, _)| keep[r]).collect();
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }

    /// Keeps only the entries whose column is listed in `keep` (a boolean
    /// mask per column), dropping the rest. Shape is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != cols`.
    pub fn mask_cols(&self, keep: &[bool]) -> CsrMatrix {
        assert_eq!(keep.len(), self.cols, "mask_cols length mismatch");
        let triplets: Vec<(usize, usize, f32)> = self.iter().filter(|&(_, c, _)| keep[c]).collect();
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }

    /// An empty (all-zero) sparse matrix of the given shape.
    pub fn empty(rows: usize, cols: usize) -> CsrMatrix {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
            transpose_cache: OnceLock::new(),
            fingerprint_cache: OnceLock::new(),
        }
    }

    /// Returns a copy with the listed rows' entries replaced, keeping
    /// every other row byte-for-byte identical.
    ///
    /// `replacements` must be sorted by row index without duplicates, and
    /// each replacement's entries must be sorted by column — the same
    /// ordering [`CsrMatrix::from_triplets`] produces — so the result is
    /// indistinguishable from a from-scratch build with the same content.
    /// Unlike `from_triplets` this is a straight O(nnz) copy with no sort:
    /// the structural primitive behind incremental graph updates.
    ///
    /// # Panics
    ///
    /// Panics if `replacements` is unsorted/duplicated, a row or column
    /// index is out of bounds, or a replacement row's columns are unsorted.
    pub fn with_rows_replaced(&self, replacements: &[(usize, Vec<(usize, f32)>)]) -> CsrMatrix {
        for pair in replacements.windows(2) {
            assert!(pair[0].0 < pair[1].0, "replacement rows must be sorted and unique");
        }
        let extra: isize = replacements
            .iter()
            .map(|(r, es)| {
                assert!(*r < self.rows, "replacement row {r} out of bounds for {} rows", self.rows);
                es.len() as isize - self.row_nnz(*r) as isize
            })
            .sum();
        let nnz = (self.nnz() as isize + extra) as usize;
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0);
        let mut next = replacements.iter().peekable();
        for r in 0..self.rows {
            match next.peek() {
                Some((row, entries)) if *row == r => {
                    let mut prev: Option<usize> = None;
                    for &(c, v) in entries {
                        assert!(c < self.cols, "replacement column {c} out of bounds");
                        assert!(
                            prev.map_or(true, |p| p < c),
                            "replacement row {r} columns unsorted"
                        );
                        prev = Some(c);
                        indices.push(c);
                        values.push(v);
                    }
                    next.next();
                }
                _ => {
                    let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
                    indices.extend_from_slice(&self.indices[lo..hi]);
                    values.extend_from_slice(&self.values[lo..hi]);
                }
            }
            indptr.push(indices.len());
        }
        assert!(next.peek().is_none(), "replacement row beyond matrix");
        let out = CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            values,
            transpose_cache: OnceLock::new(),
            fingerprint_cache: OnceLock::new(),
        };
        // The digest is a wrapping sum of per-row hashes: with the source
        // digest already memoised, the patched digest follows in
        // O(replaced rows) — swap the shape term and the dirty rows'
        // contributions. Bit-identical to a cold computation on `out`.
        if let Some(&old) = self.fingerprint_cache.get() {
            let mut fp = old
                .wrapping_sub(Self::shape_hash(self.rows, self.cols, self.nnz()))
                .wrapping_add(Self::shape_hash(out.rows, out.cols, out.nnz()));
            for &(r, _) in replacements {
                fp = fp.wrapping_sub(self.row_hash(r)).wrapping_add(out.row_hash(r));
            }
            let _ = out.fingerprint_cache.set(fp);
        }
        out
    }

    /// Returns a copy with the column space widened to `cols`, every
    /// stored entry unchanged. The new columns are implicit zeros, so this
    /// is the O(nnz)-copy primitive behind append-only column growth
    /// (stable G-net column ids): the data does not move, only the shape
    /// changes.
    ///
    /// # Panics
    ///
    /// Panics if `cols < self.cols`.
    pub fn with_cols(&self, cols: usize) -> CsrMatrix {
        assert!(cols >= self.cols, "with_cols cannot shrink ({} -> {cols})", self.cols);
        let out = CsrMatrix {
            rows: self.rows,
            cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values: self.values.clone(),
            transpose_cache: OnceLock::new(),
            fingerprint_cache: OnceLock::new(),
        };
        // Row hashes do not involve the column count, so a warm digest
        // carries over with only the shape term swapped.
        if let Some(&old) = self.fingerprint_cache.get() {
            let fp = old
                .wrapping_sub(Self::shape_hash(self.rows, self.cols, self.nnz()))
                .wrapping_add(Self::shape_hash(out.rows, out.cols, out.nnz()));
            let _ = out.fingerprint_cache.set(fp);
        }
        out
    }

    /// Returns a copy with `extra` empty rows appended at the bottom
    /// (existing rows byte-for-byte identical). Pairs with
    /// [`CsrMatrix::with_cols`]: growing `H` by a column grows `Hᵀ`-shaped
    /// operators by a row.
    pub fn with_rows_appended(&self, extra: usize) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(self.rows + extra + 1);
        indptr.extend_from_slice(&self.indptr);
        indptr.resize(self.rows + extra + 1, self.nnz());
        let out = CsrMatrix {
            rows: self.rows + extra,
            cols: self.cols,
            indptr,
            indices: self.indices.clone(),
            values: self.values.clone(),
            transpose_cache: OnceLock::new(),
            fingerprint_cache: OnceLock::new(),
        };
        if let Some(&old) = self.fingerprint_cache.get() {
            let mut fp = old
                .wrapping_sub(Self::shape_hash(self.rows, self.cols, self.nnz()))
                .wrapping_add(Self::shape_hash(out.rows, out.cols, out.nnz()));
            for r in self.rows..out.rows {
                fp = fp.wrapping_add(out.row_hash(r));
            }
            let _ = out.fingerprint_cache.set(fp);
        }
        out
    }

    /// The digest contribution of one row: a word-wise [`crate::Fnv64`]
    /// over the row index, its entry count and its `(column,
    /// canonical-value-bits)` pairs (`-0.0` folds onto `+0.0`, NaNs
    /// collapse — see [`crate::fingerprint::canonical_f32_bits`]), so the
    /// digest coincides with observable equality exactly as the streaming
    /// fingerprint does.
    fn row_hash(&self, r: usize) -> u64 {
        let mut h = crate::Fnv64::new();
        h.write_usize(r);
        let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
        h.write_usize(hi - lo);
        for i in lo..hi {
            h.write_usize(self.indices[i]);
            h.write_f32(self.values[i]);
        }
        h.finish()
    }

    /// The shape/size contribution of the content digest.
    fn shape_hash(rows: usize, cols: usize, nnz: usize) -> u64 {
        let mut h = crate::Fnv64::new();
        h.write_usize(rows);
        h.write_usize(cols);
        h.write_usize(nnz);
        h.finish()
    }

    /// A cached content digest: equal iff shape, sparsity pattern and every
    /// value's bit pattern are equal (collisions are possible in principle,
    /// as for any 64-bit hash).
    ///
    /// Defined as a *wrapping sum* of independent per-row hashes (plus a
    /// shape hash), which buys two properties a streaming hash cannot
    /// offer: the digest is memoised per matrix (the matrix is immutable,
    /// so repeated fingerprinting — a serving cache keying every request on
    /// its operators — is O(1) after the first call), and
    /// [`CsrMatrix::with_rows_replaced`] derives the patched matrix's
    /// digest from the source's in O(replaced rows) instead of re-hashing
    /// every entry.
    pub fn content_fingerprint(&self) -> u64 {
        *self.fingerprint_cache.get_or_init(|| {
            let mut fp = Self::shape_hash(self.rows, self.cols, self.nnz());
            for r in 0..self.rows {
                fp = fp.wrapping_add(self.row_hash(r));
            }
            fp
        })
    }

    /// Whether the content digest has been computed (diagnostics).
    pub fn fingerprint_cache_warm(&self) -> bool {
        self.fingerprint_cache.get().is_some()
    }
}

fn row_started(indptr: &[usize], r: usize, current_len: usize) -> bool {
    // A row r is "in progress" if its end pointer has been advanced to the
    // current number of indices.
    indptr[r + 1] == current_len
}

impl fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CsrMatrix({}x{}, nnz={})", self.rows, self.cols, self.nnz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        // [[1, 0, 2], [0, 3, 0], [0, 0, 0]]
        CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
    }

    #[test]
    fn triplets_roundtrip_dense() {
        let s = example();
        let d = s.to_dense();
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(0, 2)], 2.0);
        assert_eq!(d[(1, 1)], 3.0);
        assert_eq!(d[(2, 2)], 0.0);
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let s = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.to_dense()[(0, 0)], 3.5);
    }

    #[test]
    fn unsorted_triplets_are_sorted() {
        let s =
            CsrMatrix::from_triplets(2, 2, &[(1, 1, 4.0), (0, 1, 2.0), (1, 0, 3.0), (0, 0, 1.0)]);
        let d = s.to_dense();
        assert_eq!((d[(0, 0)], d[(0, 1)], d[(1, 0)], d[(1, 1)]), (1.0, 2.0, 3.0, 4.0));
    }

    #[test]
    fn block_diag_stacks_rows_cols_and_entries() {
        let a = example();
        let b = CsrMatrix::from_triplets(2, 4, &[(0, 3, 5.0), (1, 0, 6.0)]);
        let d = CsrMatrix::block_diag(&[&a, &b]);
        assert_eq!(d.shape(), (5, 7));
        assert_eq!(d.nnz(), a.nnz() + b.nnz());
        // Block rows see the original entries at shifted columns, same order.
        for r in 0..3 {
            let want: Vec<(usize, f32)> = a.row_entries(r).collect();
            let got: Vec<(usize, f32)> = d.row_entries(r).collect();
            assert_eq!(want, got);
        }
        for r in 0..2 {
            let want: Vec<(usize, f32)> = b.row_entries(r).map(|(c, v)| (c + 3, v)).collect();
            let got: Vec<(usize, f32)> = d.row_entries(3 + r).collect();
            assert_eq!(want, got);
        }
        // A block with an all-empty matrix stays well-formed.
        let empty = CsrMatrix::empty(2, 2);
        let e = CsrMatrix::block_diag(&[&empty, &a]);
        assert_eq!(e.shape(), (5, 5));
        assert_eq!(e.row_entries(0).count(), 0);
        assert_eq!(e.row_entries(2).map(|(c, _)| c).collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn spmm_matches_dense() {
        let s = example();
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = s.spmm(&x);
        let yd = s.to_dense().matmul(&x);
        assert!(y.approx_eq(&yd, 1e-6));
    }

    #[test]
    fn spmm_t_matches_dense_transpose() {
        let s = example();
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = s.spmm_t(&x);
        let yd = s.to_dense().transpose().matmul(&x);
        assert!(y.approx_eq(&yd, 1e-6));
    }

    #[test]
    fn transpose_matches_dense() {
        let s = example();
        assert!(s.transpose().to_dense().approx_eq(&s.to_dense().transpose(), 0.0));
    }

    #[test]
    fn row_normalized_rows_sum_to_one_or_zero() {
        let s = example().row_normalized();
        let sums = s.row_sums();
        assert!((sums[0] - 1.0).abs() < 1e-6);
        assert!((sums[1] - 1.0).abs() < 1e-6);
        assert_eq!(sums[2], 0.0);
    }

    #[test]
    fn degree_vectors() {
        let s = example();
        assert_eq!(s.row_sums(), vec![3.0, 3.0, 0.0]);
        assert_eq!(s.col_sums(), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn mask_rows_drops_entries_but_keeps_shape() {
        let s = example().mask_rows(&[false, true, true]);
        assert_eq!(s.shape(), (3, 3));
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.to_dense()[(1, 1)], 3.0);
    }

    #[test]
    fn mask_cols_drops_entries_but_keeps_shape() {
        let s = example().mask_cols(&[true, false, false]);
        assert_eq!(s.shape(), (3, 3));
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.to_dense()[(0, 0)], 1.0);
    }

    #[test]
    fn from_raw_validates() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
        // wrong indptr length
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]).is_err());
        // non-monotone indptr
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // col out of bounds
        assert!(CsrMatrix::from_raw(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
    }

    #[test]
    fn empty_matrix_spmm_is_zero() {
        let s = CsrMatrix::empty(2, 3);
        let x = Matrix::full(3, 2, 5.0);
        let y = s.spmm(&x);
        assert_eq!(y.sum(), 0.0);
    }

    #[test]
    fn iter_yields_all_entries_in_row_order() {
        let s = example();
        let items: Vec<_> = s.iter().collect();
        assert_eq!(items, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
    }

    #[test]
    fn same_column_across_row_boundary_is_not_merged() {
        // (0,2) and (1,2) share a column and sort adjacently; the merge
        // pass must still treat them as distinct entries.
        let s = CsrMatrix::from_triplets(2, 3, &[(0, 2, 1.0), (1, 2, 2.0)]);
        assert_eq!(s.nnz(), 2);
        let d = s.to_dense();
        assert_eq!(d[(0, 2)], 1.0);
        assert_eq!(d[(1, 2)], 2.0);
    }

    #[test]
    fn multiple_duplicate_groups_merge_independently() {
        let s = CsrMatrix::from_triplets(
            3,
            3,
            &[(2, 0, 5.0), (0, 1, 1.0), (0, 1, 2.0), (0, 1, 4.0), (2, 0, -1.0), (1, 2, 0.5)],
        );
        assert_eq!(s.nnz(), 3);
        let d = s.to_dense();
        assert_eq!(d[(0, 1)], 7.0);
        assert_eq!(d[(1, 2)], 0.5);
        assert_eq!(d[(2, 0)], 4.0);
    }

    #[test]
    fn duplicates_around_empty_rows_keep_indptr_consistent() {
        // Row 1 is empty; duplicates sit in the first and last rows.
        let s =
            CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (0, 0, 1.0), (2, 1, 3.0), (2, 1, -3.0)]);
        assert_eq!(s.nnz(), 2);
        let d = s.to_dense();
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(2, 1)], 0.0); // merged to an explicit zero entry
                                    // spmm still works on the merged structure.
        let y = s.spmm(&Matrix::from_rows(&[&[1.0], &[1.0]]));
        assert_eq!(y[(0, 0)], 2.0);
        assert_eq!(y[(1, 0)], 0.0);
        assert_eq!(y[(2, 0)], 0.0);
    }

    #[test]
    fn spmm_t_matches_scatter_reference_bitwise() {
        let s = CsrMatrix::from_triplets(
            4,
            3,
            &[(0, 0, 0.3), (0, 2, -1.1), (1, 1, 2.0), (2, 0, 0.7), (2, 1, 0.2), (3, 2, 5.0)],
        );
        let x = Matrix::from_rows(&[&[1.0, 0.5], &[-2.0, 3.0], &[0.25, 0.75], &[4.0, -4.0]]);
        let scatter = crate::kernels::reference::spmm_t_scatter(&s, &x);
        // cold cache, warm cache and the scatter formulation all agree
        // bitwise (tolerance 0.0)
        assert!(!s.transpose_cache_warm());
        let cold = s.spmm_t(&x);
        assert!(s.transpose_cache_warm(), "spmm_t must warm the transpose cache");
        let warm = s.spmm_t(&x);
        assert!(cold.approx_eq(&scatter, 0.0));
        assert!(warm.approx_eq(&scatter, 0.0));
    }

    #[test]
    fn transpose_cache_is_shared_by_clones_and_equality_ignores_it() {
        let a = example();
        let b = a.clone();
        let _ = a.transpose_cached();
        assert!(a.transpose_cache_warm());
        assert!(!b.transpose_cache_warm(), "clone made before warming stays cold");
        let c = a.clone();
        assert!(c.transpose_cache_warm(), "clone made after warming shares the cache");
        assert_eq!(a, b, "cache state must not affect equality");
    }

    #[test]
    fn row_normalized_drops_stale_transpose_cache() {
        let s = example();
        let _ = s.transpose_cached();
        let n = s.row_normalized();
        assert!(!n.transpose_cache_warm(), "normalised copy must not inherit a stale cache");
        assert!(n.spmm_t(&Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]])).approx_eq(
            &n.transpose().to_dense().matmul(&Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]])),
            1e-6
        ));
    }

    #[test]
    fn with_rows_replaced_matches_from_scratch_build() {
        let s = example();
        // replace row 0 with new entries, empty row 2 with one entry
        let patched = s.with_rows_replaced(&[(0, vec![(1, 5.0)]), (2, vec![(0, 7.0), (2, 8.0)])]);
        let rebuilt =
            CsrMatrix::from_triplets(3, 3, &[(0, 1, 5.0), (1, 1, 3.0), (2, 0, 7.0), (2, 2, 8.0)]);
        assert_eq!(patched, rebuilt, "patched CSR must equal a from-scratch build");
        assert_eq!(patched.content_fingerprint(), rebuilt.content_fingerprint());
    }

    #[test]
    fn patched_fingerprint_is_preseeded_from_warm_source_and_stays_exact() {
        let s = example();
        let _ = s.content_fingerprint(); // warm the source digest
        let patched = s.with_rows_replaced(&[(1, vec![(0, -2.0), (2, 4.0)])]);
        assert!(
            patched.fingerprint_cache_warm(),
            "patching a warm source must pre-seed the digest in O(dirty)"
        );
        let rebuilt =
            CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 0, -2.0), (1, 2, 4.0)]);
        assert_eq!(
            patched.content_fingerprint(),
            rebuilt.content_fingerprint(),
            "pre-seeded digest must be bit-identical to a cold computation"
        );
        // cold source → no pre-seed, digest still agrees when computed
        let cold = example().with_rows_replaced(&[(1, vec![(0, -2.0), (2, 4.0)])]);
        assert!(!cold.fingerprint_cache_warm());
        assert_eq!(cold.content_fingerprint(), rebuilt.content_fingerprint());
    }

    #[test]
    fn with_rows_replaced_can_empty_and_noop_rows() {
        let s = example();
        let patched = s.with_rows_replaced(&[(0, vec![])]);
        assert_eq!(patched.nnz(), 1);
        assert_eq!(patched.row_nnz(0), 0);
        let noop = s.with_rows_replaced(&[]);
        assert_eq!(noop, s);
    }

    #[test]
    fn with_cols_widens_without_moving_data() {
        let s = example(); // 3x3
        let fp_seed = s.content_fingerprint();
        let wide = s.with_cols(5);
        assert_eq!(wide.shape(), (3, 5));
        assert_eq!(wide.nnz(), s.nnz());
        assert!(wide.fingerprint_cache_warm(), "warm source must pre-seed the digest");
        let rebuilt = CsrMatrix::from_triplets(3, 5, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        assert_eq!(wide, rebuilt);
        assert_eq!(wide.content_fingerprint(), rebuilt.content_fingerprint());
        assert_ne!(wide.content_fingerprint(), fp_seed, "shape participates in the digest");
        // cold source → cold result, still agrees when computed
        let cold = example().with_cols(5);
        assert!(!cold.fingerprint_cache_warm());
        assert_eq!(cold.content_fingerprint(), rebuilt.content_fingerprint());
        // same width is a plain copy
        assert_eq!(s.with_cols(3), s);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn with_cols_rejects_shrinking() {
        example().with_cols(2);
    }

    #[test]
    fn with_rows_appended_adds_empty_rows() {
        let s = example(); // 3x3
        let _ = s.content_fingerprint();
        let tall = s.with_rows_appended(2);
        assert_eq!(tall.shape(), (5, 3));
        assert_eq!(tall.nnz(), s.nnz());
        assert_eq!(tall.row_nnz(3), 0);
        assert_eq!(tall.row_nnz(4), 0);
        assert!(tall.fingerprint_cache_warm());
        let rebuilt = CsrMatrix::from_triplets(5, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        assert_eq!(tall, rebuilt);
        assert_eq!(tall.content_fingerprint(), rebuilt.content_fingerprint());
        let cold = example().with_rows_appended(2);
        assert!(!cold.fingerprint_cache_warm());
        assert_eq!(cold.content_fingerprint(), rebuilt.content_fingerprint());
        assert_eq!(s.with_rows_appended(0), s);
    }

    #[test]
    fn grown_matrices_compose_with_row_replacement() {
        let s = example();
        let _ = s.content_fingerprint();
        // widen, then fill one of the new columns: digest must match a
        // from-scratch build of the same content (the incremental append
        // path in lh-graph does exactly this composition)
        let patched = s.with_cols(4).with_rows_replaced(&[(2, vec![(3, 9.0)])]);
        let rebuilt =
            CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 3, 9.0)]);
        // `example()` is 3x3 — append a row first so shapes line up
        let patched = patched.with_rows_appended(1);
        assert_eq!(patched, rebuilt);
        assert_eq!(patched.content_fingerprint(), rebuilt.content_fingerprint());
    }

    #[test]
    #[should_panic(expected = "columns unsorted")]
    fn with_rows_replaced_rejects_unsorted_columns() {
        example().with_rows_replaced(&[(0, vec![(2, 1.0), (0, 1.0)])]);
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn with_rows_replaced_rejects_duplicate_rows() {
        example().with_rows_replaced(&[(0, vec![]), (0, vec![])]);
    }

    #[test]
    fn content_fingerprint_is_cached_and_content_sensitive() {
        let a = example();
        assert!(!a.fingerprint_cache_warm());
        let fp = a.content_fingerprint();
        assert!(a.fingerprint_cache_warm());
        assert_eq!(fp, a.content_fingerprint());
        // clones made after warming share the digest; equal content agrees
        let b = a.clone();
        assert!(b.fingerprint_cache_warm());
        assert_eq!(b.content_fingerprint(), fp);
        let same = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        assert_eq!(same.content_fingerprint(), fp);
        // any content change disagrees
        let moved = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        assert_ne!(moved.content_fingerprint(), fp);
        let rescaled = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.5), (0, 2, 2.0), (1, 1, 3.0)]);
        assert_ne!(rescaled.content_fingerprint(), fp);
    }

    #[test]
    fn row_normalized_drops_stale_fingerprint_cache() {
        let s = example();
        let fp = s.content_fingerprint();
        let n = s.row_normalized();
        assert!(!n.fingerprint_cache_warm(), "normalised copy must not inherit the digest");
        assert_ne!(n.content_fingerprint(), fp);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_triplets_rejects_out_of_bounds() {
        CsrMatrix::from_triplets(2, 2, &[(0, 2, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "spmm shape mismatch")]
    fn spmm_rejects_mismatched_operand() {
        example().spmm(&Matrix::zeros(2, 2));
    }
}
