//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every operation of a forward pass as a node holding
//! its value and enough information to propagate gradients. Calling
//! [`Tape::backward`] on a scalar loss walks the tape in reverse and fills
//! in gradients; [`Tape::take_param_grads`] then hands gradients of
//! parameter leaves into a [`ParamStore`](crate::optim::ParamStore) for an
//! optimiser step.
//!
//! One tape corresponds to one forward pass; build a fresh tape per
//! training step. Parameters live outside the tape so their state persists.
//!
//! # Examples
//!
//! ```
//! use neurograd::{Matrix, Tape};
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf_grad(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let y = tape.relu(x);
//! let loss = tape.sum_all(y);
//! tape.backward(loss);
//! assert_eq!(tape.grad(x).unwrap().as_slice(), &[1.0, 1.0]);
//! ```

use std::sync::Arc;

use crate::conv::{self, Conv2dCfg};
use crate::kernels;
use crate::matrix::Matrix;
use crate::sparse::CsrMatrix;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Identifier of a persistent parameter in a
/// [`ParamStore`](crate::optim::ParamStore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of this parameter.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The recorded operation that produced a node.
#[derive(Debug)]
pub(crate) enum Op {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    MatMul(usize, usize),
    AddBias(usize, usize),
    Scale(usize, f32),
    AddScalar(usize, #[allow(dead_code)] f32),
    Relu(usize),
    LeakyRelu(usize, f32),
    Sigmoid(usize),
    Tanh(usize),
    ConcatCols(usize, usize),
    ConcatRows(usize, usize),
    Transpose(usize),
    SliceCols(usize, usize, usize),
    GatherRows(usize, Arc<Vec<usize>>),
    Spmm(Arc<CsrMatrix>, usize),
    SpmmT(Arc<CsrMatrix>, usize),
    SumAll(usize),
    MeanAll(usize),
    MseLoss { pred: usize, target: Arc<Matrix> },
    BceWithLogits { logits: usize, targets: Arc<Matrix>, weights: Arc<Matrix> },
    Conv2d { input: usize, weight: usize, bias: usize, cfg: Conv2dCfg, cols: Matrix },
    MaxPool2d { input: usize, argmax: Vec<usize>, in_cols: usize },
    UpsampleNearest2 { input: usize, h: usize, w: usize },
    InstanceNorm { input: usize, gamma: usize, beta: usize, xhat: Matrix, inv_std: Vec<f32> },
}

pub(crate) struct Node {
    pub(crate) value: Matrix,
    pub(crate) grad: Option<Matrix>,
    pub(crate) op: Op,
    pub(crate) requires_grad: bool,
    pub(crate) param: Option<ParamId>,
}

/// The autodiff tape recording one forward pass.
///
/// Node values and gradients are allocated from an internal buffer pool
/// that [`Tape::clear`] refills, so a long-lived tape reaches a
/// zero-allocation steady state: after one warm-up forward (+ backward),
/// every later pass reuses the previous pass's buffers.
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
    /// Recycled element buffers (values and gradients of cleared passes).
    free: Vec<Vec<f32>>,
}

/// Upper bound on recycled buffers kept across [`Tape::clear`] calls.
const FREE_LIST_CAP: usize = 4096;

/// Pops a recycled buffer (or allocates) sized to `len` elements.
///
/// **Contract: every consumer fully overwrites the buffer** — all kernels
/// write every row they own and the copy/zip/map builders write every
/// element — so a recycled same-size buffer is handed back as-is, with
/// stale contents, skipping the memset the old zeroing pass paid on every
/// steady-state op. Only the growth tail (when the recycled buffer is
/// shorter than `len`) and the cold fresh-allocation path are zeroed.
///
/// Free function rather than a method so op builders can hold `&self.nodes`
/// borrows alongside the `&mut free` borrow.
fn alloc_pooled(free: &mut Vec<Vec<f32>>, len: usize) -> Vec<f32> {
    match free.pop() {
        Some(mut buf) => {
            buf.truncate(len);
            buf.resize(len, 0.0);
            buf
        }
        None => vec![0.0; len],
    }
}

/// Pooled `rows × cols` matrix from a recycled buffer filled by `fill`
/// (which must write every element — see [`alloc_pooled`]).
fn pooled_with(
    free: &mut Vec<Vec<f32>>,
    rows: usize,
    cols: usize,
    fill: impl FnOnce(&mut [f32]),
) -> Matrix {
    let mut buf = alloc_pooled(free, rows * cols);
    fill(&mut buf);
    Matrix::from_vec(rows, cols, buf).expect("pooled buffer sized by construction")
}

/// Pooled copy of `g` (for ops whose backward is the identity).
fn pooled_copy(free: &mut Vec<Vec<f32>>, g: &Matrix) -> Matrix {
    pooled_with(free, g.rows(), g.cols(), |buf| buf.copy_from_slice(g.as_slice()))
}

/// Pooled elementwise-combined gradient `f(g, other)`.
fn pooled_zip(
    free: &mut Vec<Vec<f32>>,
    g: &Matrix,
    other: &Matrix,
    f: impl Fn(f32, f32) -> f32 + Sync,
) -> Matrix {
    pooled_with(free, g.rows(), g.cols(), |buf| {
        kernels::zip_into(g.as_slice(), other.as_slice(), buf, f);
    })
}

impl std::fmt::Debug for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tape({} nodes)", self.nodes.len())
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new(), free: Vec::new() }
    }

    /// Creates an empty tape with room for `nodes` recorded operations and
    /// their value/gradient buffers (two recycled buffers per node).
    pub fn with_capacity(nodes: usize) -> Self {
        Self { nodes: Vec::with_capacity(nodes), free: Vec::with_capacity(2 * nodes) }
    }

    /// Clears all recorded nodes while keeping the tape's allocations.
    ///
    /// This is the scratch-buffer entry point for inference servers and the
    /// data-parallel trainer: one long-lived tape per worker thread,
    /// cleared between forwards. The node vector keeps its capacity and
    /// every node's value/gradient buffer is recycled into the tape's
    /// buffer pool, so the next pass allocates (near) nothing. All
    /// previously returned [`Var`] handles are invalidated.
    pub fn clear(&mut self) {
        for node in self.nodes.drain(..) {
            self.free.push(node.value.into_vec());
            if let Some(grad) = node.grad {
                self.free.push(grad.into_vec());
            }
        }
        self.free.truncate(FREE_LIST_CAP);
    }

    /// Number of recycled buffers currently pooled (diagnostics).
    pub fn pooled_buffers(&self) -> usize {
        self.free.len()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The value of a node.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this tape.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The gradient of a node, if backward has produced one.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Shape of a node's value.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    pub(crate) fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node { value, grad: None, op, requires_grad, param: None });
        Var(self.nodes.len() - 1)
    }

    pub(crate) fn rg(&self, i: usize) -> bool {
        self.nodes[i].requires_grad
    }

    /// Inserts a constant leaf (no gradient will be computed for it).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Inserts a leaf that participates in gradient computation.
    pub fn leaf_grad(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Inserts a leaf mirroring parameter `id` with the given current value.
    ///
    /// Used by [`ParamStore::var`](crate::optim::ParamStore::var); after
    /// [`Tape::backward`], [`Tape::take_param_grads`] routes this
    /// leaf's gradient back to the store.
    pub fn param_leaf(&mut self, id: ParamId, value: Matrix) -> Var {
        let v = self.push(value, Op::Leaf, true);
        self.nodes[v.0].param = Some(id);
        v
    }

    // ---- elementwise & linear algebra ops ----
    //
    // Every op allocates its output from the tape's buffer pool and runs
    // through the `kernels` backend, so forwards parallelise across the
    // process pool and a cleared tape re-serves its own buffers.

    /// Builds a pooled `rows × cols` matrix by running `fill` on a
    /// recycled element buffer. `fill` must write every element (all
    /// kernels overwrite the rows they own — see [`alloc_pooled`]).
    fn pooled_value(
        &mut self,
        rows: usize,
        cols: usize,
        fill: impl FnOnce(&Self, &mut [f32]),
    ) -> Matrix {
        let mut buf = alloc_pooled(&mut self.free, rows * cols);
        fill(self, &mut buf);
        Matrix::from_vec(rows, cols, buf).expect("pooled buffer sized by construction")
    }

    /// Pooled elementwise binary op (shape-checked like `Matrix::zip_map`).
    fn zip_op(&mut self, a: Var, b: Var, op: Op, f: impl Fn(f32, f32) -> f32 + Sync) -> Var {
        assert_eq!(self.shape(a), self.shape(b), "zip_map shape mismatch");
        let (rows, cols) = self.shape(a);
        let value = self.pooled_value(rows, cols, |t, buf| {
            kernels::zip_into(t.value(a).as_slice(), t.value(b).as_slice(), buf, f);
        });
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(value, op, rg)
    }

    /// Pooled elementwise unary op.
    fn map_op(&mut self, x: Var, op: Op, f: impl Fn(f32) -> f32 + Sync) -> Var {
        let (rows, cols) = self.shape(x);
        let value = self.pooled_value(rows, cols, |t, buf| {
            kernels::map_into(t.value(x).as_slice(), buf, f);
        });
        let rg = self.rg(x.0);
        self.push(value, op, rg)
    }

    /// Elementwise sum `a + b`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.zip_op(a, b, Op::Add(a.0, b.0), |x, y| x + y)
    }

    /// Elementwise difference `a - b`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.zip_op(a, b, Op::Sub(a.0, b.0), |x, y| x - y)
    }

    /// Elementwise (Hadamard) product `a ⊙ b`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.zip_op(a, b, Op::Mul(a.0, b.0), |x, y| x * y)
    }

    /// Matrix product `a · b`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (rows, cols) = (self.shape(a).0, self.shape(b).1);
        let value = self.pooled_value(rows, cols, |t, buf| {
            kernels::matmul_into(t.value(a), t.value(b), buf);
        });
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(value, Op::MatMul(a.0, b.0), rg)
    }

    /// Adds a `1 × cols` bias row to every row of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × cols(x)`.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let (rows, cols) = self.shape(x);
        assert_eq!(self.shape(bias), (1, cols), "row broadcast shape mismatch");
        let value = self.pooled_value(rows, cols, |t, buf| {
            let bias_row = t.value(bias).as_slice();
            buf.copy_from_slice(t.value(x).as_slice());
            for row in buf.chunks_mut(cols.max(1)) {
                for (o, &b) in row.iter_mut().zip(bias_row) {
                    *o += b;
                }
            }
        });
        let rg = self.rg(x.0) || self.rg(bias.0);
        self.push(value, Op::AddBias(x.0, bias.0), rg)
    }

    /// Fully-connected layer `x · w + bias`.
    pub fn linear(&mut self, x: Var, w: Var, bias: Var) -> Var {
        let y = self.matmul(x, w);
        self.add_bias(y, bias)
    }

    /// Scalar multiple `x * s`.
    pub fn scale(&mut self, x: Var, s: f32) -> Var {
        self.map_op(x, Op::Scale(x.0, s), move |v| v * s)
    }

    /// Scalar offset `x + s` elementwise.
    pub fn add_scalar(&mut self, x: Var, s: f32) -> Var {
        self.map_op(x, Op::AddScalar(x.0, s), move |v| v + s)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        self.map_op(x, Op::Relu(x.0), |v| v.max(0.0))
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, x: Var, alpha: f32) -> Var {
        self.map_op(x, Op::LeakyRelu(x.0, alpha), move |v| if v >= 0.0 { v } else { alpha * v })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        self.map_op(x, Op::Sigmoid(x.0), stable_sigmoid)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        self.map_op(x, Op::Tanh(x.0), f32::tanh)
    }

    /// Column concatenation `[a | b]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (rows, ca) = self.shape(a);
        let cb = self.shape(b).1;
        assert_eq!(rows, self.shape(b).0, "concat_cols row mismatch");
        let value = self.pooled_value(rows, ca + cb, |t, buf| {
            let (va, vb) = (t.value(a), t.value(b));
            for (r, row) in buf.chunks_mut((ca + cb).max(1)).enumerate() {
                row[..ca].copy_from_slice(va.row(r));
                row[ca..].copy_from_slice(vb.row(r));
            }
        });
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(value, Op::ConcatCols(a.0, b.0), rg)
    }

    /// Row concatenation `[a ; b]` (channel concat in `(C, H·W)` layout).
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let (ra, cols) = self.shape(a);
        let rb = self.shape(b).0;
        assert_eq!(cols, self.shape(b).1, "concat_rows col mismatch");
        let value = self.pooled_value(ra + rb, cols, |t, buf| {
            buf[..ra * cols].copy_from_slice(t.value(a).as_slice());
            buf[ra * cols..].copy_from_slice(t.value(b).as_slice());
        });
        let rg = self.rg(a.0) || self.rg(b.0);
        self.push(value, Op::ConcatRows(a.0, b.0), rg)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, x: Var) -> Var {
        let (rows, cols) = self.shape(x);
        let value = self.pooled_value(cols, rows, |t, buf| {
            let src = t.value(x).as_slice();
            for r in 0..rows {
                for c in 0..cols {
                    buf[c * rows + r] = src[r * cols + c];
                }
            }
        });
        let rg = self.rg(x.0);
        self.push(value, Op::Transpose(x.0), rg)
    }

    /// Selects columns `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_cols(&mut self, x: Var, start: usize, end: usize) -> Var {
        let (rows, cols) = self.shape(x);
        assert!(start <= end && end <= cols, "slice_cols out of bounds");
        let value = self.pooled_value(rows, end - start, |t, buf| {
            let v = t.value(x);
            for (r, row) in buf.chunks_mut((end - start).max(1)).enumerate().take(rows) {
                row.copy_from_slice(&v.row(r)[start..end]);
            }
        });
        let rg = self.rg(x.0);
        self.push(value, Op::SliceCols(x.0, start, end), rg)
    }

    /// Gathers rows of `x` by index (rows may repeat).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn gather_rows(&mut self, x: Var, idx: Arc<Vec<usize>>) -> Var {
        let cols = self.shape(x).1;
        let value = self.pooled_value(idx.len(), cols, |t, buf| {
            let v = t.value(x);
            for (row, &i) in buf.chunks_mut(cols.max(1)).zip(idx.iter()) {
                row.copy_from_slice(v.row(i));
            }
        });
        let rg = self.rg(x.0);
        self.push(value, Op::GatherRows(x.0, idx), rg)
    }

    /// Sparse aggregation `S · x` (e.g. a message-passing step).
    ///
    /// # Panics
    ///
    /// Panics if `S.cols != rows(x)`.
    pub fn spmm(&mut self, s: Arc<CsrMatrix>, x: Var) -> Var {
        assert_eq!(s.cols(), self.shape(x).0, "spmm shape mismatch on tape");
        let (rows, cols) = (s.rows(), self.shape(x).1);
        let value = self.pooled_value(rows, cols, |t, buf| {
            kernels::spmm_into(&s, t.value(x), buf);
        });
        let rg = self.rg(x.0);
        self.push(value, Op::Spmm(s, x.0), rg)
    }

    /// Transposed sparse aggregation `Sᵀ · x` (runs on the cached explicit
    /// transpose — see [`CsrMatrix::transpose_cached`]).
    ///
    /// # Panics
    ///
    /// Panics if `S.rows != rows(x)`.
    pub fn spmm_t(&mut self, s: Arc<CsrMatrix>, x: Var) -> Var {
        assert_eq!(s.rows(), self.shape(x).0, "spmm_t shape mismatch on tape");
        let (rows, cols) = (s.cols(), self.shape(x).1);
        let st = Arc::clone(s.transpose_cached());
        let value = self.pooled_value(rows, cols, |t, buf| {
            kernels::spmm_into(&st, t.value(x), buf);
        });
        let rg = self.rg(x.0);
        self.push(value, Op::SpmmT(s, x.0), rg)
    }

    /// Sum of all elements (`1 × 1` result).
    pub fn sum_all(&mut self, x: Var) -> Var {
        let value = Matrix::scalar(self.value(x).sum());
        let rg = self.rg(x.0);
        self.push(value, Op::SumAll(x.0), rg)
    }

    /// Mean of all elements (`1 × 1` result).
    pub fn mean_all(&mut self, x: Var) -> Var {
        let value = Matrix::scalar(self.value(x).mean());
        let rg = self.rg(x.0);
        self.push(value, Op::MeanAll(x.0), rg)
    }

    // ---- fused losses ----

    /// Mean-squared-error loss `mean((pred - target)²)` (`1 × 1` result).
    ///
    /// This is the routing-demand regression loss, Eq. 4 of the paper.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mse_loss(&mut self, pred: Var, target: Arc<Matrix>) -> Var {
        assert_eq!(self.shape(pred), target.shape(), "mse_loss shape mismatch");
        let diff = self.value(pred).sub(&target);
        let n = diff.len().max(1) as f32;
        let value = Matrix::scalar(diff.as_slice().iter().map(|d| d * d).sum::<f32>() / n);
        let rg = self.rg(pred.0);
        self.push(value, Op::MseLoss { pred: pred.0, target }, rg)
    }

    /// Weighted binary cross-entropy on logits (`1 × 1` result).
    ///
    /// Computes `mean(w ⊙ [softplus(z) - z·y])` using the numerically
    /// stable formulation `max(z,0) - z·y + ln(1 + e^{-|z|})`. With
    /// `w = y + (1-y)·γ` this is exactly Eq. 5 of the paper (the
    /// label-imbalance weighting with hyper-parameter γ).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn bce_with_logits(
        &mut self,
        logits: Var,
        targets: Arc<Matrix>,
        weights: Arc<Matrix>,
    ) -> Var {
        assert_eq!(self.shape(logits), targets.shape(), "bce logits/targets mismatch");
        assert_eq!(self.shape(logits), weights.shape(), "bce logits/weights mismatch");
        let z = self.value(logits);
        let n = z.len().max(1) as f32;
        let mut total = 0.0f32;
        for ((&zi, &yi), &wi) in z.as_slice().iter().zip(targets.as_slice()).zip(weights.as_slice())
        {
            let loss = zi.max(0.0) - zi * yi + (1.0 + (-zi.abs()).exp()).ln();
            total += wi * loss;
        }
        let value = Matrix::scalar(total / n);
        let rg = self.rg(logits.0);
        self.push(value, Op::BceWithLogits { logits: logits.0, targets, weights }, rg)
    }

    // ---- image ops (see conv.rs for the math) ----

    /// 2-D convolution over a `(C_in, H·W)` feature map.
    ///
    /// `weight` must be `(C_out, C_in·k·k)`, `bias` `(C_out, 1)`. Output is
    /// `(C_out, H_out·W_out)` with `H_out = (H + 2p - k)/s + 1`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with `cfg`.
    pub fn conv2d(&mut self, input: Var, weight: Var, bias: Var, cfg: Conv2dCfg) -> Var {
        let (value, cols) =
            conv::conv2d_forward(self.value(input), self.value(weight), self.value(bias), cfg);
        let rg = self.rg(input.0) || self.rg(weight.0) || self.rg(bias.0);
        self.push(
            value,
            Op::Conv2d { input: input.0, weight: weight.0, bias: bias.0, cfg, cols },
            rg,
        )
    }

    /// 2×2 max-pooling with stride 2 over a `(C, H·W)` feature map.
    ///
    /// # Panics
    ///
    /// Panics if `H` or `W` is odd or shapes are inconsistent.
    pub fn max_pool2d(&mut self, input: Var, h: usize, w: usize) -> Var {
        let in_cols = self.value(input).cols();
        let (value, argmax) = conv::max_pool2d_forward(self.value(input), h, w);
        let rg = self.rg(input.0);
        self.push(value, Op::MaxPool2d { input: input.0, argmax, in_cols }, rg)
    }

    /// Nearest-neighbour 2× upsampling over a `(C, H·W)` feature map.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn upsample_nearest2(&mut self, input: Var, h: usize, w: usize) -> Var {
        let value = conv::upsample_nearest2_forward(self.value(input), h, w);
        let rg = self.rg(input.0);
        self.push(value, Op::UpsampleNearest2 { input: input.0, h, w }, rg)
    }

    /// Instance normalisation over a `(C, H·W)` feature map with learnable
    /// per-channel `gamma`/`beta` of shape `(C, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn instance_norm(&mut self, input: Var, gamma: Var, beta: Var) -> Var {
        let (value, xhat, inv_std) =
            conv::instance_norm_forward(self.value(input), self.value(gamma), self.value(beta));
        let rg = self.rg(input.0) || self.rg(gamma.0) || self.rg(beta.0);
        self.push(
            value,
            Op::InstanceNorm { input: input.0, gamma: gamma.0, beta: beta.0, xhat, inv_std },
            rg,
        )
    }

    // ---- backward ----

    /// Runs reverse-mode differentiation from scalar node `loss`.
    ///
    /// Gradients are accumulated into every node with `requires_grad`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1 × 1`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.shape(loss), (1, 1), "backward requires a scalar loss");
        let n = loss.0;
        self.nodes[n].grad = Some(Matrix::scalar(1.0));
        for i in (0..=n).rev() {
            if self.nodes[i].grad.is_none() || !self.nodes[i].requires_grad {
                continue;
            }
            self.propagate(i);
        }
    }

    fn add_grad(&mut self, node: usize, g: Matrix) {
        if !self.nodes[node].requires_grad {
            // recycle the rejected gradient's buffer
            self.free.push(g.into_vec());
            return;
        }
        match &mut self.nodes[node].grad {
            Some(existing) => {
                existing.add_scaled_inplace(&g, 1.0);
                self.free.push(g.into_vec());
            }
            slot @ None => *slot = Some(g),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn propagate(&mut self, i: usize) {
        let grad = self.nodes[i].grad.clone().expect("propagate called with grad present");
        // Temporarily take the op to appease the borrow checker; every arm
        // must leave `self.nodes[i].op` restored.
        let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
        match &op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                let ga = pooled_copy(&mut self.free, &grad);
                self.add_grad(*a, ga);
                self.add_grad(*b, grad);
            }
            Op::Sub(a, b) => {
                let gb = pooled_with(&mut self.free, grad.rows(), grad.cols(), |buf| {
                    kernels::map_into(grad.as_slice(), buf, |g| -g);
                });
                self.add_grad(*a, grad);
                self.add_grad(*b, gb);
            }
            Op::Mul(a, b) => {
                let ga = pooled_zip(&mut self.free, &grad, &self.nodes[*b].value, |g, v| g * v);
                let gb = pooled_zip(&mut self.free, &grad, &self.nodes[*a].value, |g, v| g * v);
                self.add_grad(*a, ga);
                self.add_grad(*b, gb);
            }
            Op::MatMul(a, b) => {
                if self.rg(*a) {
                    let bv = &self.nodes[*b].value;
                    let ga = pooled_with(&mut self.free, grad.rows(), bv.rows(), |buf| {
                        kernels::matmul_nt_into(&grad, bv, buf);
                    });
                    self.add_grad(*a, ga);
                }
                if self.rg(*b) {
                    let av = &self.nodes[*a].value;
                    let gb = pooled_with(&mut self.free, av.cols(), grad.cols(), |buf| {
                        kernels::matmul_tn_into(av, &grad, buf);
                    });
                    self.add_grad(*b, gb);
                }
            }
            Op::AddBias(x, bias) => {
                if self.rg(*bias) {
                    let mut gb = Matrix::zeros(1, grad.cols());
                    for r in 0..grad.rows() {
                        for (o, &g) in gb.row_mut(0).iter_mut().zip(grad.row(r)) {
                            *o += g;
                        }
                    }
                    self.add_grad(*bias, gb);
                }
                self.add_grad(*x, grad);
            }
            Op::Scale(x, s) => {
                let s = *s;
                let gx = pooled_with(&mut self.free, grad.rows(), grad.cols(), |buf| {
                    kernels::map_into(grad.as_slice(), buf, move |g| g * s);
                });
                self.add_grad(*x, gx);
            }
            Op::AddScalar(x, _) => self.add_grad(*x, grad),
            Op::Relu(x) => {
                let gx = pooled_zip(&mut self.free, &grad, &self.nodes[*x].value, |g, v| {
                    if v > 0.0 {
                        g
                    } else {
                        0.0
                    }
                });
                self.add_grad(*x, gx);
            }
            Op::LeakyRelu(x, alpha) => {
                let a = *alpha;
                let gx = pooled_zip(&mut self.free, &grad, &self.nodes[*x].value, move |g, v| {
                    if v >= 0.0 {
                        g
                    } else {
                        a * g
                    }
                });
                self.add_grad(*x, gx);
            }
            Op::Sigmoid(x) => {
                let gx = pooled_zip(&mut self.free, &grad, &self.nodes[i].value, |g, y| {
                    g * y * (1.0 - y)
                });
                self.add_grad(*x, gx);
            }
            Op::Tanh(x) => {
                let gx = pooled_zip(&mut self.free, &grad, &self.nodes[i].value, |g, y| {
                    g * (1.0 - y * y)
                });
                self.add_grad(*x, gx);
            }
            Op::ConcatCols(a, b) => {
                let ca = self.nodes[*a].value.cols();
                let cb = self.nodes[*b].value.cols();
                self.add_grad(*a, grad.slice_cols(0, ca));
                self.add_grad(*b, grad.slice_cols(ca, ca + cb));
            }
            Op::ConcatRows(a, b) => {
                let ra = self.nodes[*a].value.rows();
                let cols = grad.cols();
                let ga = Matrix::from_vec(ra, cols, grad.as_slice()[..ra * cols].to_vec())
                    .expect("sized by construction");
                let rb = self.nodes[*b].value.rows();
                let gb = Matrix::from_vec(rb, cols, grad.as_slice()[ra * cols..].to_vec())
                    .expect("sized by construction");
                self.add_grad(*a, ga);
                self.add_grad(*b, gb);
            }
            Op::Transpose(x) => {
                self.add_grad(*x, grad.transpose());
            }
            Op::SliceCols(x, start, end) => {
                let (rows, cols) = self.nodes[*x].value.shape();
                let mut gx = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    gx.row_mut(r)[*start..*end].copy_from_slice(grad.row(r));
                }
                self.add_grad(*x, gx);
            }
            Op::GatherRows(x, idx) => {
                let (rows, cols) = self.nodes[*x].value.shape();
                let mut gx = Matrix::zeros(rows, cols);
                for (r, &src) in idx.iter().enumerate() {
                    for (o, &g) in gx.row_mut(src).iter_mut().zip(grad.row(r)) {
                        *o += g;
                    }
                }
                self.add_grad(*x, gx);
            }
            Op::Spmm(s, x) => {
                // y = S x  =>  dx = Sᵀ dy (cached transpose, computed once
                // per operator and reused by every later backward step)
                let st = Arc::clone(s.transpose_cached());
                let gx = pooled_with(&mut self.free, st.rows(), grad.cols(), |buf| {
                    kernels::spmm_into(&st, &grad, buf);
                });
                self.add_grad(*x, gx);
            }
            Op::SpmmT(s, x) => {
                // y = Sᵀ x  =>  dx = S dy
                let gx = pooled_with(&mut self.free, s.rows(), grad.cols(), |buf| {
                    kernels::spmm_into(s, &grad, buf);
                });
                self.add_grad(*x, gx);
            }
            Op::SumAll(x) => {
                let g = grad.item();
                let (rows, cols) = self.nodes[*x].value.shape();
                self.add_grad(*x, Matrix::full(rows, cols, g));
            }
            Op::MeanAll(x) => {
                let (rows, cols) = self.nodes[*x].value.shape();
                let n = (rows * cols).max(1) as f32;
                let g = grad.item() / n;
                self.add_grad(*x, Matrix::full(rows, cols, g));
            }
            Op::MseLoss { pred, target } => {
                let p = &self.nodes[*pred].value;
                let n = p.len().max(1) as f32;
                let g = grad.item() * 2.0 / n;
                let gp = p.zip_map(target, |pi, ti| g * (pi - ti));
                self.add_grad(*pred, gp);
            }
            Op::BceWithLogits { logits, targets, weights } => {
                let z = &self.nodes[*logits].value;
                let n = z.len().max(1) as f32;
                let g = grad.item() / n;
                let mut gz = Matrix::zeros(z.rows(), z.cols());
                for (o, ((&zi, &yi), &wi)) in gz
                    .as_mut_slice()
                    .iter_mut()
                    .zip(z.as_slice().iter().zip(targets.as_slice()).zip(weights.as_slice()))
                {
                    *o = g * wi * (stable_sigmoid(zi) - yi);
                }
                self.add_grad(*logits, gz);
            }
            Op::Conv2d { input, weight, bias, cfg, cols } => {
                let (gi, gw, gb) = conv::conv2d_backward(
                    &grad,
                    &self.nodes[*weight].value,
                    cols,
                    *cfg,
                    self.rg(*input),
                    self.rg(*weight),
                    self.rg(*bias),
                );
                if let Some(gi) = gi {
                    self.add_grad(*input, gi);
                }
                if let Some(gw) = gw {
                    self.add_grad(*weight, gw);
                }
                if let Some(gb) = gb {
                    self.add_grad(*bias, gb);
                }
            }
            Op::MaxPool2d { input, argmax, in_cols } => {
                let rows = self.nodes[*input].value.rows();
                let gx = conv::max_pool2d_backward(&grad, argmax, rows, *in_cols);
                self.add_grad(*input, gx);
            }
            Op::UpsampleNearest2 { input, h, w } => {
                let gx = conv::upsample_nearest2_backward(&grad, *h, *w);
                self.add_grad(*input, gx);
            }
            Op::InstanceNorm { input, gamma, beta, xhat, inv_std } => {
                let (gi, gg, gb) = conv::instance_norm_backward(
                    &grad,
                    xhat,
                    inv_std,
                    &self.nodes[*gamma].value,
                    self.rg(*input),
                );
                if let Some(gi) = gi {
                    self.add_grad(*input, gi);
                }
                if self.rg(*gamma) {
                    self.add_grad(*gamma, gg);
                }
                if self.rg(*beta) {
                    self.add_grad(*beta, gb);
                }
            }
        }
        self.nodes[i].op = op;
    }

    /// Iterates over `(ParamId, gradient)` pairs of parameter leaves that
    /// received gradients, consuming the stored gradients.
    pub fn take_param_grads(&mut self) -> Vec<(ParamId, Matrix)> {
        let mut out = Vec::new();
        for node in &mut self.nodes {
            if let Some(id) = node.param {
                if let Some(grad) = node.grad.take() {
                    out.push((id, grad));
                }
            }
        }
        out
    }
}

/// Numerically stable logistic sigmoid.
pub fn stable_sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite difference on a scalar-valued function of one leaf.
    fn finite_diff(
        build: impl Fn(&mut Tape, Var) -> Var,
        x0: &Matrix,
        eps: f32,
    ) -> (Matrix, Matrix) {
        // analytic
        let mut tape = Tape::new();
        let x = tape.leaf_grad(x0.clone());
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let analytic = tape.grad(x).expect("grad present").clone();

        // numeric
        let mut numeric = Matrix::zeros(x0.rows(), x0.cols());
        for i in 0..x0.len() {
            let mut plus = x0.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = x0.clone();
            minus.as_mut_slice()[i] -= eps;
            let fp = {
                let mut t = Tape::new();
                let v = t.leaf_grad(plus);
                let l = build(&mut t, v);
                t.value(l).item()
            };
            let fm = {
                let mut t = Tape::new();
                let v = t.leaf_grad(minus);
                let l = build(&mut t, v);
                t.value(l).item()
            };
            numeric.as_mut_slice()[i] = (fp - fm) / (2.0 * eps);
        }
        (analytic, numeric)
    }

    fn check_grad(build: impl Fn(&mut Tape, Var) -> Var, x0: &Matrix, tol: f32) {
        let (a, n) = finite_diff(build, x0, 1e-2);
        assert!(a.approx_eq(&n, tol), "gradient mismatch:\nanalytic={a:?}\nnumeric={n:?}");
    }

    fn test_input() -> Matrix {
        Matrix::from_rows(&[&[0.5, -1.2, 2.0], &[1.5, 0.3, -0.7]])
    }

    #[test]
    fn grad_sum_of_relu() {
        check_grad(
            |t, x| {
                let y = t.relu(x);
                t.sum_all(y)
            },
            &test_input(),
            1e-2,
        );
    }

    #[test]
    fn grad_sigmoid_tanh_chain() {
        check_grad(
            |t, x| {
                let y = t.sigmoid(x);
                let z = t.tanh(y);
                t.sum_all(z)
            },
            &test_input(),
            1e-2,
        );
    }

    #[test]
    fn grad_leaky_relu() {
        check_grad(
            |t, x| {
                let y = t.leaky_relu(x, 0.2);
                t.sum_all(y)
            },
            &test_input(),
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_both_sides() {
        // loss = sum(x · c) with constant c tests dA; use x on both sides
        // via xᵀ-free formulation: sum((x·c) ⊙ (x·c)).
        let c = Matrix::from_rows(&[&[1.0, 0.5], &[-0.5, 2.0], &[0.3, 0.3]]);
        check_grad(
            move |t, x| {
                let cc = t.leaf(c.clone());
                let y = t.matmul(x, cc);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            &test_input(),
            5e-2,
        );
    }

    #[test]
    fn grad_add_sub_mul_scale() {
        check_grad(
            |t, x| {
                let a = t.scale(x, 3.0);
                let b = t.add_scalar(x, 1.0);
                let c = t.mul(a, b);
                let d = t.sub(c, x);
                t.mean_all(d)
            },
            &test_input(),
            1e-2,
        );
    }

    #[test]
    fn grad_add_bias_routes_to_both() {
        let mut tape = Tape::new();
        let x = tape.leaf_grad(Matrix::zeros(3, 2));
        let b = tape.leaf_grad(Matrix::row_vector(&[1.0, 2.0]));
        let y = tape.add_bias(x, b);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[3.0, 3.0]);
        assert_eq!(tape.grad(x).unwrap().sum(), 6.0);
    }

    #[test]
    fn grad_concat_and_slice() {
        check_grad(
            |t, x| {
                let y = t.concat_cols(x, x);
                let z = t.slice_cols(y, 1, 4);
                let z2 = t.mul(z, z);
                t.sum_all(z2)
            },
            &test_input(),
            5e-2,
        );
    }

    #[test]
    fn grad_concat_rows_splits_gradient() {
        let mut tape = Tape::new();
        let a = tape.leaf_grad(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = tape.leaf_grad(Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let c = tape.concat_rows(a, b);
        assert_eq!(tape.shape(c), (3, 2));
        let c2 = tape.mul(c, c);
        let loss = tape.sum_all(c2);
        tape.backward(loss);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[2.0, 4.0]);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[6.0, 8.0, 10.0, 12.0]);
    }

    #[test]
    fn grad_transpose_matches_finite_diff() {
        check_grad(
            |t, x| {
                let y = t.transpose(x);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            &test_input(),
            5e-2,
        );
    }

    #[test]
    fn transpose_value_is_correct() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let y = tape.transpose(x);
        assert_eq!(tape.value(y).row(0), &[1.0, 3.0]);
    }

    #[test]
    fn grad_gather_rows_accumulates_duplicates() {
        let mut tape = Tape::new();
        let x = tape.leaf_grad(Matrix::from_rows(&[&[1.0], &[2.0]]));
        let g = tape.gather_rows(x, Arc::new(vec![0, 0, 1]));
        let loss = tape.sum_all(g);
        tape.backward(loss);
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[2.0, 1.0]);
    }

    #[test]
    fn grad_spmm_matches_finite_diff() {
        let s = Arc::new(CsrMatrix::from_triplets(2, 2, &[(0, 0, 0.5), (0, 1, 0.5), (1, 1, 2.0)]));
        let x0 = Matrix::from_rows(&[&[1.0, -1.0, 0.5], &[0.2, 0.4, 0.6]]);
        check_grad(
            move |t, x| {
                let y = t.spmm(Arc::clone(&s), x);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            &x0,
            5e-2,
        );
    }

    #[test]
    fn grad_spmm_t_matches_finite_diff() {
        let s = Arc::new(CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (1, 0, 1.0), (2, 1, 0.7)]));
        let x0 = Matrix::from_rows(&[&[1.0, 2.0], &[0.5, -0.5], &[1.5, 0.1]]);
        check_grad(
            move |t, x| {
                let y = t.spmm_t(Arc::clone(&s), x);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            &x0,
            5e-2,
        );
    }

    #[test]
    fn grad_mse_loss() {
        let target = Arc::new(Matrix::from_rows(&[&[1.0, 0.0, 0.5], &[0.2, 0.2, 0.2]]));
        check_grad(move |t, x| t.mse_loss(x, Arc::clone(&target)), &test_input(), 1e-2);
    }

    #[test]
    fn grad_bce_with_logits_weighted() {
        let targets = Arc::new(Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]));
        let gamma = 0.7;
        let weights = Arc::new(targets.map(|y| y + (1.0 - y) * gamma));
        check_grad(
            move |t, x| t.bce_with_logits(x, Arc::clone(&targets), Arc::clone(&weights)),
            &test_input(),
            1e-2,
        );
    }

    #[test]
    fn bce_matches_naive_formula() {
        // direct comparison against -w (y ln p + (1-y) ln (1-p))
        let mut tape = Tape::new();
        let z = Matrix::from_rows(&[&[0.3, -1.0, 2.0]]);
        let y = Matrix::from_rows(&[&[1.0, 0.0, 0.0]]);
        let gamma = 0.7;
        let w = y.map(|yi| yi + (1.0 - yi) * gamma);
        let zl = tape.leaf_grad(z.clone());
        let loss = tape.bce_with_logits(zl, Arc::new(y.clone()), Arc::new(w.clone()));
        let mut expected = 0.0;
        for i in 0..3 {
            let p = stable_sigmoid(z.as_slice()[i]);
            let yi = y.as_slice()[i];
            let wi = w.as_slice()[i];
            expected -= wi * (yi * p.ln() + (1.0 - yi) * (1.0 - p).ln());
        }
        expected /= 3.0;
        assert!((tape.value(loss).item() - expected).abs() < 1e-5);
    }

    #[test]
    fn no_grad_for_constants() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::full(2, 2, 1.0));
        let y = tape.relu(x);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        assert!(tape.grad(x).is_none());
    }

    #[test]
    fn grads_accumulate_across_reuse() {
        // loss = sum(x + x) => dx = 2
        let mut tape = Tape::new();
        let x = tape.leaf_grad(Matrix::full(1, 2, 3.0));
        let y = tape.add(x, x);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn take_param_grads_leaves_non_param_grads_intact() {
        let mut tape = Tape::new();
        let x = tape.leaf_grad(Matrix::scalar(1.0));
        let p = tape.param_leaf(ParamId(0), Matrix::scalar(2.0));
        let y = tape.mul(x, p);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        let grads = tape.take_param_grads();
        assert_eq!(grads.len(), 1);
        // the non-param leaf keeps its gradient
        assert!(tape.grad(x).is_some());
        assert_eq!(tape.grad(x).unwrap().item(), 2.0);
    }

    #[test]
    fn param_grads_are_collected() {
        let mut tape = Tape::new();
        let p = tape.param_leaf(ParamId(7), Matrix::full(1, 1, 2.0));
        let y = tape.mul(p, p);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        let grads = tape.take_param_grads();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].0, ParamId(7));
        assert!((grads[0].1.item() - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn tape_matmul_rejects_inner_dimension_mismatch() {
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::zeros(2, 3));
        let b = tape.leaf(Matrix::zeros(5, 4));
        let _ = tape.matmul(a, b);
    }

    #[test]
    #[should_panic(expected = "spmm shape mismatch")]
    fn tape_spmm_rejects_mismatched_operand() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(2, 2));
        let s = Arc::new(CsrMatrix::empty(3, 3));
        let _ = tape.spmm(s, x);
    }

    #[test]
    fn clear_recycles_value_and_grad_buffers() {
        let mut tape = Tape::with_capacity(8);
        let run = |tape: &mut Tape| {
            let x = tape.leaf_grad(Matrix::full(4, 4, 1.0));
            let y = tape.relu(x);
            let z = tape.scale(y, 2.0);
            let loss = tape.sum_all(z);
            tape.backward(loss);
            tape.value(loss).item()
        };
        let first = run(&mut tape);
        tape.clear();
        let harvested = tape.pooled_buffers();
        assert!(harvested > 0, "clear must harvest node value/grad buffers");
        // a second identical pass reuses the pool and reproduces the value
        let second = run(&mut tape);
        assert_eq!(first, second);
        tape.clear();
        assert!(
            tape.pooled_buffers() >= harvested,
            "steady state: the pool refills to at least its previous size"
        );
    }

    #[test]
    fn cleared_tape_reproduces_fresh_tape_bitwise() {
        let x0 = test_input();
        let fresh = |x0: &Matrix| {
            let mut t = Tape::new();
            let x = t.leaf_grad(x0.clone());
            let y = t.sigmoid(x);
            let z = t.mul(y, y);
            let loss = t.mean_all(z);
            t.backward(loss);
            (t.value(loss).item(), t.grad(x).unwrap().clone())
        };
        let (l1, g1) = fresh(&x0);
        let mut reused = Tape::new();
        for _ in 0..3 {
            reused.clear();
            let x = reused.leaf_grad(x0.clone());
            let y = reused.sigmoid(x);
            let z = reused.mul(y, y);
            let loss = reused.mean_all(z);
            reused.backward(loss);
            assert_eq!(reused.value(loss).item(), l1);
            assert!(reused.grad(x).unwrap().approx_eq(&g1, 0.0));
        }
    }

    #[test]
    fn stable_sigmoid_extremes() {
        assert!(stable_sigmoid(100.0) > 0.999);
        assert!(stable_sigmoid(-100.0) < 1e-3);
        assert!((stable_sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(stable_sigmoid(-1000.0).is_finite());
    }
}
