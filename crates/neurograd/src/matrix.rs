//! Dense row-major `f32` matrices.
//!
//! [`Matrix`] is the single dense container used throughout the LHNN
//! reproduction: node-feature blocks (`N × d`), layer weights, image-like
//! feature maps (`channels × h·w`), and scalar losses (`1 × 1`).
//!
//! Compute dispatches through [`crate::kernels`]: each product keeps the
//! cache-friendly per-row i-k-j loop of the seed implementation but
//! partitions output rows across the process pool ([`crate::pool`]).
//! Chunking is bitwise-invariant, so results are identical at any thread
//! count.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::error::{NeuroError, Result};
use crate::kernels;

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use neurograd::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.matmul(&Matrix::eye(2)), m);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NeuroError::ShapeMismatch {
                expected: (rows, cols),
                got: (data.len(), 1),
                context: "Matrix::from_vec",
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from slices of rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Creates a single-column matrix from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Creates a `1 × 1` matrix holding `value`.
    pub fn scalar(value: f32) -> Self {
        Self { rows: 1, cols: 1, data: vec![value] }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value of the single element of a `1 × 1` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `1 × 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 matrix");
        self.data[0]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        kernels::matmul_into(self, rhs, &mut out.data);
        out
    }

    /// Matrix product `selfᵀ · rhs` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != rhs.rows`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        kernels::matmul_tn_into(self, rhs, &mut out.data);
        out
    }

    /// Matrix product `self · rhsᵀ` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.cols`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        kernels::matmul_nt_into(self, rhs, &mut out.data);
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        kernels::map_into(&self.data, &mut out.data, f);
        out
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        kernels::map_inplace(&mut self.data, f);
    }

    /// Elementwise binary combination into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip_map shape mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        kernels::zip_into(&self.data, &rhs.data, &mut out.data, f);
        out
    }

    /// `self + rhs` elementwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }

    /// `self - rhs` elementwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }

    /// Hadamard (elementwise) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a * b)
    }

    /// `self * s` elementwise.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Accumulates `rhs * s` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_inplace(&mut self, rhs: &Matrix, s: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled_inplace shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b * s;
        }
    }

    /// Adds a `1 × cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.shape(), (1, self.cols), "row broadcast shape mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias.as_slice()) {
                *o += b;
            }
        }
        out
    }

    /// Concatenates columns: `[self | rhs]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn concat_cols(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "concat_cols row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Stacks rows: `[self ; rhs]`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn concat_rows(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "concat_rows col mismatch");
        let mut data = Vec::with_capacity(self.data.len() + rhs.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Matrix { rows: self.rows + rhs.rows, cols: self.cols, data }
    }

    /// Returns the columns `[start, end)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "slice_cols out of bounds");
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Gathers the given rows into a new matrix (duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (r, &i) in idx.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i));
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Returns `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Returns `true` if matrices agree elementwise within `tol`.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f32) -> bool {
        self.shape() == rhs.shape()
            && self.data.iter().zip(&rhs.data).all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows <= 8 && self.cols <= 8 {
            writeln!(f)?;
            for r in 0..self.rows {
                writeln!(f, "  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{} matrix]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Matrix::full(2, 2, 7.0);
        assert_eq!(f.sum(), 28.0);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::eye(2)), a);
        assert_eq!(Matrix::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, 2.0], &[0.0, 1.0, -1.0], &[2.0, 2.0, 2.0]]);
        assert!(a.matmul_tn(&b).approx_eq(&a.transpose().matmul(&b), 1e-6));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
        assert!(a.matmul_nt(&b).approx_eq(&a.matmul(&b.transpose()), 1e-6));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn row_broadcast_adds_bias_to_each_row() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::row_vector(&[1.0, -1.0]);
        let c = a.add_row_broadcast(&b);
        for r in 0..3 {
            assert_eq!(c.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 3), b);
    }

    #[test]
    fn concat_rows_stacks() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.concat_rows(&b);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn gather_rows_selects_and_duplicates() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.into_vec(), vec![3.0, 1.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - 30.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn item_on_scalar() {
        assert_eq!(Matrix::scalar(2.5).item(), 2.5);
    }

    #[test]
    #[should_panic(expected = "item() requires")]
    fn item_panics_on_non_scalar() {
        Matrix::zeros(2, 1).item();
    }

    #[test]
    fn debug_is_never_empty() {
        let s = format!("{:?}", Matrix::zeros(0, 0));
        assert!(!s.is_empty());
    }

    #[test]
    fn from_vec_reports_expected_and_got_shapes() {
        match Matrix::from_vec(2, 3, vec![0.0; 5]) {
            Err(NeuroError::ShapeMismatch { expected, got, context }) => {
                assert_eq!(expected, (2, 3));
                assert_eq!(got, (5, 1));
                assert_eq!(context, "Matrix::from_vec");
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_rejects_inner_dimension_mismatch() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "zip_map shape mismatch")]
    fn elementwise_add_rejects_shape_mismatch() {
        let _ = Matrix::zeros(2, 2).add(&Matrix::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "row broadcast shape mismatch")]
    fn add_row_broadcast_rejects_wrong_bias_shape() {
        let _ = Matrix::zeros(2, 3).add_row_broadcast(&Matrix::zeros(1, 2));
    }

    #[test]
    #[should_panic(expected = "concat_rows col mismatch")]
    fn concat_rows_rejects_column_mismatch() {
        let _ = Matrix::zeros(1, 2).concat_rows(&Matrix::zeros(1, 3));
    }

    #[test]
    #[should_panic(expected = "slice_cols out of bounds")]
    fn slice_cols_rejects_out_of_range() {
        let _ = Matrix::zeros(2, 3).slice_cols(1, 4);
    }
}
