//! `neurograd` — a small, dependency-free deep-learning substrate.
//!
//! This crate replaces PyTorch + DGL for the LHNN reproduction. It provides
//! exactly what the paper's models need and nothing more:
//!
//! * [`Matrix`] — dense row-major `f32` matrices,
//! * [`CsrMatrix`] — sparse aggregation operators for graph message passing
//!   (with a cached explicit transpose for backward passes),
//! * [`kernels`] + [`pool`] + [`simd`] — the parallel compute backend every
//!   dense and sparse op dispatches through: chunked over a shared thread
//!   pool, inner loops on explicit f32 lanes, with bitwise results invariant
//!   to thread count and to SIMD on/off,
//! * [`Tape`] — tape-based reverse-mode autodiff with fused losses
//!   (MSE, γ-weighted BCE-with-logits — Eq. 4/5 of the paper) and a
//!   recycled buffer pool for allocation-free steady-state forwards,
//! * image ops for the CNN baselines (conv2d / max-pool / upsample /
//!   instance-norm) in [`conv`],
//! * [`layers`] — `Linear`, `Mlp`, `ResBlock` building blocks,
//! * [`optim`] — `ParamStore`, `Sgd`, `Adam`,
//! * [`metrics`] — confusion counts, F1, accuracy,
//! * [`init`] — seeded Xavier/Kaiming initialisation.
//!
//! # Example: one training step
//!
//! ```
//! use std::sync::Arc;
//! use neurograd::{Activation, Adam, Matrix, Mlp, Optimizer, ParamStore, Tape};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut store = ParamStore::new();
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = Mlp::new(&mut store, "demo", 2, 8, 1, 2, Activation::Identity, &mut rng);
//! let mut opt = Adam::new(1e-2);
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]));
//! let pred = model.forward(&mut tape, &store, x);
//! let loss = tape.mse_loss(pred, Arc::new(Matrix::col_vector(&[1.0, 1.0])));
//! tape.backward(loss);
//! store.absorb_grads(&mut tape);
//! opt.step(&mut store);
//! store.zero_grad();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conv;
pub mod error;
pub mod fingerprint;
pub mod init;
pub mod kernels;
pub mod layers;
pub mod matrix;
pub mod metrics;
pub mod optim;
pub mod pool;
pub mod simd;
pub mod sparse;
pub mod tape;

pub use conv::Conv2dCfg;
pub use error::{NeuroError, Result};
pub use fingerprint::{canonical_f32_bits, Fnv64};
pub use layers::{Activation, Linear, Mlp, ResBlock};
pub use matrix::Matrix;
pub use metrics::{mean_std, Confusion};
pub use optim::{Adam, Optimizer, Param, ParamStore, Sgd};
pub use pool::ThreadPool;
pub use sparse::CsrMatrix;
pub use tape::{stable_sigmoid, ParamId, Tape, Var};

// Concurrency contract: the serving layer shares models and graph
// operators across worker threads (`Arc<Lhnn>`, `Arc<CsrMatrix>`) and owns
// one scratch `Tape` per worker. These compile-time assertions keep the
// substrate `Send + Sync` — adding an `Rc`/`RefCell`/raw-pointer field to
// any of these types becomes a build error rather than a runtime surprise.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Matrix>();
    assert_send_sync::<CsrMatrix>();
    assert_send_sync::<Tape>();
    assert_send_sync::<ParamStore>();
    assert_send_sync::<Param>();
    assert_send_sync::<Linear>();
    assert_send_sync::<ResBlock>();
    assert_send_sync::<ThreadPool>();
};
