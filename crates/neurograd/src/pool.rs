//! A lightweight chunked thread pool for intra-op parallelism.
//!
//! Every compute kernel in [`crate::kernels`] partitions its output into
//! contiguous chunks and runs them through a [`ThreadPool`]. The pool is
//! deliberately small and predictable:
//!
//! * **Persistent workers** — `threads - 1` long-lived worker threads plus
//!   the calling thread; no per-call spawn cost.
//! * **Deterministic chunking** — chunk boundaries depend only on the work
//!   size and the requested chunk count, never on scheduling, and every
//!   chunk writes a disjoint slice of the output. Results are therefore
//!   bitwise identical at any thread count (see the `parallel_kernels`
//!   property tests).
//! * **Nested calls run inline** — a task that itself calls
//!   [`ThreadPool::run`] executes serially on its worker. This keeps the
//!   data-parallel trainer (one shard per worker, serial kernels inside)
//!   and the serving engine (one request per worker) free of deadlocks and
//!   oversubscription by construction.
//!
//! A process-wide pool is available through [`global`]; [`configure_threads`]
//! rebuilds it (the `--threads` CLI knob, `TrainConfig::threads` and
//! `EngineConfig::compute_threads` all end up here). Replacing the global
//! pool is safe while it is in use: existing users keep their `Arc` to the
//! old pool, which drains and joins when the last reference drops.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;

thread_local! {
    /// Whether the current thread is executing a pool task (worker threads
    /// while running a chunk, and callers while running chunk 0).
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
}

/// A unit of work: chunk `index` of the type-erased task behind `func`.
///
/// The pointee lives on the stack of the thread inside [`ThreadPool::run`],
/// which does not return until the completion latch has counted every
/// chunk down — so the erased lifetime is sound.
struct Task {
    func: *const (dyn Fn(usize) + Sync + 'static),
    index: usize,
    latch: Arc<Latch>,
}

// SAFETY: the pointee is `Sync` (shared by reference across chunks) and is
// kept alive by `ThreadPool::run` until the latch opens.
unsafe impl Send for Task {}

/// Countdown latch with a poison flag for panicked chunks.
struct Latch {
    state: Mutex<(usize, bool)>,
    cv: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self { state: Mutex::new((count, false)), cv: Condvar::new() }
    }

    fn count_down(&self, ok: bool) {
        let mut s = self.state.lock().expect("latch lock");
        s.0 -= 1;
        s.1 |= !ok;
        if s.0 == 0 {
            self.cv.notify_all();
        }
    }

    /// Blocks until every chunk finished; returns `true` if any panicked.
    fn wait(&self) -> bool {
        let mut s = self.state.lock().expect("latch lock");
        while s.0 > 0 {
            s = self.cv.wait(s).expect("latch lock");
        }
        s.1
    }
}

struct Inner {
    queue: Mutex<(VecDeque<Task>, bool)>,
    not_empty: Condvar,
}

/// A fixed-size pool of compute threads (see the module docs).
pub struct ThreadPool {
    inner: Arc<Inner>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadPool({} threads)", self.threads)
    }
}

impl ThreadPool {
    /// Creates a pool of `threads` compute lanes (the calling thread plus
    /// `threads - 1` workers). `threads` is clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            queue: Mutex::new((VecDeque::new(), false)),
            not_empty: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ng-pool-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { inner, threads, workers }
    }

    /// Number of compute lanes (including the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), …, f(chunks - 1)` exactly once each, possibly in
    /// parallel, and returns when all chunks have finished.
    ///
    /// Chunk 0 always runs on the calling thread. Calls made from inside a
    /// pool task run every chunk inline (nested parallelism is serialised).
    ///
    /// # Panics
    ///
    /// Propagates (as a fresh panic) if any chunk panicked.
    pub fn run(&self, chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if chunks == 1 || self.workers.is_empty() || IN_TASK.with(Cell::get) {
            for i in 0..chunks {
                f(i);
            }
            return;
        }
        let latch = Arc::new(Latch::new(chunks - 1));
        // SAFETY: erase the borrow lifetime; `run` blocks on the latch
        // below until every queued chunk has executed, so the reference
        // outlives all uses.
        let func: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync)) };
        {
            let mut q = self.inner.queue.lock().expect("pool queue lock");
            for index in 1..chunks {
                q.0.push_back(Task { func, index, latch: Arc::clone(&latch) });
            }
        }
        self.inner.not_empty.notify_all();
        IN_TASK.with(|t| t.set(true));
        let own = catch_unwind(AssertUnwindSafe(|| f(0)));
        IN_TASK.with(|t| t.set(false));
        let poisoned = latch.wait();
        assert!(own.is_ok() && !poisoned, "parallel task panicked");
    }

    /// Runs `f(i, &mut items[i])` for every item, possibly in parallel.
    ///
    /// Each index receives exclusive access to its own element, so the
    /// closure may mutate freely; completion order is unobservable.
    pub fn run_mut<T: Send>(&self, items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
        let base = items.as_mut_ptr() as usize;
        let n = items.len();
        self.run(n, &|i| {
            // SAFETY: each chunk index touches a distinct element of the
            // slice, which outlives the call (run blocks until done).
            let item = unsafe { &mut *(base as *mut T).add(i) };
            f(i, item);
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut q = self.inner.queue.lock().expect("pool queue lock");
            q.1 = true;
        }
        self.inner.not_empty.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let task = {
            let mut q = inner.queue.lock().expect("pool queue lock");
            loop {
                if let Some(task) = q.0.pop_front() {
                    break task;
                }
                if q.1 {
                    return;
                }
                q = inner.not_empty.wait(q).expect("pool queue lock");
            }
        };
        IN_TASK.with(|t| t.set(true));
        // SAFETY: see `Task` — the pointee is alive until the latch opens.
        let ok = catch_unwind(AssertUnwindSafe(|| unsafe { (*task.func)(task.index) })).is_ok();
        IN_TASK.with(|t| t.set(false));
        task.latch.count_down(ok);
    }
}

/// Splits `0..len` into at most `max_chunks` contiguous ranges of at least
/// `min_per_chunk` elements (the last chunk absorbs the remainder).
///
/// Boundaries depend only on the arguments — never on scheduling — which is
/// what makes chunked kernels bitwise deterministic.
pub fn chunk_ranges(
    len: usize,
    min_per_chunk: usize,
    max_chunks: usize,
) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let by_min = len / min_per_chunk.max(1);
    let chunks = max_chunks.max(1).min(by_min.max(1));
    let base = len / chunks;
    let rem = len % chunks;
    (0..chunks)
        .map(|i| {
            let lo = i * base + i.min(rem);
            let hi = lo + base + usize::from(i < rem);
            lo..hi
        })
        .collect()
}

static GLOBAL: OnceLock<RwLock<Arc<ThreadPool>>> = OnceLock::new();

fn global_slot() -> &'static RwLock<Arc<ThreadPool>> {
    GLOBAL.get_or_init(|| {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        RwLock::new(Arc::new(ThreadPool::new(threads)))
    })
}

/// The process-wide compute pool used by [`crate::kernels`].
pub fn global() -> Arc<ThreadPool> {
    Arc::clone(&global_slot().read().expect("pool registry lock"))
}

/// Rebuilds the process-wide pool with `threads` compute lanes (clamped to
/// at least 1). A no-op when the pool already has that width, so repeated
/// configuration (e.g. every `ServeEngine::new`) spawns no threads.
/// In-flight users of a replaced pool finish on it; its workers exit once
/// the last reference drops.
pub fn configure_threads(threads: usize) {
    let threads = threads.max(1);
    if current_threads() == threads {
        return;
    }
    let new_pool = Arc::new(ThreadPool::new(threads));
    *global_slot().write().expect("pool registry lock") = new_pool;
}

/// Number of compute lanes of the current process-wide pool.
pub fn current_threads() -> usize {
    global().threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = ThreadPool::new(4);
        for chunks in [1usize, 2, 3, 7, 32] {
            let hits: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(chunks, &|i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let sum = AtomicUsize::new(0);
        pool.run(5, &|i| {
            sum.fetch_add(i, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn nested_run_executes_inline() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        pool.run(3, &|_| {
            // nested call from inside a task: must complete serially
            pool.run(4, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn run_mut_gives_exclusive_access() {
        let pool = ThreadPool::new(4);
        let mut items = vec![0usize; 16];
        pool.run_mut(&mut items, |i, slot| *slot = i * i);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    #[should_panic(expected = "parallel task panicked")]
    fn panicking_chunk_propagates() {
        let pool = ThreadPool::new(2);
        pool.run(4, &|i| assert!(i != 2, "boom"));
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        let pool = ThreadPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|i| assert!(i == 0, "boom"));
        }));
        assert!(r.is_err());
        // workers are still alive and serving
        let sum = AtomicUsize::new(0);
        pool.run(4, &|i| {
            sum.fetch_add(i + 1, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 5, 16, 37, 100] {
            for min in [1usize, 4, 8] {
                for max in [1usize, 2, 4, 7] {
                    let ranges = chunk_ranges(len, min, max);
                    let mut covered = 0;
                    let mut next = 0;
                    for r in &ranges {
                        assert_eq!(r.start, next, "gap at {r:?}");
                        assert!(r.end > r.start);
                        covered += r.end - r.start;
                        next = r.end;
                    }
                    assert_eq!(covered, len);
                    assert!(ranges.len() <= max.max(1));
                    if len >= min * max {
                        // enough work: every lane gets a chunk
                        assert_eq!(ranges.len(), max.max(1));
                    }
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_respect_min_size() {
        let ranges = chunk_ranges(10, 8, 8);
        assert_eq!(ranges.len(), 1, "10 elements at min 8 per chunk: one chunk");
    }

    #[test]
    fn global_pool_reconfigures() {
        configure_threads(2);
        assert_eq!(current_threads(), 2);
        let old = global();
        configure_threads(3);
        assert_eq!(current_threads(), 3);
        // the old pool still works for holders of the Arc
        let sum = AtomicUsize::new(0);
        old.run(2, &|i| {
            sum.fetch_add(i + 1, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 3);
    }
}
