//! Seeded weight initialisation (Xavier/Glorot and Kaiming/He schemes).
//!
//! All initialisers draw from an explicit [`rand::Rng`] so every experiment
//! in the reproduction is reproducible from a `u64` seed.

use rand::Rng;

use crate::matrix::Matrix;

/// Samples a standard normal via the Box–Muller transform.
///
/// Implemented locally to avoid a `rand_distr` dependency.
pub fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        return r * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

/// Xavier/Glorot uniform initialisation: `U(±sqrt(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-limit..=limit)).collect();
    Matrix::from_vec(rows, cols, data).expect("sized by construction")
}

/// Kaiming/He normal initialisation for ReLU nets: `N(0, sqrt(2/fan_in))`.
pub fn kaiming_normal(rows: usize, cols: usize, fan_in: usize, rng: &mut impl Rng) -> Matrix {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    let data = (0..rows * cols).map(|_| sample_standard_normal(rng) * std).collect();
    Matrix::from_vec(rows, cols, data).expect("sized by construction")
}

/// Normal initialisation with explicit standard deviation (used by the
/// Pix2Pix reference implementation: `N(0, 0.02)`).
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
    let data = (0..rows * cols).map(|_| sample_standard_normal(rng) * std).collect();
    Matrix::from_vec(rows, cols, data).expect("sized by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(16, 48, &mut rng);
        let limit = (6.0 / 64.0_f32).sqrt();
        assert!(m.max_abs() <= limit + 1e-6);
    }

    #[test]
    fn kaiming_std_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = kaiming_normal(64, 64, 64, &mut rng);
        let mean = m.mean();
        let var =
            m.as_slice().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / m.len() as f32;
        let expected = 2.0 / 64.0;
        assert!((var - expected).abs() < expected * 0.3, "var = {var}");
    }

    #[test]
    fn normal_scales_with_std() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = normal(50, 50, 0.02, &mut rng);
        assert!(m.max_abs() < 0.15); // ~6 sigma bound
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(42));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(43));
        assert_ne!(a, c);
    }

    #[test]
    fn box_muller_is_finite_and_varied() {
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f32> = (0..1000).map(|_| sample_standard_normal(&mut rng)).collect();
        assert!(samples.iter().all(|x| x.is_finite()));
        let mean = samples.iter().sum::<f32>() / 1000.0;
        assert!(mean.abs() < 0.15, "mean = {mean}");
    }
}
