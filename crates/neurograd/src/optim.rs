//! Persistent parameter storage and optimisers (SGD, Adam).
//!
//! Parameters live in a [`ParamStore`] that outlives the per-step
//! [`crate::tape::Tape`]. Each training step:
//!
//! 1. build a fresh tape, inserting parameters with [`ParamStore::var`],
//! 2. compute the loss and call [`Tape::backward`](crate::tape::Tape::backward),
//! 3. route gradients back with [`ParamStore::absorb_grads`],
//! 4. call [`Optimizer::step`] and then [`ParamStore::zero_grad`].

use crate::matrix::Matrix;
use crate::tape::{ParamId, Tape, Var};

/// One persistent trainable tensor with its gradient and Adam state.
#[derive(Debug, Clone)]
pub struct Param {
    /// Human-readable name (layer/field), for debugging and inspection.
    pub name: String,
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
    /// Adam first-moment state.
    pub m: Matrix,
    /// Adam second-moment state.
    pub v: Matrix,
}

/// Container owning every trainable parameter of a model.
#[derive(Debug, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self { params: Vec::new() }
    }

    /// Registers a new parameter and returns its id.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(Param {
            name: name.into(),
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Read-only access to a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this store.
    pub fn param(&self, id: ParamId) -> &Param {
        &self.params[id.0]
    }

    /// Mutable access to a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this store.
    pub fn param_mut(&mut self, id: ParamId) -> &mut Param {
        &mut self.params[id.0]
    }

    /// Iterates over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    /// The id of the `i`-th registered parameter (registration order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn id_at(&self, i: usize) -> ParamId {
        assert!(i < self.params.len(), "parameter index {i} out of range");
        ParamId(i)
    }

    /// Inserts parameter `id` into `tape` as a gradient-tracked leaf.
    pub fn var(&self, id: ParamId, tape: &mut Tape) -> Var {
        tape.param_leaf(id, self.params[id.0].value.clone())
    }

    /// Moves all parameter gradients recorded on `tape` into the store,
    /// accumulating into existing gradients.
    pub fn absorb_grads(&mut self, tape: &mut Tape) {
        for (id, grad) in tape.take_param_grads() {
            self.params[id.0].grad.add_scaled_inplace(&grad, 1.0);
        }
    }

    /// Resets all gradients to zero.
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            p.grad.map_inplace(|_| 0.0);
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad.as_slice().iter().map(|&g| g * g).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales gradients so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &mut self.params {
                p.grad.map_inplace(|g| g * s);
            }
        }
    }

    /// Serialises all parameter values (order = registration order).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.params.iter().map(|p| p.value.clone()).collect()
    }

    /// Restores parameter values from a [`ParamStore::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match the store layout.
    pub fn restore(&mut self, snapshot: &[Matrix]) {
        assert_eq!(snapshot.len(), self.params.len(), "snapshot length mismatch");
        for (p, s) in self.params.iter_mut().zip(snapshot) {
            assert_eq!(p.value.shape(), s.shape(), "snapshot shape mismatch");
            p.value = s.clone();
        }
    }
}

/// A gradient-descent update rule over a [`ParamStore`].
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update using the gradients currently in the store.
    fn step(&mut self, store: &mut ParamStore);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient in `[0, 1)`; 0 disables momentum.
    pub momentum: f32,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.0 }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        for p in &mut store.params {
            if self.momentum > 0.0 {
                // reuse Adam's m buffer as the momentum buffer
                let momentum = self.momentum;
                p.m.map_inplace(|m| m * momentum);
                p.m.add_scaled_inplace(&p.grad, 1.0);
                p.value.add_scaled_inplace(&p.m, -self.lr);
            } else {
                p.value.add_scaled_inplace(&p.grad, -self.lr);
            }
        }
    }
}

/// Adam optimiser (Kingma & Ba), the optimiser used by the paper.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// Decoupled weight decay (0 disables).
    pub weight_decay: f32,
    t: u64,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, t: 0 }
    }

    /// Adam with decoupled weight decay (AdamW-style).
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        Self { weight_decay, ..Self::new(lr) }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Sets a new learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for p in &mut store.params {
            if self.weight_decay > 0.0 {
                let wd = self.weight_decay * self.lr;
                let value = p.value.clone();
                p.value.add_scaled_inplace(&value, -wd);
            }
            for i in 0..p.value.len() {
                let g = p.grad.as_slice()[i];
                let m = self.beta1 * p.m.as_slice()[i] + (1.0 - self.beta1) * g;
                let v = self.beta2 * p.v.as_slice()[i] + (1.0 - self.beta2) * g * g;
                p.m.as_mut_slice()[i] = m;
                p.v.as_mut_slice()[i] = v;
                let m_hat = m / b1t;
                let v_hat = v / b2t;
                p.value.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Minimises f(w) = (w - 3)² and checks convergence to 3.
    fn optimise_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::scalar(0.0));
        for _ in 0..steps {
            let mut tape = Tape::new();
            let wv = store.var(w, &mut tape);
            let loss = tape.mse_loss(wv, Arc::new(Matrix::scalar(3.0)));
            tape.backward(loss);
            store.absorb_grads(&mut tape);
            opt.step(&mut store);
            store.zero_grad();
        }
        store.param(w).value.item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = optimise_quadratic(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let w = optimise_quadratic(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = optimise_quadratic(&mut opt, 400);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_step_counter_advances() {
        let mut opt = Adam::new(0.01);
        let mut store = ParamStore::new();
        store.register("w", Matrix::scalar(1.0));
        assert_eq!(opt.steps(), 0);
        opt.step(&mut store);
        opt.step(&mut store);
        assert_eq!(opt.steps(), 2);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::scalar(1.0));
        let mut opt = Adam::with_weight_decay(0.1, 0.5);
        // zero gradient: only decay applies
        opt.step(&mut store);
        assert!(store.param(w).value.item() < 1.0);
    }

    #[test]
    fn absorb_grads_accumulates() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::scalar(2.0));
        for _ in 0..2 {
            let mut tape = Tape::new();
            let wv = store.var(w, &mut tape);
            let y = tape.mul(wv, wv);
            let loss = tape.sum_all(y);
            tape.backward(loss);
            store.absorb_grads(&mut tape);
        }
        // d(w²)/dw = 4 per pass, two passes accumulate to 8
        assert!((store.param(w).grad.item() - 8.0).abs() < 1e-5);
        store.zero_grad();
        assert_eq!(store.param(w).grad.item(), 0.0);
    }

    #[test]
    fn clip_grad_norm_caps_global_norm() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::scalar(0.0));
        store.param_mut(w).grad = Matrix::scalar(10.0);
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::scalar(5.0));
        let snap = store.snapshot();
        store.param_mut(w).value = Matrix::scalar(0.0);
        store.restore(&snap);
        assert_eq!(store.param(w).value.item(), 5.0);
    }

    #[test]
    fn num_scalars_counts_elements() {
        let mut store = ParamStore::new();
        store.register("a", Matrix::zeros(2, 3));
        store.register("b", Matrix::zeros(1, 4));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 10);
    }
}
