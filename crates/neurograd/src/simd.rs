//! Explicit f32 SIMD lanes with a bitwise-determinism contract.
//!
//! Every dense/sparse kernel in [`crate::kernels`] bottoms out in two
//! primitives defined here:
//!
//! - [`LaneEngine::axpy`] — `acc[j] += a * x[j]` across a row. This is
//!   element-wise: lane j only ever touches `acc[j]`, so the vector,
//!   portable and scalar paths produce the *same float per element* by
//!   construction.
//! - [`LaneEngine::dot`] — a lane-parallel dot product with a **fixed
//!   reduction shape**: [`LANES`] independent accumulators walk the
//!   inputs in `LANES`-wide chunks, are combined by the fixed pairwise
//!   tree in [`reduce_tree`], and the `len % LANES` remainder is then
//!   added one element at a time in index order. The scalar path
//!   ([`LaneEngine::Scalar`]) *emulates that exact sequence* rather than
//!   summing left-to-right, so `dot` is bitwise identical whether it ran
//!   on AVX2, on the portable auto-vectorized loop, or one element at a
//!   time.
//!
//! The contract, relied on by the kernel proptests and the serving
//! stack's parity pins: for the same inputs, every engine returns the
//! same bits. SIMD on/off (and lane width, and ISA) are performance
//! knobs, never numerics knobs.
//!
//! Why it holds on real hardware: the chunk loops contain only
//! independent multiplies and adds (no horizontal ops), rustc never
//! enables floating-point contraction, and the AVX2 clones only enable
//! `avx2` — **not** `fma` — so LLVM lowers `acc + a * x` to separate
//! `vmulps`/`vaddps`, matching scalar `f32` semantics exactly.
//!
//! SIMD can be disabled process-wide with [`set_enabled`] (the benches'
//! `--simd off`); kernels snapshot [`active`] once per call, so a kernel
//! invocation never mixes engines mid-row.
//!
//! Besides the two primitives, [`LaneEngine`] exposes **row-level fused
//! entry points** ([`LaneEngine::gemm_row`] and friends) that run a whole
//! output row's accumulation behind one ISA boundary.
//! `#[target_feature]` functions cannot be inlined into their callers, so
//! a per-`axpy` dispatch pays an opaque call every `k`-step — hoisting
//! the boundary to the row amortizes it across the whole inner loop. The
//! fused forms execute the *same* primitive calls in the same order, so
//! they change nothing about the bits.

use std::sync::atomic::{AtomicBool, Ordering};

/// Lane count of the portable chunk loops (f32 × 8 = 256 bits, one AVX2
/// register). Fixed — results are defined in terms of this width, so it
/// never varies with the host ISA.
pub const LANES: usize = 8;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Process-wide SIMD switch. `false` routes every kernel through the
/// scalar lane-emulation path (same bits, element-at-a-time).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the lane engines are enabled (default: yes).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The fixed lane width the numerics are defined in terms of.
pub fn lane_width() -> usize {
    LANES
}

/// Which implementation a kernel invocation will run its inner loops on.
///
/// Snapshot once per kernel call via [`active`] and reuse for every row,
/// so a concurrent [`set_enabled`] flip can't mix engines inside one
/// output (harmless for bits, confusing for profiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneEngine {
    /// `#[target_feature(enable = "avx2")]` clones of the portable
    /// loops; selected only after runtime detection on x86-64.
    Avx2,
    /// The portable `LANES`-wide chunk loops at the baseline target ISA
    /// (LLVM auto-vectorizes the fixed-width inner loops).
    Portable,
    /// Scalar emulation of the lane schedule — identical float sequence,
    /// one element at a time. Used when SIMD is switched off, and as the
    /// reference twin in the bitwise proptests.
    Scalar,
}

/// The engine the current process/ISA/switch state selects.
pub fn active() -> LaneEngine {
    if !enabled() {
        return LaneEngine::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return LaneEngine::Avx2;
        }
    }
    LaneEngine::Portable
}

/// One human-readable line describing the lane configuration, printed by
/// the benches next to the host-parallelism line so artifacts from
/// different machines stay interpretable.
pub fn isa_report() -> String {
    let engine = match active() {
        LaneEngine::Avx2 => "avx2 (runtime-detected)",
        LaneEngine::Portable => "portable (baseline ISA, auto-vectorized)",
        LaneEngine::Scalar => "scalar lane emulation (simd off)",
    };
    format!(
        "simd: {} lanes={} arch={} enabled={}",
        engine,
        LANES,
        std::env::consts::ARCH,
        enabled()
    )
}

/// The fixed pairwise reduction tree over the `LANES` accumulators:
/// `(a0+a4)+(a2+a6)` + `(a1+a5)+(a3+a7)` — the shape AVX2's natural
/// 8→4→2→1 halving produces. Every engine funnels its accumulators
/// through this exact tree.
#[inline(always)]
pub fn reduce_tree(acc: [f32; LANES]) -> f32 {
    let s = [acc[0] + acc[4], acc[1] + acc[5], acc[2] + acc[6], acc[3] + acc[7]];
    let t = [s[0] + s[2], s[1] + s[3]];
    t[0] + t[1]
}

/// Portable lane loop for `acc[j] += a * x[j]`.
#[inline(always)]
fn axpy_lanes(acc: &mut [f32], a: f32, x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    let mut ai = acc.chunks_exact_mut(LANES);
    let mut xi = x.chunks_exact(LANES);
    for (o, v) in (&mut ai).zip(&mut xi) {
        for l in 0..LANES {
            o[l] += a * v[l];
        }
    }
    for (o, &v) in ai.into_remainder().iter_mut().zip(xi.remainder()) {
        *o += a * v;
    }
}

/// Scalar twin of [`axpy_lanes`]: element-wise op, so plain iteration
/// already produces the identical float per element.
#[inline(always)]
fn axpy_scalar(acc: &mut [f32], a: f32, x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    for (o, &v) in acc.iter_mut().zip(x) {
        *o += a * v;
    }
}

/// Portable lane loop for the fixed-shape dot product.
#[inline(always)]
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let mut ai = a.chunks_exact(LANES);
    let mut bi = b.chunks_exact(LANES);
    for (av, bv) in (&mut ai).zip(&mut bi) {
        for l in 0..LANES {
            acc[l] += av[l] * bv[l];
        }
    }
    let mut total = reduce_tree(acc);
    for (&av, &bv) in ai.remainder().iter().zip(bi.remainder()) {
        total += av * bv;
    }
    total
}

/// Scalar twin of [`dot_lanes`]: walks the same `LANES` independent
/// accumulators in the same order, reduces through the same tree, then
/// adds the remainder in index order — the identical float sequence,
/// one element at a time.
#[inline(always)]
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let chunks = n / LANES;
    let mut acc = [0.0f32; LANES];
    for c in 0..chunks {
        let base = c * LANES;
        for l in 0..LANES {
            acc[l] += a[base + l] * b[base + l];
        }
    }
    let mut total = reduce_tree(acc);
    for i in chunks * LANES..n {
        total += a[i] * b[i];
    }
    total
}

/// Portable row kernel: `out = Σ_k a_row[k] · b[k]` (rows of `b` are
/// `out.len()` wide), zeroing `out` first — the row-major GEMM inner
/// pair, accumulated in `k` order.
#[inline(always)]
fn gemm_row_lanes(out: &mut [f32], a_row: &[f32], b: &[f32]) {
    out.fill(0.0);
    let n = out.len();
    for (k, &av) in a_row.iter().enumerate() {
        axpy_lanes(out, av, &b[k * n..(k + 1) * n]);
    }
}

/// Scalar twin of [`gemm_row_lanes`] — same `k` order, element-wise adds.
#[inline(always)]
fn gemm_row_scalar(out: &mut [f32], a_row: &[f32], b: &[f32]) {
    out.fill(0.0);
    let n = out.len();
    for (k, &av) in a_row.iter().enumerate() {
        axpy_scalar(out, av, &b[k * n..(k + 1) * n]);
    }
}

/// Portable row kernel for the transposed-A product: coefficients are
/// read at stride `stride` from `a` (`a[k * stride]`, the k-th element of
/// one column of a row-major matrix).
#[inline(always)]
fn gemm_row_strided_lanes(out: &mut [f32], a: &[f32], stride: usize, b: &[f32]) {
    out.fill(0.0);
    let n = out.len();
    let k = if n == 0 { 0 } else { b.len() / n };
    for kk in 0..k {
        axpy_lanes(out, a[kk * stride], &b[kk * n..(kk + 1) * n]);
    }
}

/// Scalar twin of [`gemm_row_strided_lanes`].
#[inline(always)]
fn gemm_row_strided_scalar(out: &mut [f32], a: &[f32], stride: usize, b: &[f32]) {
    out.fill(0.0);
    let n = out.len();
    let k = if n == 0 { 0 } else { b.len() / n };
    for kk in 0..k {
        axpy_scalar(out, a[kk * stride], &b[kk * n..(kk + 1) * n]);
    }
}

/// Portable row kernel for the B-transposed product: `out[j] =
/// dot(a_row, b[j])` where rows of `b` are `a_row.len()` wide.
#[inline(always)]
fn dot_row_lanes(out: &mut [f32], a_row: &[f32], b: &[f32]) {
    let k = a_row.len();
    for (j, o) in out.iter_mut().enumerate() {
        *o = dot_lanes(a_row, &b[j * k..(j + 1) * k]);
    }
}

/// Scalar twin of [`dot_row_lanes`] — every element runs the scalar
/// emulation of the fixed lane schedule.
#[inline(always)]
fn dot_row_scalar(out: &mut [f32], a_row: &[f32], b: &[f32]) {
    let k = a_row.len();
    for (j, o) in out.iter_mut().enumerate() {
        *o = dot_scalar(a_row, &b[j * k..(j + 1) * k]);
    }
}

/// Portable row kernel for one CSR row: `out = Σ_e vals[e] ·
/// x[cols[e]]`, zeroing `out` first; entries in stored (structural)
/// order.
#[inline(always)]
fn spmm_row_lanes(out: &mut [f32], cols: &[usize], vals: &[f32], x: &[f32]) {
    out.fill(0.0);
    let n = out.len();
    for (&c, &v) in cols.iter().zip(vals) {
        axpy_lanes(out, v, &x[c * n..(c + 1) * n]);
    }
}

/// Scalar twin of [`spmm_row_lanes`].
#[inline(always)]
fn spmm_row_scalar(out: &mut [f32], cols: &[usize], vals: &[f32], x: &[f32]) {
    out.fill(0.0);
    let n = out.len();
    for (&c, &v) in cols.iter().zip(vals) {
        axpy_scalar(out, v, &x[c * n..(c + 1) * n]);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    // AVX2 clones of the portable loops. Enabling only `avx2` (never
    // `fma`) keeps mul/add as separate rounding steps, so these are
    // bit-exact with the portable and scalar paths. The row-level clones
    // exist because `#[target_feature]` functions can't inline into
    // plain callers: wrapping the whole row loop keeps the opaque call
    // off the per-`axpy` hot path.
    #[target_feature(enable = "avx2")]
    pub(super) fn axpy(acc: &mut [f32], a: f32, x: &[f32]) {
        super::axpy_lanes(acc, a, x);
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
        super::dot_lanes(a, b)
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn gemm_row(out: &mut [f32], a_row: &[f32], b: &[f32]) {
        super::gemm_row_lanes(out, a_row, b);
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn gemm_row_strided(out: &mut [f32], a: &[f32], stride: usize, b: &[f32]) {
        super::gemm_row_strided_lanes(out, a, stride, b);
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn dot_row(out: &mut [f32], a_row: &[f32], b: &[f32]) {
        super::dot_row_lanes(out, a_row, b);
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn spmm_row(out: &mut [f32], cols: &[usize], vals: &[f32], x: &[f32]) {
        super::spmm_row_lanes(out, cols, vals, x);
    }
}

/// Expands to the x86-64 `unsafe` dispatch into an AVX2 clone, or the
/// portable fallback elsewhere.
macro_rules! avx2_call {
    ($name:ident ( $($arg:expr),* ), $fallback:ident) => {{
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active()` only yields `Avx2` after
        // `is_x86_feature_detected!("avx2")` succeeded in this process.
        unsafe { x86::$name($($arg),*) }
        #[cfg(not(target_arch = "x86_64"))]
        $fallback($($arg),*)
    }};
}

impl LaneEngine {
    /// `acc[j] += a * x[j]` for every j. Bitwise identical on every
    /// engine (element-wise, no reduction).
    #[inline]
    pub fn axpy(self, acc: &mut [f32], a: f32, x: &[f32]) {
        match self {
            LaneEngine::Avx2 => avx2_call!(axpy(acc, a, x), axpy_lanes),
            LaneEngine::Portable => axpy_lanes(acc, a, x),
            LaneEngine::Scalar => axpy_scalar(acc, a, x),
        }
    }

    /// Fixed-shape dot product of `a` and `b`. Bitwise identical on
    /// every engine (same lane schedule, same reduction tree).
    #[inline]
    pub fn dot(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            LaneEngine::Avx2 => avx2_call!(dot(a, b), dot_lanes),
            LaneEngine::Portable => dot_lanes(a, b),
            LaneEngine::Scalar => dot_scalar(a, b),
        }
    }

    /// One GEMM output row: `out = Σ_k a_row[k] · b[k]` (rows of `b` are
    /// `out.len()` wide), `out` overwritten, accumulation in `k` order —
    /// exactly an [`LaneEngine::axpy`] per `k`, fused behind one ISA
    /// boundary.
    #[inline]
    pub fn gemm_row(self, out: &mut [f32], a_row: &[f32], b: &[f32]) {
        match self {
            LaneEngine::Avx2 => avx2_call!(gemm_row(out, a_row, b), gemm_row_lanes),
            LaneEngine::Portable => gemm_row_lanes(out, a_row, b),
            LaneEngine::Scalar => gemm_row_scalar(out, a_row, b),
        }
    }

    /// [`LaneEngine::gemm_row`] with the coefficients read at stride
    /// `stride` from `a` (one column of a row-major matrix).
    #[inline]
    pub fn gemm_row_strided(self, out: &mut [f32], a: &[f32], stride: usize, b: &[f32]) {
        match self {
            LaneEngine::Avx2 => {
                avx2_call!(gemm_row_strided(out, a, stride, b), gemm_row_strided_lanes)
            }
            LaneEngine::Portable => gemm_row_strided_lanes(out, a, stride, b),
            LaneEngine::Scalar => gemm_row_strided_scalar(out, a, stride, b),
        }
    }

    /// One B-transposed GEMM output row: `out[j] = dot(a_row, b[j])`
    /// (rows of `b` are `a_row.len()` wide) — an [`LaneEngine::dot`] per
    /// element, fused behind one ISA boundary.
    #[inline]
    pub fn dot_row(self, out: &mut [f32], a_row: &[f32], b: &[f32]) {
        match self {
            LaneEngine::Avx2 => avx2_call!(dot_row(out, a_row, b), dot_row_lanes),
            LaneEngine::Portable => dot_row_lanes(out, a_row, b),
            LaneEngine::Scalar => dot_row_scalar(out, a_row, b),
        }
    }

    /// One CSR×dense output row: `out = Σ_e vals[e] · x[cols[e]]`, `out`
    /// overwritten, entries in stored order — an [`LaneEngine::axpy`] per
    /// structural entry, fused behind one ISA boundary.
    #[inline]
    pub fn spmm_row(self, out: &mut [f32], cols: &[usize], vals: &[f32], x: &[f32]) {
        match self {
            LaneEngine::Avx2 => avx2_call!(spmm_row(out, cols, vals, x), spmm_row_lanes),
            LaneEngine::Portable => spmm_row_lanes(out, cols, vals, x),
            LaneEngine::Scalar => spmm_row_scalar(out, cols, vals, x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engines() -> Vec<LaneEngine> {
        let mut e = vec![LaneEngine::Portable, LaneEngine::Scalar];
        if active() == LaneEngine::Avx2 {
            e.push(LaneEngine::Avx2);
        }
        e
    }

    fn data(n: usize, salt: u32) -> Vec<f32> {
        (0..n)
            .map(|i| {
                if i % 17 == 0 {
                    0.0
                } else {
                    ((i as f32) * 0.37 + salt as f32 * 0.11).sin() * 3.0
                }
            })
            .collect()
    }

    #[test]
    fn axpy_engines_agree_bitwise_across_lengths() {
        for n in [0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100] {
            let x = data(n, 1);
            let base = data(n, 2);
            let mut want: Option<Vec<u32>> = None;
            for eng in engines() {
                let mut acc = base.clone();
                eng.axpy(&mut acc, 1.2345, &x);
                let bits: Vec<u32> = acc.iter().map(|v| v.to_bits()).collect();
                match &want {
                    None => want = Some(bits),
                    Some(w) => assert_eq!(w, &bits, "axpy diverged at n={n} on {eng:?}"),
                }
            }
        }
    }

    #[test]
    fn dot_engines_agree_bitwise_across_lengths() {
        for n in [0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100] {
            let a = data(n, 3);
            let b = data(n, 4);
            let mut want: Option<u32> = None;
            for eng in engines() {
                let got = eng.dot(&a, &b).to_bits();
                match want {
                    None => want = Some(got),
                    Some(w) => assert_eq!(w, got, "dot diverged at n={n} on {eng:?}"),
                }
            }
        }
    }

    #[test]
    fn dot_is_the_fixed_tree_not_sequential_sum() {
        // With 8 or more elements the lane schedule differs from a plain
        // left-to-right sum for generic data; this pins that the scalar
        // twin really emulates the tree rather than falling back to the
        // naive order.
        let a = data(24, 5);
        let b = data(24, 6);
        let mut acc = [0.0f32; LANES];
        for c in 0..3 {
            for l in 0..LANES {
                acc[l] += a[c * LANES + l] * b[c * LANES + l];
            }
        }
        let want = reduce_tree(acc).to_bits();
        assert_eq!(LaneEngine::Scalar.dot(&a, &b).to_bits(), want);
        assert_eq!(LaneEngine::Portable.dot(&a, &b).to_bits(), want);
    }

    #[test]
    fn isa_report_mentions_lane_width() {
        assert!(isa_report().contains("lanes=8"), "{}", isa_report());
    }

    #[test]
    fn disable_routes_to_scalar() {
        // `set_enabled` is process-global; restore before returning so
        // concurrently running tests only ever observe a bit-identical
        // engine swap (the whole point of the contract).
        set_enabled(false);
        assert_eq!(active(), LaneEngine::Scalar);
        set_enabled(true);
        assert_ne!(active(), LaneEngine::Scalar);
    }
}
