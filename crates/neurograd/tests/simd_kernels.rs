//! Property-based pins for the SIMD lane backend: every lane engine
//! (vector, portable, scalar emulation) produces the **same float bits**,
//! and every SIMD-dispatching kernel matches its scalar lane-emulation
//! twin bitwise — at odd shapes (remainder lanes, 1-row/1-col, empty
//! sparse rows) and at any thread count. Together with
//! `parallel_kernels.rs` (kernels vs the serial seed reference) this
//! closes the contract: results are invariant to thread count AND to the
//! SIMD toggle.
//!
//! Engine-level checks compare [`LaneEngine`] methods directly instead of
//! flipping the global toggle, so concurrently-running tests cannot race
//! on it; the one toggle test that does flip it is safe regardless,
//! because all engines are bitwise equal by construction.

use neurograd::kernels::{self, reference};
use neurograd::simd::{self, LaneEngine};
use neurograd::{pool, CsrMatrix, Matrix};
use proptest::prelude::*;

fn matrix_from(rows: usize, cols: usize, seed: &[f32]) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let s = seed[i % seed.len().max(1)];
            if i % 17 == 0 {
                0.0
            } else {
                s * (1.0 + (i % 7) as f32 * 0.25)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("sized")
}

fn bitwise_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The engines under comparison: the scalar lane emulation, the portable
/// fixed-width path, and whatever `active()` resolves to on this host
/// (the vector ISA when available — exercising e.g. the AVX2 clone
/// without ever invoking it on a host that lacks the feature).
fn engines() -> Vec<LaneEngine> {
    vec![LaneEngine::Scalar, LaneEngine::Portable, simd::active()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// axpy and dot agree bitwise across every lane engine at lengths
    /// that cover full chunks, remainder lanes and the empty slice.
    #[test]
    fn lane_engines_agree_bitwise(
        n in 0usize..70,
        scale in -2.0f32..2.0,
        seed in proptest::collection::vec(-2.0f32..2.0, 1..16),
    ) {
        let a: Vec<f32> = (0..n).map(|i| seed[i % seed.len()] * (1.0 + (i % 5) as f32)).collect();
        let b: Vec<f32> = (0..n).map(|i| seed[(i + 3) % seed.len()] - 0.5).collect();
        let engs = engines();
        let dots: Vec<f32> = engs.iter().map(|e| e.dot(&a, &b)).collect();
        for d in &dots[1..] {
            prop_assert_eq!(d.to_bits(), dots[0].to_bits(), "dot diverged across engines");
        }
        let accs: Vec<Vec<f32>> = engs
            .iter()
            .map(|e| {
                let mut acc = b.clone();
                e.axpy(&mut acc, scale, &a);
                acc
            })
            .collect();
        for acc in &accs[1..] {
            prop_assert!(bitwise_eq(acc, &accs[0]), "axpy diverged across engines");
        }
    }

    /// Dense kernels at deliberately awkward shapes — 1-row, 1-col and
    /// non-multiple-of-lane-width columns — match the scalar reference
    /// twin bitwise at every thread count.
    #[test]
    fn dense_kernels_match_reference_at_odd_shapes(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..20,
        threads in 1usize..5,
        seed in proptest::collection::vec(-2.0f32..2.0, 1..16),
    ) {
        pool::configure_threads(threads);
        let a = matrix_from(m, k, &seed);
        let b = matrix_from(k, n, &seed);
        prop_assert!(bitwise_eq(a.matmul(&b).as_slice(), reference::matmul(&a, &b).as_slice()));
        let at = matrix_from(k, m, &seed);
        prop_assert!(bitwise_eq(
            at.matmul_tn(&b).as_slice(),
            reference::matmul_tn(&at, &b).as_slice()
        ));
        let bt = matrix_from(n, k, &seed);
        prop_assert!(bitwise_eq(
            a.matmul_nt(&bt).as_slice(),
            reference::matmul_nt(&a, &bt).as_slice()
        ));
    }

    /// The masked row-subset kernels (incremental-forward splice path)
    /// write listed rows bitwise equal to the full-matrix kernels and
    /// leave unlisted rows untouched.
    #[test]
    fn row_subset_kernels_match_full_kernels(
        m in 2usize..12,
        k in 1usize..10,
        n in 1usize..18,
        threads in 1usize..5,
        row_mask in proptest::collection::vec(0usize..2, 2..12),
        seed in proptest::collection::vec(-2.0f32..2.0, 1..16),
    ) {
        pool::configure_threads(threads);
        let rows: Vec<usize> = (0..m).filter(|&r| row_mask[r % row_mask.len()] == 1).collect();
        let a = matrix_from(m, k, &seed);
        let w = matrix_from(k, n, &seed);
        let bias: Vec<f32> = (0..n).map(|j| seed[j % seed.len()] * 0.5).collect();

        let mut full = vec![0.0f32; m * n];
        kernels::matmul_into(&a, &w, &mut full);
        let mut masked = vec![-7.0f32; m * n];
        kernels::matmul_rows_into(&a, &w, &rows, &mut masked);
        for r in 0..m {
            let (got, want): (&[f32], Vec<f32>) = if rows.contains(&r) {
                (&masked[r * n..(r + 1) * n], full[r * n..(r + 1) * n].to_vec())
            } else {
                (&masked[r * n..(r + 1) * n], vec![-7.0; n])
            };
            prop_assert!(bitwise_eq(got, &want), "matmul_rows row {}", r);
        }

        let mut fused_full = vec![0.0f32; m * n];
        kernels::linear_act_into(&a, &w, &bias, &mut fused_full, |v| v.max(0.0));
        let mut fused_rows = vec![0.0f32; m * n];
        kernels::linear_act_rows_into(&a, &w, &bias, &rows, &mut fused_rows, |v| v.max(0.0));
        for &r in &rows {
            prop_assert!(bitwise_eq(
                &fused_rows[r * n..(r + 1) * n],
                &fused_full[r * n..(r + 1) * n]
            ));
        }
        // the fused kernel == unfused matmul → +bias → act, bitwise
        for (j, v) in fused_full.iter().enumerate() {
            let want = (full[j] + bias[j % n]).max(0.0);
            prop_assert_eq!(v.to_bits(), want.to_bits());
        }
    }

    /// Sparse kernels with structurally empty rows (and the all-empty
    /// matrix) match the reference bitwise; empty rows come out as exact
    /// `+0.0` rows.
    #[test]
    fn spmm_with_empty_rows_matches_reference(
        rows in 1usize..24,
        cols in 1usize..24,
        n in 1usize..12,
        threads in 1usize..5,
        entries in proptest::collection::vec((0usize..24, 0usize..24, -3.0f32..3.0), 0..48),
        seed in proptest::collection::vec(-2.0f32..2.0, 1..16),
    ) {
        pool::configure_threads(threads);
        // half the rows are forced empty: triplets only land on even rows
        let triplets: Vec<(usize, usize, f32)> = entries
            .iter()
            .map(|&(r, c, v)| ((r % rows) & !1usize, c % cols, v))
            .collect();
        let s = CsrMatrix::from_triplets(rows, cols, &triplets);
        let x = matrix_from(cols, n, &seed);
        let got = s.spmm(&x);
        let want = reference::spmm(&s, &x);
        prop_assert!(bitwise_eq(got.as_slice(), want.as_slice()));
        for r in 0..rows {
            if s.row_entries(r).next().is_none() {
                for v in &got.as_slice()[r * n..(r + 1) * n] {
                    prop_assert_eq!(v.to_bits(), 0.0f32.to_bits(), "empty row must be +0.0");
                }
            }
        }
        let mut masked = vec![0.0f32; rows * n];
        let listed: Vec<usize> = (0..rows).step_by(2).collect();
        kernels::spmm_rows_into(&s, &x, &listed, &mut masked);
        for &r in &listed {
            prop_assert!(bitwise_eq(&masked[r * n..(r + 1) * n], &want.as_slice()[r * n..(r + 1) * n]));
        }
    }
}

/// Flipping the global SIMD toggle routes through the scalar emulation
/// and still produces the same bits as the vector path.
#[test]
fn global_toggle_is_bitwise_invisible() {
    let a = matrix_from(9, 11, &[0.7, -1.3, 2.1]);
    let b = matrix_from(11, 13, &[0.3, 1.9, -0.8]);
    let on = a.matmul(&b);
    simd::set_enabled(false);
    assert!(matches!(simd::active(), LaneEngine::Scalar));
    let off = a.matmul(&b);
    simd::set_enabled(true);
    assert!(bitwise_eq(on.as_slice(), off.as_slice()));
}

#[test]
fn isa_report_names_the_lane_width() {
    let report = simd::isa_report();
    assert!(report.contains("lanes=8"), "unexpected report: {report}");
}
