//! Property-based gradient verification: random op chains on random
//! shapes, checked against central finite differences.

use neurograd::{Matrix, Tape, Var};
use proptest::prelude::*;
use std::sync::Arc;

/// Ops a random chain can draw from.
#[derive(Debug, Clone, Copy)]
enum ChainOp {
    Relu,
    LeakyRelu,
    Sigmoid,
    Tanh,
    Scale,
    AddScalar,
    SelfMul,
    SelfAdd,
    Transpose,
}

fn apply(tape: &mut Tape, op: ChainOp, x: Var) -> Var {
    match op {
        ChainOp::Relu => tape.relu(x),
        ChainOp::LeakyRelu => tape.leaky_relu(x, 0.1),
        ChainOp::Sigmoid => tape.sigmoid(x),
        ChainOp::Tanh => tape.tanh(x),
        ChainOp::Scale => tape.scale(x, 0.7),
        ChainOp::AddScalar => tape.add_scalar(x, 0.3),
        ChainOp::SelfMul => tape.mul(x, x),
        ChainOp::SelfAdd => tape.add(x, x),
        ChainOp::Transpose => tape.transpose(x),
    }
}

fn op_from(code: u8) -> ChainOp {
    match code % 9 {
        0 => ChainOp::Relu,
        1 => ChainOp::LeakyRelu,
        2 => ChainOp::Sigmoid,
        3 => ChainOp::Tanh,
        4 => ChainOp::Scale,
        5 => ChainOp::AddScalar,
        6 => ChainOp::SelfMul,
        7 => ChainOp::SelfAdd,
        _ => ChainOp::Transpose,
    }
}

fn loss_of_chain(ops: &[ChainOp], x0: &Matrix) -> f32 {
    let mut tape = Tape::new();
    let x = tape.leaf_grad(x0.clone());
    let mut h = x;
    for &op in ops {
        h = apply(&mut tape, op, h);
    }
    let loss = tape.mean_all(h);
    tape.value(loss).item()
}

fn analytic_grad(ops: &[ChainOp], x0: &Matrix) -> Matrix {
    let mut tape = Tape::new();
    let x = tape.leaf_grad(x0.clone());
    let mut h = x;
    for &op in ops {
        h = apply(&mut tape, op, h);
    }
    let loss = tape.mean_all(h);
    tape.backward(loss);
    tape.grad(x).cloned().unwrap_or_else(|| Matrix::zeros(x0.rows(), x0.cols()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any chain of smooth unary ops has gradients matching finite diff.
    #[test]
    fn random_chain_gradients_match_finite_difference(
        rows in 1usize..4,
        cols in 1usize..4,
        codes in proptest::collection::vec(0u8..9, 1..5),
        data in proptest::collection::vec(0.05f32..1.5, 1..16),
    ) {
        // positive inputs keep us away from relu kinks where finite
        // differences are invalid
        let ops: Vec<ChainOp> = codes.iter().map(|&c| op_from(c)).collect();
        let mut d = data;
        d.resize(rows * cols, 0.4);
        let x0 = Matrix::from_vec(rows, cols, d).unwrap();
        let g = analytic_grad(&ops, &x0);
        let eps = 1e-2f32;
        for i in 0..x0.len() {
            let mut plus = x0.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = x0.clone();
            minus.as_mut_slice()[i] -= eps;
            let numeric = (loss_of_chain(&ops, &plus) - loss_of_chain(&ops, &minus)) / (2.0 * eps);
            let analytic = g.as_slice()[i];
            prop_assert!(
                (numeric - analytic).abs() <= 2e-2 * (1.0 + numeric.abs().max(analytic.abs())),
                "ops {ops:?}: grad[{i}] analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    /// Gather-then-sum equals indexing the gradient by occurrence count.
    #[test]
    fn gather_rows_gradient_counts_occurrences(
        rows in 1usize..6,
        idx in proptest::collection::vec(0usize..6, 1..10),
    ) {
        let idx: Vec<usize> = idx.into_iter().map(|i| i % rows).collect();
        let x0 = Matrix::full(rows, 2, 1.0);
        let mut tape = Tape::new();
        let x = tape.leaf_grad(x0);
        let g = tape.gather_rows(x, Arc::new(idx.clone()));
        let loss = tape.sum_all(g);
        tape.backward(loss);
        let grad = tape.grad(x).unwrap();
        for r in 0..rows {
            let count = idx.iter().filter(|&&i| i == r).count() as f32;
            prop_assert_eq!(grad[(r, 0)], count);
        }
    }

    /// backward() is idempotent per tape and deterministic across tapes.
    #[test]
    fn backward_is_deterministic(
        data in proptest::collection::vec(-1.0f32..1.0, 4),
    ) {
        let x0 = Matrix::from_vec(2, 2, data).unwrap();
        let run = || {
            let mut tape = Tape::new();
            let x = tape.leaf_grad(x0.clone());
            let y = tape.tanh(x);
            let z = tape.mul(y, y);
            let loss = tape.mean_all(z);
            tape.backward(loss);
            tape.grad(x).unwrap().clone()
        };
        let a = run();
        let b = run();
        prop_assert!(a.approx_eq(&b, 0.0));
    }
}
