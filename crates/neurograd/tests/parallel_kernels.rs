//! Property-based determinism checks for the parallel kernel backend:
//! every pooled kernel must be **bitwise identical** to the serial
//! reference (`neurograd::kernels::reference`, loop-for-loop the seed
//! implementation) at any thread count.
//!
//! Shapes are drawn both below and above the parallel-dispatch thresholds
//! so the chunked paths are genuinely exercised; the per-case thread count
//! reconfigures the process pool on the fly — which the pool supports
//! while in use.

use neurograd::kernels::reference;
use neurograd::{pool, CsrMatrix, Matrix, Tape};
use proptest::prelude::*;

fn matrix_from(rows: usize, cols: usize, seed: &[f32]) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let s = seed[i % seed.len().max(1)];
            // spread the seed values deterministically across the matrix,
            // with exact zeros sprinkled in to hit the skip-zero branches
            if i % 17 == 0 {
                0.0
            } else {
                s * (1.0 + (i % 7) as f32 * 0.25)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("sized")
}

fn bitwise_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pooled matmul (all three transpose variants) == serial reference.
    #[test]
    fn matmul_bitwise_matches_serial_at_any_thread_count(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        threads in 1usize..5,
        seed in proptest::collection::vec(-2.0f32..2.0, 1..16),
    ) {
        pool::configure_threads(threads);
        let a = matrix_from(m, k, &seed);
        let b = matrix_from(k, n, &seed);
        prop_assert!(bitwise_eq(&a.matmul(&b), &reference::matmul(&a, &b)));
        let at = matrix_from(k, m, &seed);
        prop_assert!(bitwise_eq(&at.matmul_tn(&b), &reference::matmul_tn(&at, &b)));
        let bt = matrix_from(n, k, &seed);
        prop_assert!(bitwise_eq(&a.matmul_nt(&bt), &reference::matmul_nt(&a, &bt)));
    }

    /// Pooled spmm and transpose-cached spmm_t == serial references
    /// (including the original scatter formulation of spmm_t).
    #[test]
    fn spmm_bitwise_matches_serial_at_any_thread_count(
        rows in 1usize..64,
        cols in 1usize..64,
        n in 1usize..24,
        threads in 1usize..5,
        entries in proptest::collection::vec((0usize..64, 0usize..64, -3.0f32..3.0), 0..256),
        seed in proptest::collection::vec(-2.0f32..2.0, 1..16),
    ) {
        pool::configure_threads(threads);
        let triplets: Vec<(usize, usize, f32)> =
            entries.iter().map(|&(r, c, v)| (r % rows, c % cols, v)).collect();
        let s = CsrMatrix::from_triplets(rows, cols, &triplets);
        let x = matrix_from(cols, n, &seed);
        prop_assert!(bitwise_eq(&s.spmm(&x), &reference::spmm(&s, &x)));
        let xt = matrix_from(rows, n, &seed);
        let scatter = reference::spmm_t_scatter(&s, &xt);
        prop_assert!(bitwise_eq(&s.spmm_t(&xt), &scatter), "cold transpose cache");
        prop_assert!(bitwise_eq(&s.spmm_t(&xt), &scatter), "warm transpose cache");
    }

    /// Pooled elementwise kernels == std-iterator semantics.
    #[test]
    fn elementwise_bitwise_matches_serial_at_any_thread_count(
        rows in 1usize..96,
        cols in 1usize..96,
        threads in 1usize..5,
        seed in proptest::collection::vec(-2.0f32..2.0, 1..16),
    ) {
        pool::configure_threads(threads);
        let a = matrix_from(rows, cols, &seed);
        let b = matrix_from(rows, cols, &seed[..seed.len().max(1) / 2 + 1]);
        let mapped = a.map(|v| v * 1.5 - 0.25);
        for (i, v) in mapped.as_slice().iter().enumerate() {
            prop_assert!(v.to_bits() == (a.as_slice()[i] * 1.5 - 0.25).to_bits());
        }
        let zipped = a.zip_map(&b, |x, y| x * y + 0.5);
        for (i, v) in zipped.as_slice().iter().enumerate() {
            let want = a.as_slice()[i] * b.as_slice()[i] + 0.5;
            prop_assert!(v.to_bits() == want.to_bits());
        }
    }

    /// A full tape forward + backward is bitwise thread-count-invariant:
    /// values and input gradients at N threads equal the 1-thread run.
    #[test]
    fn tape_forward_backward_is_thread_count_invariant(
        rows in 2usize..40,
        hidden in 2usize..40,
        threads in 2usize..5,
        seed in proptest::collection::vec(-1.5f32..1.5, 1..16),
        entries in proptest::collection::vec((0usize..40, 0usize..40, -1.0f32..1.0), 1..64),
    ) {
        let x0 = matrix_from(rows, hidden, &seed);
        let w0 = matrix_from(hidden, hidden, &seed);
        let triplets: Vec<(usize, usize, f32)> =
            entries.iter().map(|&(r, c, v)| (r % rows, c % rows, v)).collect();
        let s = std::sync::Arc::new(CsrMatrix::from_triplets(rows, rows, &triplets));
        let run = || {
            let mut tape = Tape::new();
            let x = tape.leaf_grad(x0.clone());
            let w = tape.leaf_grad(w0.clone());
            let h = tape.matmul(x, w);
            let h = tape.relu(h);
            let m = tape.spmm(std::sync::Arc::clone(&s), h);
            let m = tape.sigmoid(m);
            let loss = tape.mean_all(m);
            tape.backward(loss);
            (
                tape.value(loss).item(),
                tape.grad(x).cloned().unwrap(),
                tape.grad(w).cloned().unwrap(),
            )
        };
        pool::configure_threads(1);
        let (l1, gx1, gw1) = run();
        pool::configure_threads(threads);
        let (ln, gxn, gwn) = run();
        prop_assert!(l1.to_bits() == ln.to_bits());
        prop_assert!(bitwise_eq(&gx1, &gxn));
        prop_assert!(bitwise_eq(&gw1, &gwn));
    }
}
