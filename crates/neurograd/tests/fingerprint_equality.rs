//! Property: for finite tensors, fingerprint equality coincides with
//! observable (`PartialEq`) equality in both directions — including the
//! `-0.0` vs `+0.0` states that compare equal but differ bitwise.

use neurograd::{CsrMatrix, Matrix};
use proptest::prelude::*;

/// Decodes a small integer into a finite value with `±0.0`
/// over-represented, so the canonicalisation actually gets exercised.
fn decode(code: u8) -> f32 {
    match code {
        0..=2 => 0.0,
        3..=5 => -0.0,
        c => (f32::from(c) - 9.0) * 0.25,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matrix_fingerprint_matches_observable_equality(
        a in collection::vec(0u8..12, 6),
        b in collection::vec(0u8..12, 6),
    ) {
        let to_matrix = |v: &[u8]| {
            Matrix::from_vec(2, 3, v.iter().map(|&c| decode(c)).collect()).unwrap()
        };
        let (ma, mb) = (to_matrix(&a), to_matrix(&b));
        prop_assert_eq!(
            ma == mb,
            ma.fingerprint() == mb.fingerprint(),
            "PartialEq and fingerprint equality must coincide for finite tensors"
        );
    }

    #[test]
    fn csr_fingerprint_matches_observable_equality(
        a in collection::vec(0u8..12, 4),
        b in collection::vec(0u8..12, 4),
    ) {
        let build = |v: &[u8]| {
            CsrMatrix::from_triplets(
                2,
                2,
                &[
                    (0, 0, decode(v[0])),
                    (0, 1, decode(v[1])),
                    (1, 0, decode(v[2])),
                    (1, 1, decode(v[3])),
                ],
            )
        };
        let (sa, sb) = (build(&a), build(&b));
        prop_assert_eq!(sa == sb, sa.fingerprint() == sb.fingerprint());
        prop_assert_eq!(sa == sb, sa.content_fingerprint() == sb.content_fingerprint());
    }
}
