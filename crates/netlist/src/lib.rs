//! `vlsi-netlist` — circuit data model, Bookshelf I/O and synthetic
//! benchmark generation for the LHNN reproduction.
//!
//! The crate provides:
//!
//! * [`Circuit`] / [`Placement`] — cells, pins, nets, die outline and
//!   placed positions (the inputs to congestion prediction),
//! * [`GcellGrid`] — the G-cell tessellation of the die (paper Figure 1a),
//! * [`bookshelf`] — read/write the ISPD/DAC contest interchange format,
//! * [`synth`] — a generator of Superblue-like synthetic designs standing
//!   in for the contest benchmarks (see DESIGN.md for the substitution
//!   argument).
//!
//! # Example
//!
//! ```
//! use vlsi_netlist::synth::{generate, SynthConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SynthConfig { n_cells: 100, ..SynthConfig::default() };
//! let design = generate(&cfg)?;
//! assert!(design.circuit.num_nets() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bookshelf;
pub mod circuit;
pub mod delta;
pub mod error;
pub mod geometry;
pub mod grid;
pub mod stats;
pub mod synth;

pub use circuit::{Cell, CellId, CellKind, Circuit, Net, NetId, Pin, Placement};
pub use delta::{
    rebin_delta, rebin_delta_in_place, span_cells, DirtyReport, FilterCrossing, GcellSpan,
    NetRebin, PinMove, PlacementDelta,
};
pub use error::{NetlistError, Result};
pub use geometry::{Point, Rect};
pub use grid::{GcellCoord, GcellGrid};
pub use stats::{netlist_stats, rent_exponent, NetlistStats};
pub use synth::{generate, superblue_suite, SynthCircuit, SynthConfig};
