//! Netlist statistics: degree distributions and a Rent-exponent estimate.
//!
//! These quantify how Superblue-like a (synthetic or parsed) circuit is —
//! the evidence behind the dataset substitution argument in DESIGN.md.
//! Real netlists have: a heavy 2-pin mass with a geometric-ish tail, and a
//! Rent exponent `p ∈ [0.5, 0.8]` (terminals `T ≈ t·Gᵖ` for partitions of
//! `G` gates).

use std::collections::{HashMap, HashSet};

use crate::circuit::Circuit;

/// Summary statistics of a circuit's netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Net-degree histogram: `histogram[d]` = number of nets with `d` pins
    /// (index 0 and 1 unused for valid circuits).
    pub degree_histogram: Vec<usize>,
    /// Mean net degree.
    pub mean_degree: f64,
    /// Maximum net degree.
    pub max_degree: usize,
    /// Fraction of 2-pin nets.
    pub two_pin_fraction: f64,
    /// Mean number of distinct nets touching a cell.
    pub mean_cell_fanout: f64,
}

/// Computes netlist statistics.
pub fn netlist_stats(circuit: &Circuit) -> NetlistStats {
    let mut histogram = Vec::new();
    let mut total = 0usize;
    for net in circuit.nets() {
        let d = net.degree();
        if histogram.len() <= d {
            histogram.resize(d + 1, 0);
        }
        histogram[d] += 1;
        total += d;
    }
    let n_nets = circuit.num_nets().max(1);
    let two_pin = histogram.get(2).copied().unwrap_or(0);
    let cell_nets = circuit.cell_to_nets();
    let mean_cell_fanout = if circuit.num_cells() == 0 {
        0.0
    } else {
        cell_nets.iter().map(Vec::len).sum::<usize>() as f64 / circuit.num_cells() as f64
    };
    NetlistStats {
        mean_degree: total as f64 / n_nets as f64,
        max_degree: histogram.len().saturating_sub(1),
        two_pin_fraction: two_pin as f64 / n_nets as f64,
        mean_cell_fanout,
        degree_histogram: histogram,
    }
}

/// Estimates the Rent exponent by random-partition sampling.
///
/// For each sampled block size `G`, draws random connected-ish groups of
/// `G` movable cells (BFS over the net connectivity from a random seed
/// cell) and counts external terminals `T` (nets crossing the block
/// boundary). Fits `log T = log t + p·log G` by least squares.
///
/// Returns `None` for circuits with fewer than 64 movable cells (too small
/// to fit). The `seed` makes sampling deterministic.
pub fn rent_exponent(circuit: &Circuit, seed: u64) -> Option<f64> {
    let movable: Vec<u32> = (0..circuit.num_cells() as u32)
        .filter(|&i| !circuit.cells()[i as usize].is_terminal())
        .collect();
    if movable.len() < 64 {
        return None;
    }
    let cell_nets = circuit.cell_to_nets();

    // net -> cells map
    let mut net_cells: Vec<Vec<u32>> = vec![Vec::new(); circuit.num_nets()];
    for (ni, net) in circuit.nets().iter().enumerate() {
        for pin in &net.pins {
            net_cells[ni].push(pin.cell.0);
        }
        net_cells[ni].dedup();
    }

    // simple deterministic xorshift to avoid threading a full RNG
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let sizes = [8usize, 16, 32, 64];
    let mut points = Vec::new();
    for &g in &sizes {
        if g * 2 > movable.len() {
            break;
        }
        let mut t_sum = 0.0f64;
        let samples = 8;
        for _ in 0..samples {
            // BFS cluster of size g from a random movable cell
            let start = movable[(next() as usize) % movable.len()];
            let mut block: HashSet<u32> = HashSet::new();
            let mut queue = vec![start];
            while let Some(c) = queue.pop() {
                if block.len() >= g {
                    break;
                }
                if !block.insert(c) {
                    continue;
                }
                for &net in &cell_nets[c as usize] {
                    for &other in &net_cells[net.index()] {
                        if !block.contains(&other) && !circuit.cells()[other as usize].is_terminal()
                        {
                            queue.push(other);
                        }
                    }
                }
            }
            if block.len() < g {
                continue;
            }
            // count external nets: nets with pins both inside and outside
            let mut counted: HashMap<usize, bool> = HashMap::new();
            for &c in &block {
                for net in &cell_nets[c as usize] {
                    counted.entry(net.index()).or_insert_with(|| {
                        net_cells[net.index()].iter().any(|cc| !block.contains(cc))
                    });
                }
            }
            t_sum += counted.values().filter(|&&ext| ext).count() as f64;
        }
        let t_avg = t_sum / 8.0;
        if t_avg > 0.0 {
            points.push(((g as f64).ln(), t_avg.ln()));
        }
    }
    if points.len() < 2 {
        return None;
    }
    // least-squares slope
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Cell, Net, Pin};
    use crate::geometry::Rect;
    use crate::synth::{generate, SynthConfig};

    #[test]
    fn stats_on_tiny_circuit() {
        let mut c = Circuit::new("t", Rect::new(0.0, 0.0, 4.0, 4.0));
        let a = c.add_cell(Cell::movable("a", 1.0, 1.0));
        let b = c.add_cell(Cell::movable("b", 1.0, 1.0));
        let d = c.add_cell(Cell::movable("d", 1.0, 1.0));
        c.add_net(Net::new("n0", vec![Pin::at_center(a), Pin::at_center(b)]));
        c.add_net(Net::new("n1", vec![Pin::at_center(a), Pin::at_center(b), Pin::at_center(d)]));
        let s = netlist_stats(&c);
        assert_eq!(s.degree_histogram[2], 1);
        assert_eq!(s.degree_histogram[3], 1);
        assert!((s.mean_degree - 2.5).abs() < 1e-12);
        assert_eq!(s.max_degree, 3);
        assert!((s.two_pin_fraction - 0.5).abs() < 1e-12);
        // a,b touch 2 nets; d touches 1
        assert!((s.mean_cell_fanout - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_circuits_have_realistic_degree_mass() {
        let cfg = SynthConfig { n_cells: 600, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        let s = netlist_stats(&synth.circuit);
        // 2-pin nets dominate, as in real netlists
        assert!(s.two_pin_fraction > 0.3, "2-pin fraction {:.2}", s.two_pin_fraction);
        assert!(s.mean_degree >= 2.0 && s.mean_degree < 6.0, "mean degree {}", s.mean_degree);
        assert!(s.max_degree <= cfg.max_degree + 1); // +1 pad/macro attach
    }

    #[test]
    fn rent_exponent_is_plausible_for_synthetic_designs() {
        let cfg = SynthConfig { n_cells: 800, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        let p = rent_exponent(&synth.circuit, 7).expect("estimable");
        // clustered netlists should land in the broad Rent band
        assert!((0.2..=1.1).contains(&p), "rent exponent {p}");
    }

    #[test]
    fn rent_exponent_none_for_tiny_circuits() {
        let c = Circuit::new("tiny", Rect::new(0.0, 0.0, 1.0, 1.0));
        assert!(rent_exponent(&c, 1).is_none());
    }

    #[test]
    fn rent_estimate_is_deterministic() {
        let cfg = SynthConfig { n_cells: 500, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        assert_eq!(rent_exponent(&synth.circuit, 3), rent_exponent(&synth.circuit, 3));
    }
}
