//! The circuit data model: cells, pins, nets and the [`Circuit`] container.
//!
//! The model mirrors the Bookshelf view of a design used by the ISPD-2011 /
//! DAC-2012 contests: cells (movable or terminal) with rectangular shapes,
//! and nets connecting pins, where each pin is a `(cell, offset)` pair.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{NetlistError, Result};
use crate::geometry::{Point, Rect};

/// Index of a cell within a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub u32);

/// Index of a net within a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub u32);

impl CellId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NetId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether a cell may be moved by the placer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellKind {
    /// A standard cell whose position the placer optimises.
    Movable,
    /// A terminal (pad or macro) fixed during floor-planning.
    Terminal,
}

/// A physical cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Unique name (Bookshelf node name).
    pub name: String,
    /// Cell width.
    pub width: f32,
    /// Cell height.
    pub height: f32,
    /// Movable or terminal.
    pub kind: CellKind,
}

impl Cell {
    /// Convenience constructor for a movable cell.
    pub fn movable(name: impl Into<String>, width: f32, height: f32) -> Self {
        Self { name: name.into(), width, height, kind: CellKind::Movable }
    }

    /// Convenience constructor for a terminal cell.
    pub fn terminal(name: impl Into<String>, width: f32, height: f32) -> Self {
        Self { name: name.into(), width, height, kind: CellKind::Terminal }
    }

    /// Whether this cell is a terminal.
    pub fn is_terminal(&self) -> bool {
        self.kind == CellKind::Terminal
    }
}

/// A pin: a connection point of a net on a cell, with an offset from the
/// cell centre.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pin {
    /// The cell the pin sits on.
    pub cell: CellId,
    /// Offset of the pin from the cell centre.
    pub offset: Point,
}

impl Pin {
    /// Creates a pin at the cell centre.
    pub fn at_center(cell: CellId) -> Self {
        Self { cell, offset: Point::default() }
    }

    /// Creates a pin with an offset from the cell centre.
    pub fn with_offset(cell: CellId, dx: f32, dy: f32) -> Self {
        Self { cell, offset: Point::new(dx, dy) }
    }
}

/// A net: a set of pins to be connected by one routed wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Unique name (Bookshelf net name).
    pub name: String,
    /// The pins this net connects.
    pub pins: Vec<Pin>,
}

impl Net {
    /// Creates a named net from pins.
    pub fn new(name: impl Into<String>, pins: Vec<Pin>) -> Self {
        Self { name: name.into(), pins }
    }

    /// Number of pins.
    pub fn degree(&self) -> usize {
        self.pins.len()
    }
}

/// A complete circuit: die outline, cells and nets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    /// Design name.
    pub name: String,
    /// Die (placement region) outline.
    pub die: Rect,
    cells: Vec<Cell>,
    nets: Vec<Net>,
}

impl Circuit {
    /// Creates an empty circuit with the given die outline.
    pub fn new(name: impl Into<String>, die: Rect) -> Self {
        Self { name: name.into(), die, cells: Vec::new(), nets: Vec::new() }
    }

    /// Adds a cell and returns its id.
    pub fn add_cell(&mut self, cell: Cell) -> CellId {
        self.cells.push(cell);
        CellId((self.cells.len() - 1) as u32)
    }

    /// Adds a net and returns its id.
    pub fn add_net(&mut self, net: Net) -> NetId {
        self.nets.push(net);
        NetId((self.nets.len() - 1) as u32)
    }

    /// All cells, indexable by [`CellId::index`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets, indexable by [`NetId::index`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of movable cells.
    pub fn num_movable(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_terminal()).count()
    }

    /// Number of terminal cells.
    pub fn num_terminals(&self) -> usize {
        self.cells.iter().filter(|c| c.is_terminal()).count()
    }

    /// Total number of pins across all nets.
    pub fn num_pins(&self) -> usize {
        self.nets.iter().map(Net::degree).sum()
    }

    /// Looks up a cell id by name (O(n); build a map for bulk lookups).
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.cells.iter().position(|c| c.name == name).map(|i| CellId(i as u32))
    }

    /// Builds a name → id map for all cells.
    pub fn cell_name_map(&self) -> HashMap<&str, CellId> {
        self.cells.iter().enumerate().map(|(i, c)| (c.name.as_str(), CellId(i as u32))).collect()
    }

    /// For each cell, the list of nets touching it.
    pub fn cell_to_nets(&self) -> Vec<Vec<NetId>> {
        let mut map = vec![Vec::new(); self.cells.len()];
        for (ni, net) in self.nets.iter().enumerate() {
            for pin in &net.pins {
                map[pin.cell.index()].push(NetId(ni as u32));
            }
        }
        for v in &mut map {
            v.dedup();
        }
        map
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: a pin referencing a missing cell,
    /// a non-positive cell dimension, a duplicate cell name, or a net with
    /// fewer than two pins.
    pub fn validate(&self) -> Result<()> {
        let mut seen = HashMap::new();
        for (i, cell) in self.cells.iter().enumerate() {
            if cell.width <= 0.0 || cell.height <= 0.0 {
                return Err(NetlistError::InvalidCell {
                    name: cell.name.clone(),
                    reason: format!("non-positive size {}x{}", cell.width, cell.height),
                });
            }
            if let Some(prev) = seen.insert(cell.name.as_str(), i) {
                return Err(NetlistError::InvalidCell {
                    name: cell.name.clone(),
                    reason: format!("duplicate name (cells {prev} and {i})"),
                });
            }
        }
        for net in &self.nets {
            if net.degree() < 2 {
                return Err(NetlistError::InvalidNet {
                    name: net.name.clone(),
                    reason: format!("degree {} < 2", net.degree()),
                });
            }
            for pin in &net.pins {
                if pin.cell.index() >= self.cells.len() {
                    return Err(NetlistError::InvalidNet {
                        name: net.name.clone(),
                        reason: format!("pin references missing cell {}", pin.cell.0),
                    });
                }
            }
        }
        Ok(())
    }
}

/// A placement solution: one centre position per cell of a [`Circuit`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Placement {
    positions: Vec<Point>,
}

impl Placement {
    /// Creates a placement from per-cell centre positions (indexed by
    /// [`CellId::index`]).
    pub fn new(positions: Vec<Point>) -> Self {
        Self { positions }
    }

    /// Creates an all-origin placement for `n` cells.
    pub fn zeroed(n: usize) -> Self {
        Self { positions: vec![Point::default(); n] }
    }

    /// Number of placed cells.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The position of a cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn position(&self, id: CellId) -> Point {
        self.positions[id.index()]
    }

    /// Sets the position of a cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_position(&mut self, id: CellId, p: Point) {
        self.positions[id.index()] = p;
    }

    /// All positions (indexed by [`CellId::index`]).
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The absolute location of `pin` under this placement.
    pub fn pin_position(&self, pin: &Pin) -> Point {
        let base = self.position(pin.cell);
        base.offset(pin.offset.x, pin.offset.y)
    }

    /// The bounding box of a net's pins under this placement.
    pub fn net_bbox(&self, net: &Net) -> Rect {
        let mut bbox = Rect::empty();
        for pin in &net.pins {
            bbox.absorb(self.pin_position(pin));
        }
        bbox
    }

    /// Total half-perimeter wirelength over all nets.
    pub fn total_hpwl(&self, circuit: &Circuit) -> f64 {
        circuit.nets().iter().map(|n| f64::from(self.net_bbox(n).half_perimeter())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Circuit, Placement) {
        let mut c = Circuit::new("tiny", Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = c.add_cell(Cell::movable("a", 1.0, 1.0));
        let b = c.add_cell(Cell::movable("b", 1.0, 1.0));
        let t = c.add_cell(Cell::terminal("t", 2.0, 2.0));
        c.add_net(Net::new("n1", vec![Pin::at_center(a), Pin::at_center(b)]));
        c.add_net(Net::new("n2", vec![Pin::at_center(b), Pin::with_offset(t, 0.5, -0.5)]));
        let mut p = Placement::zeroed(3);
        p.set_position(a, Point::new(1.0, 1.0));
        p.set_position(b, Point::new(4.0, 5.0));
        p.set_position(t, Point::new(9.0, 9.0));
        (c, p)
    }

    #[test]
    fn counts() {
        let (c, _) = tiny();
        assert_eq!(c.num_cells(), 3);
        assert_eq!(c.num_nets(), 2);
        assert_eq!(c.num_movable(), 2);
        assert_eq!(c.num_terminals(), 1);
        assert_eq!(c.num_pins(), 4);
    }

    #[test]
    fn validation_passes_on_well_formed() {
        let (c, _) = tiny();
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degree_one_net() {
        let mut c = Circuit::new("bad", Rect::new(0.0, 0.0, 1.0, 1.0));
        let a = c.add_cell(Cell::movable("a", 1.0, 1.0));
        c.add_net(Net::new("n", vec![Pin::at_center(a)]));
        assert!(matches!(c.validate(), Err(NetlistError::InvalidNet { .. })));
    }

    #[test]
    fn validation_rejects_duplicate_names() {
        let mut c = Circuit::new("bad", Rect::new(0.0, 0.0, 1.0, 1.0));
        c.add_cell(Cell::movable("a", 1.0, 1.0));
        c.add_cell(Cell::movable("a", 1.0, 1.0));
        assert!(matches!(c.validate(), Err(NetlistError::InvalidCell { .. })));
    }

    #[test]
    fn validation_rejects_dangling_pin() {
        let mut c = Circuit::new("bad", Rect::new(0.0, 0.0, 1.0, 1.0));
        let a = c.add_cell(Cell::movable("a", 1.0, 1.0));
        c.add_net(Net::new("n", vec![Pin::at_center(a), Pin::at_center(CellId(99))]));
        assert!(matches!(c.validate(), Err(NetlistError::InvalidNet { .. })));
    }

    #[test]
    fn pin_position_applies_offset() {
        let (c, p) = tiny();
        let net = c.net(NetId(1));
        let pin = net.pins[1];
        assert_eq!(p.pin_position(&pin), Point::new(9.5, 8.5));
    }

    #[test]
    fn hpwl_matches_hand_computation() {
        let (c, p) = tiny();
        // n1 bbox: (1,1)-(4,5) -> 3+4=7 ; n2 bbox: (4,5)-(9.5,8.5) -> 5.5+3.5=9
        assert!((p.total_hpwl(&c) - 16.0).abs() < 1e-6);
    }

    #[test]
    fn cell_to_nets_deduplicates() {
        let mut c = Circuit::new("x", Rect::new(0.0, 0.0, 1.0, 1.0));
        let a = c.add_cell(Cell::movable("a", 1.0, 1.0));
        let b = c.add_cell(Cell::movable("b", 1.0, 1.0));
        // net touches cell a with two pins
        c.add_net(Net::new(
            "n",
            vec![Pin::with_offset(a, 0.1, 0.0), Pin::with_offset(a, -0.1, 0.0), Pin::at_center(b)],
        ));
        let map = c.cell_to_nets();
        assert_eq!(map[a.index()].len(), 1);
        assert_eq!(map[b.index()].len(), 1);
    }

    #[test]
    fn find_cell_and_name_map_agree() {
        let (c, _) = tiny();
        let id = c.find_cell("b").unwrap();
        assert_eq!(c.cell_name_map()["b"], id);
        assert!(c.find_cell("zz").is_none());
    }
}
