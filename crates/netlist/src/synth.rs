//! Synthetic Superblue-like circuit generation.
//!
//! The ISPD-2011 / DAC-2012 contest designs are not redistributable here,
//! so the reproduction generates circuits with the same *learning-relevant*
//! structure (see DESIGN.md §1):
//!
//! * clustered connectivity — most nets are local to a logical cluster, a
//!   configurable fraction cross clusters (these become the long
//!   "topological" nets whose congestion interaction LHNN exploits),
//! * a geometric net-degree distribution with a heavy 2-pin mass and a
//!   long tail, as in real netlists,
//! * terminal pads on the periphery anchoring each cluster to a region,
//! * macro terminals inside the die that block routing capacity and seed
//!   congestion hotspots,
//! * per-design knobs (cell count, macro count, cluster count) that create
//!   the wide congestion-rate spread the paper's test designs show
//!   (0 % … ~48 %).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::circuit::{Cell, CellId, Circuit, Net, Pin};
use crate::error::{NetlistError, Result};
use crate::geometry::{Point, Rect};
use crate::grid::GcellGrid;

/// Configuration of one synthetic design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Design name (e.g. `synthblue1`).
    pub name: String,
    /// RNG seed; every draw derives from it.
    pub seed: u64,
    /// Number of G-cell columns.
    pub grid_nx: u32,
    /// Number of G-cell rows.
    pub grid_ny: u32,
    /// Die units per G-cell (both dimensions).
    pub gcell_size: f32,
    /// Number of movable standard cells.
    pub n_cells: usize,
    /// Nets per movable cell (Superblue has ≈ 0.98).
    pub nets_per_cell: f32,
    /// Number of logical clusters.
    pub n_clusters: usize,
    /// Probability that a net draws its cells from the whole die rather
    /// than one cluster.
    pub cross_cluster_prob: f64,
    /// Geometric-distribution parameter for net degree (`degree = 2 + G`);
    /// larger means shorter tail.
    pub degree_p: f64,
    /// Hard cap on net degree.
    pub max_degree: usize,
    /// Number of periphery pad terminals.
    pub n_pads: usize,
    /// Number of macro (blockage) terminals.
    pub n_macros: usize,
    /// Macro side length in G-cells.
    pub macro_gcells: u32,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            name: "synth".into(),
            seed: 1,
            grid_nx: 32,
            grid_ny: 32,
            gcell_size: 8.0,
            n_cells: 1200,
            nets_per_cell: 1.0,
            n_clusters: 6,
            cross_cluster_prob: 0.12,
            degree_p: 0.45,
            max_degree: 24,
            n_pads: 24,
            n_macros: 3,
            macro_gcells: 4,
        }
    }
}

impl SynthConfig {
    /// The die implied by the grid configuration.
    pub fn die(&self) -> Rect {
        Rect::new(
            0.0,
            0.0,
            self.grid_nx as f32 * self.gcell_size,
            self.grid_ny as f32 * self.gcell_size,
        )
    }

    /// The G-cell grid implied by the configuration.
    pub fn grid(&self) -> GcellGrid {
        GcellGrid::new(self.die(), self.grid_nx, self.grid_ny)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidConfig`] when a knob is out of range.
    pub fn validate(&self) -> Result<()> {
        if self.n_cells < 2 {
            return Err(NetlistError::InvalidConfig("n_cells must be >= 2".into()));
        }
        if self.n_clusters == 0 {
            return Err(NetlistError::InvalidConfig("n_clusters must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&self.cross_cluster_prob) {
            return Err(NetlistError::InvalidConfig("cross_cluster_prob must be in [0,1]".into()));
        }
        if !(self.degree_p > 0.0 && self.degree_p <= 1.0) {
            return Err(NetlistError::InvalidConfig("degree_p must be in (0,1]".into()));
        }
        if self.max_degree < 2 {
            return Err(NetlistError::InvalidConfig("max_degree must be >= 2".into()));
        }
        if self.grid_nx < 2 || self.grid_ny < 2 {
            return Err(NetlistError::InvalidConfig("grid must be at least 2x2".into()));
        }
        Ok(())
    }
}

/// The output of the generator: the circuit plus generation metadata used
/// by the placer (cluster anchors) and router (macro blockages).
#[derive(Debug, Clone)]
pub struct SynthCircuit {
    /// The generated circuit (unplaced; run a placer next).
    pub circuit: Circuit,
    /// Cluster index per movable cell (indexed like `circuit.cells()`,
    /// terminals carry their nearest cluster).
    pub cluster_of: Vec<usize>,
    /// Anchor centre of each cluster in die coordinates.
    pub cluster_centers: Vec<Point>,
    /// Macro outlines (routing blockages).
    pub macro_rects: Vec<Rect>,
    /// Terminal positions fixed at generation time (pads + macros),
    /// as `(cell, position)` pairs.
    pub fixed_positions: Vec<(CellId, Point)>,
}

/// Samples `2 + Geometric(p)` capped at `max`.
fn sample_degree(rng: &mut StdRng, p: f64, max: usize) -> usize {
    let mut extra = 0usize;
    while extra + 2 < max && rng.gen_bool(1.0 - p) {
        extra += 1;
    }
    2 + extra
}

/// Generates a synthetic design.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidConfig`] if `cfg` fails validation.
pub fn generate(cfg: &SynthConfig) -> Result<SynthCircuit> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let die = cfg.die();
    let mut circuit = Circuit::new(cfg.name.clone(), die);
    let mut cluster_of = Vec::new();
    let mut fixed_positions = Vec::new();

    // Cluster anchor centres, kept away from the die edge.
    let margin = 0.15;
    let cluster_centers: Vec<Point> = (0..cfg.n_clusters)
        .map(|_| {
            Point::new(
                die.lx + die.width() * rng.gen_range(margin..1.0 - margin),
                die.ly + die.height() * rng.gen_range(margin..1.0 - margin),
            )
        })
        .collect();

    // Movable standard cells, assigned round-robin-with-jitter to clusters
    // so cluster sizes are balanced but not identical.
    let cell_w = cfg.gcell_size * 0.25;
    let cell_h = cfg.gcell_size * 0.25;
    for i in 0..cfg.n_cells {
        let cluster =
            if rng.gen_bool(0.85) { i % cfg.n_clusters } else { rng.gen_range(0..cfg.n_clusters) };
        circuit.add_cell(Cell::movable(format!("c{i}"), cell_w, cell_h));
        cluster_of.push(cluster);
    }

    // Periphery pads: walk the die boundary, associate each pad with the
    // nearest cluster so local nets can anchor their region.
    for i in 0..cfg.n_pads {
        let t = i as f32 / cfg.n_pads.max(1) as f32;
        let peri = 2.0 * (die.width() + die.height());
        let d = t * peri;
        let pos = if d < die.width() {
            Point::new(die.lx + d, die.ly)
        } else if d < die.width() + die.height() {
            Point::new(die.ux, die.ly + (d - die.width()))
        } else if d < 2.0 * die.width() + die.height() {
            Point::new(die.ux - (d - die.width() - die.height()), die.uy)
        } else {
            Point::new(die.lx, die.uy - (d - 2.0 * die.width() - die.height()))
        };
        let id = circuit.add_cell(Cell::terminal(format!("pad{i}"), cell_w, cell_h));
        let nearest = cluster_centers
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.distance(pos).partial_cmp(&b.distance(pos)).expect("finite distances")
            })
            .map_or(0, |(k, _)| k);
        cluster_of.push(nearest);
        fixed_positions.push((id, pos));
    }

    // Macro blockages: random interior rectangles (overlaps tolerated —
    // real floorplans also abut macros).
    let mut macro_rects = Vec::new();
    let mside = cfg.macro_gcells as f32 * cfg.gcell_size;
    for i in 0..cfg.n_macros {
        let lx = die.lx
            + rng.gen_range(0.05..0.95_f32).min(1.0 - mside / die.width().max(1.0))
                * (die.width() - mside).max(0.0);
        let ly = die.ly
            + rng.gen_range(0.05..0.95_f32).min(1.0 - mside / die.height().max(1.0))
                * (die.height() - mside).max(0.0);
        let rect = Rect::new(lx, ly, lx + mside, ly + mside);
        let id = circuit.add_cell(Cell::terminal(format!("macro{i}"), mside, mside));
        let center = rect.center();
        let nearest = cluster_centers
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.distance(center).partial_cmp(&b.distance(center)).expect("finite distances")
            })
            .map_or(0, |(k, _)| k);
        cluster_of.push(nearest);
        fixed_positions.push((id, center));
        macro_rects.push(rect);
    }

    // Cluster membership lists (movable cells only, pads added for anchoring).
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); cfg.n_clusters];
    for i in 0..cfg.n_cells {
        members[cluster_of[i]].push(i as u32);
    }
    let pad_range = cfg.n_cells..cfg.n_cells + cfg.n_pads;
    let macro_range = pad_range.end..pad_range.end + cfg.n_macros;

    // Nets.
    let n_nets = ((cfg.n_cells as f32) * cfg.nets_per_cell).round() as usize;
    let half_w = cell_w * 0.4;
    let half_h = cell_h * 0.4;
    for ni in 0..n_nets {
        let degree = sample_degree(&mut rng, cfg.degree_p, cfg.max_degree);
        let global = rng.gen_bool(cfg.cross_cluster_prob);
        let cluster = rng.gen_range(0..cfg.n_clusters);
        let mut pins = Vec::with_capacity(degree);
        let mut used = std::collections::HashSet::new();
        let mut guard = 0;
        while pins.len() < degree && guard < degree * 30 {
            guard += 1;
            let cell_idx: u32 = if global {
                rng.gen_range(0..cfg.n_cells) as u32
            } else if !members[cluster].is_empty() {
                members[cluster][rng.gen_range(0..members[cluster].len())]
            } else {
                rng.gen_range(0..cfg.n_cells) as u32
            };
            if used.insert(cell_idx) {
                let offset =
                    Point::new(rng.gen_range(-half_w..=half_w), rng.gen_range(-half_h..=half_h));
                pins.push(Pin { cell: CellId(cell_idx), offset });
            }
        }
        // With small probability, attach a pad (I/O net) or a macro pin.
        if rng.gen_bool(0.08) && !pad_range.is_empty() {
            let pad = rng.gen_range(pad_range.clone()) as u32;
            pins.push(Pin::at_center(CellId(pad)));
        } else if rng.gen_bool(0.05) && !macro_range.is_empty() {
            let mac = rng.gen_range(macro_range.clone()) as u32;
            pins.push(Pin::at_center(CellId(mac)));
        }
        if pins.len() >= 2 {
            circuit.add_net(Net::new(format!("n{ni}"), pins));
        }
    }

    circuit.validate()?;
    Ok(SynthCircuit { circuit, cluster_of, cluster_centers, macro_rects, fixed_positions })
}

/// Builds the 15-design suite standing in for the ISPD-2011 + DAC-2012
/// Superblue benchmarks (Table 1 of the paper).
///
/// `scale` multiplies cell counts (1.0 ≈ 1.2–3k cells per design on a
/// 32×32…48×48 grid); designs vary in density, macro count and cluster
/// structure so their routed congestion rates spread from ≈0 % to ≈50 %.
pub fn superblue_suite(base_seed: u64, scale: f32) -> Vec<SynthConfig> {
    // (grid, density multiplier, clusters, macros, cross-cluster prob)
    // chosen to spread congestion rates; ids mirror superblue numbering.
    let specs: [(u32, f32, usize, usize, f64); 15] = [
        (36, 1.15, 6, 4, 0.14), // sb1
        (32, 1.00, 5, 3, 0.12), // sb2
        (40, 1.10, 7, 4, 0.13), // sb3
        (32, 0.90, 5, 2, 0.10), // sb4
        (36, 0.40, 6, 1, 0.06), // sb5  (low congestion)
        (32, 0.35, 4, 1, 0.05), // sb6  (low congestion)
        (40, 1.20, 8, 5, 0.15), // sb7
        (32, 0.95, 5, 3, 0.11), // sb9
        (36, 1.05, 6, 3, 0.12), // sb10
        (32, 1.60, 5, 6, 0.20), // sb11 (high congestion)
        (36, 0.85, 6, 2, 0.10), // sb12
        (32, 1.10, 5, 4, 0.13), // sb14
        (40, 1.00, 7, 3, 0.11), // sb16
        (32, 1.25, 5, 4, 0.16), // sb18
        (36, 1.45, 6, 5, 0.18), // sb19 (high congestion)
    ];
    let ids = [1, 2, 3, 4, 5, 6, 7, 9, 10, 11, 12, 14, 16, 18, 19];
    specs
        .iter()
        .zip(ids)
        .enumerate()
        .map(|(i, ((grid, density, clusters, macros, cross), id))| SynthConfig {
            name: format!("synthblue{id}"),
            seed: base_seed.wrapping_add(1000 + i as u64),
            grid_nx: *grid,
            grid_ny: *grid,
            n_cells: ((*grid as f32 * *grid as f32) * density * scale) as usize,
            n_clusters: *clusters,
            n_macros: *macros,
            cross_cluster_prob: *cross,
            n_pads: (*grid as usize) / 2 * 2,
            ..SynthConfig::default()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SynthConfig::default().validate().is_ok());
    }

    #[test]
    fn generate_produces_valid_circuit() {
        let cfg = SynthConfig { n_cells: 200, ..SynthConfig::default() };
        let out = generate(&cfg).unwrap();
        assert!(out.circuit.validate().is_ok());
        assert_eq!(out.circuit.num_movable(), 200);
        assert_eq!(out.circuit.num_terminals(), cfg.n_pads + cfg.n_macros);
        assert!(out.circuit.num_nets() > 150);
        assert_eq!(out.cluster_of.len(), out.circuit.num_cells());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig { n_cells: 150, ..SynthConfig::default() };
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.circuit, b.circuit);
        let cfg2 = SynthConfig { seed: 2, ..cfg };
        let c = generate(&cfg2).unwrap();
        assert_ne!(a.circuit, c.circuit);
    }

    #[test]
    fn degree_distribution_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let d = sample_degree(&mut rng, 0.45, 10);
            assert!((2..=10).contains(&d));
        }
        // heavy mass at 2 for p = 0.45
        let twos = (0..500).filter(|_| sample_degree(&mut rng, 0.45, 10) == 2).count();
        assert!(twos > 150, "twos = {twos}");
    }

    #[test]
    fn pads_sit_on_die_boundary() {
        let cfg = SynthConfig { n_cells: 100, n_pads: 8, ..SynthConfig::default() };
        let out = generate(&cfg).unwrap();
        let die = cfg.die();
        let pads = out
            .fixed_positions
            .iter()
            .filter(|(id, _)| out.circuit.cell(*id).name.starts_with("pad"));
        for (_, p) in pads {
            let on_edge = (p.x - die.lx).abs() < 1e-3
                || (p.x - die.ux).abs() < 1e-3
                || (p.y - die.ly).abs() < 1e-3
                || (p.y - die.uy).abs() < 1e-3;
            assert!(on_edge, "pad at {p:?} not on boundary");
        }
    }

    #[test]
    fn macros_lie_inside_die() {
        let cfg = SynthConfig { n_cells: 100, n_macros: 5, ..SynthConfig::default() };
        let out = generate(&cfg).unwrap();
        assert_eq!(out.macro_rects.len(), 5);
        let die = cfg.die();
        for r in &out.macro_rects {
            assert!(r.lx >= die.lx - 1e-3 && r.ux <= die.ux + 1e-3);
            assert!(r.ly >= die.ly - 1e-3 && r.uy <= die.uy + 1e-3);
        }
    }

    #[test]
    fn suite_has_15_unique_designs() {
        let suite = superblue_suite(7, 0.5);
        assert_eq!(suite.len(), 15);
        let names: std::collections::HashSet<_> = suite.iter().map(|c| c.name.clone()).collect();
        assert_eq!(names.len(), 15);
        for cfg in &suite {
            assert!(cfg.validate().is_ok(), "config {} invalid", cfg.name);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = SynthConfig { n_cells: 1, ..SynthConfig::default() };
        assert!(bad.validate().is_err());
        let bad = SynthConfig { degree_p: 0.0, ..SynthConfig::default() };
        assert!(bad.validate().is_err());
        let bad = SynthConfig { cross_cluster_prob: 1.5, ..SynthConfig::default() };
        assert!(bad.validate().is_err());
        let bad = SynthConfig { grid_nx: 1, ..SynthConfig::default() };
        assert!(bad.validate().is_err());
    }
}
