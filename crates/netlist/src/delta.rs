//! Placement deltas and grid re-binning for placement-in-the-loop flows.
//!
//! A placer perturbs a handful of cells per iteration; rebuilding every
//! grid-derived structure from scratch for each query throws that locality
//! away. [`PlacementDelta`] names the cells that moved, and [`rebin_delta`]
//! re-bins only the affected nets and pins against the G-cell grid,
//! reporting exactly which G-nets changed their covered span and which
//! pins changed their G-cell — the dirty sets every downstream incremental
//! consumer (LH-graph, features, operators) patches from.

use crate::circuit::{CellId, Circuit, NetId, Placement};
use crate::geometry::Point;
use crate::grid::{GcellCoord, GcellGrid};

/// The inclusive G-cell span `(lo, hi)` covered by a net's bounding box.
pub type GcellSpan = (GcellCoord, GcellCoord);

/// A batch of cell moves: the unit of change a placement loop emits.
///
/// Moves carry the cell's *new* centre position. A cell may appear more
/// than once; later entries win (moves apply in order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlacementDelta {
    moves: Vec<(CellId, Point)>,
}

impl PlacementDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// A delta from a list of `(cell, new position)` moves.
    pub fn from_moves(moves: Vec<(CellId, Point)>) -> Self {
        Self { moves }
    }

    /// A delta moving a single cell.
    pub fn single(cell: CellId, to: Point) -> Self {
        Self { moves: vec![(cell, to)] }
    }

    /// Appends one move.
    pub fn push(&mut self, cell: CellId, to: Point) {
        self.moves.push((cell, to));
    }

    /// The moves in application order.
    pub fn moves(&self) -> &[(CellId, Point)] {
        &self.moves
    }

    /// Number of moves (counting repeats).
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the delta contains no moves.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Applies every move to `placement`, in order.
    ///
    /// # Panics
    ///
    /// Panics if a move references a cell outside the placement.
    pub fn apply(&self, placement: &mut Placement) {
        for &(cell, to) in &self.moves {
            placement.set_position(cell, to);
        }
    }

    /// The distinct cells this delta moves, ascending.
    pub fn moved_cells(&self) -> Vec<CellId> {
        let mut cells: Vec<CellId> = self.moves.iter().map(|&(c, _)| c).collect();
        cells.sort_unstable();
        cells.dedup();
        cells
    }
}

/// How many G-cells an inclusive span covers.
pub fn span_cells((lo, hi): GcellSpan) -> usize {
    ((hi.gx - lo.gx + 1) as usize) * ((hi.gy - lo.gy + 1) as usize)
}

/// How a re-binned net moved relative to a size filter that keeps nets
/// covering at most `max_area` G-cells (the LH-graph G-net filter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterCrossing {
    /// Inside the filter before and after: a plain span move.
    StaysInside,
    /// Outside (oversized or spanless) before and after: invisible to
    /// filter-derived structures.
    StaysOutside,
    /// Entered the filter: a column must be revived or appended.
    Enters,
    /// Left the filter: its column must be tombstoned.
    Leaves,
}

/// A net whose G-cell span changed under a delta.
#[derive(Debug, Clone, PartialEq)]
pub struct NetRebin {
    /// The net.
    pub net: NetId,
    /// Span before the delta (`None`: the net had no span — empty bbox).
    pub old_span: Option<GcellSpan>,
    /// Span after the delta.
    pub new_span: Option<GcellSpan>,
}

impl NetRebin {
    /// Classifies this rebin against a size filter of `max_area` covered
    /// G-cells, from the spans alone (downstream consumers with stateful
    /// column spaces classify against their own liveness instead, which
    /// agrees with this whenever their state tracks the placement).
    pub fn filter_crossing(&self, max_area: usize) -> FilterCrossing {
        let inside = |s: Option<GcellSpan>| s.is_some_and(|sp| span_cells(sp) <= max_area);
        match (inside(self.old_span), inside(self.new_span)) {
            (true, true) => FilterCrossing::StaysInside,
            (false, false) => FilterCrossing::StaysOutside,
            (false, true) => FilterCrossing::Enters,
            (true, false) => FilterCrossing::Leaves,
        }
    }
}

/// A pin whose G-cell changed under a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinMove {
    /// The net the pin belongs to.
    pub net: NetId,
    /// Flattened G-cell index before the delta.
    pub from: usize,
    /// Flattened G-cell index after the delta.
    pub to: usize,
}

/// What a delta dirtied, as seen by the G-cell grid.
///
/// Nets whose bounding box moved *within* its old span, and pins that
/// stayed inside their G-cell, are correctly absent: they change nothing
/// grid-derived.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DirtyReport {
    /// Nets whose covered span changed (sorted by net id).
    pub net_rebins: Vec<NetRebin>,
    /// Pins that crossed a G-cell boundary.
    pub pin_moves: Vec<PinMove>,
    /// Whether any moved cell is a terminal (terminal-coverage masks must
    /// be refreshed).
    pub moved_terminal: bool,
    /// Number of distinct cells that actually changed position.
    pub moved_cells: usize,
}

impl DirtyReport {
    /// Whether the delta changed nothing grid-derived.
    pub fn is_clean(&self) -> bool {
        self.net_rebins.is_empty() && self.pin_moves.is_empty() && !self.moved_terminal
    }
}

/// Re-bins the nets and pins affected by `delta` against `grid`.
///
/// `before` and `after` are the placements on either side of the delta
/// (`after` must be `before` with the delta applied); `cell_to_nets` is
/// the adjacency from [`Circuit::cell_to_nets`] (built once per design,
/// reused across deltas).
///
/// # Panics
///
/// Panics if the delta references a cell outside the circuit.
pub fn rebin_delta(
    circuit: &Circuit,
    grid: &GcellGrid,
    before: &Placement,
    after: &Placement,
    delta: &PlacementDelta,
    cell_to_nets: &[Vec<NetId>],
) -> DirtyReport {
    let mut placement = before.clone();
    let report = rebin_delta_in_place(circuit, grid, &mut placement, delta, cell_to_nets);
    debug_assert_eq!(&placement, after, "`after` must be `before` + `delta`");
    report
}

/// [`rebin_delta`] that applies the delta to `placement` itself: the
/// pre-move state is read out before mutation, so no placement copy is
/// made — the per-update cost stays proportional to the delta, which is
/// what a hot placement loop needs.
///
/// # Panics
///
/// Panics if the delta references a cell outside the circuit.
pub fn rebin_delta_in_place(
    circuit: &Circuit,
    grid: &GcellGrid,
    placement: &mut Placement,
    delta: &PlacementDelta,
    cell_to_nets: &[Vec<NetId>],
) -> DirtyReport {
    // Final position per distinct touched cell (later moves win), kept
    // alongside for the effective-move filter.
    let touched = delta.moved_cells();
    let mut final_pos: Vec<Point> = touched.iter().map(|&c| placement.position(c)).collect();
    for &(cell, to) in delta.moves() {
        let slot = touched.binary_search(&cell).expect("moved cell is touched");
        final_pos[slot] = to;
    }
    let moved: Vec<CellId> = touched
        .iter()
        .zip(&final_pos)
        .filter(|&(&c, &fp)| placement.position(c) != fp)
        .map(|(&c, _)| c)
        .collect();

    let moved_terminal = moved.iter().any(|&c| circuit.cell(c).is_terminal());

    // Nets touching any moved cell, each re-binned once.
    let mut nets: Vec<NetId> =
        moved.iter().flat_map(|&c| cell_to_nets[c.index()].iter().copied()).collect();
    nets.sort_unstable();
    nets.dedup();

    // Phase 1 — before mutating: old spans and old pin g-cells.
    let old_spans: Vec<Option<GcellSpan>> =
        nets.iter().map(|&n| grid.span(&placement.net_bbox(circuit.net(n)))).collect();
    let mut pin_moves = Vec::new();
    for &cell in &moved {
        for &net_id in &cell_to_nets[cell.index()] {
            for pin in &circuit.net(net_id).pins {
                if pin.cell == cell {
                    let from = grid.index(grid.locate(placement.pin_position(pin)));
                    pin_moves.push(PinMove { net: net_id, from, to: from });
                }
            }
        }
    }

    delta.apply(placement);

    // Phase 2 — after mutating: new spans and new pin g-cells.
    let mut net_rebins = Vec::new();
    for (&net_id, &old_span) in nets.iter().zip(&old_spans) {
        let new_span = grid.span(&placement.net_bbox(circuit.net(net_id)));
        if old_span != new_span {
            net_rebins.push(NetRebin { net: net_id, old_span, new_span });
        }
    }
    let mut slot = 0;
    for &cell in &moved {
        for &net_id in &cell_to_nets[cell.index()] {
            for pin in &circuit.net(net_id).pins {
                if pin.cell == cell {
                    pin_moves[slot].to = grid.index(grid.locate(placement.pin_position(pin)));
                    slot += 1;
                }
            }
        }
    }
    debug_assert_eq!(slot, pin_moves.len());
    pin_moves.retain(|pm| pm.from != pm.to);

    DirtyReport { net_rebins, pin_moves, moved_terminal, moved_cells: moved.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Cell, Net, Pin};
    use crate::geometry::Rect;

    /// 4x4 grid over an 8x8 die; 2 two-pin nets sharing cell `b`.
    fn fixture() -> (Circuit, Placement, GcellGrid, Vec<Vec<NetId>>) {
        let die = Rect::new(0.0, 0.0, 8.0, 8.0);
        let grid = GcellGrid::new(die, 4, 4);
        let mut c = Circuit::new("d", die);
        let a = c.add_cell(Cell::movable("a", 0.2, 0.2));
        let b = c.add_cell(Cell::movable("b", 0.2, 0.2));
        let t = c.add_cell(Cell::terminal("t", 0.5, 0.5));
        c.add_net(Net::new("n0", vec![Pin::at_center(a), Pin::at_center(b)]));
        c.add_net(Net::new("n1", vec![Pin::at_center(b), Pin::at_center(t)]));
        let mut p = Placement::zeroed(3);
        p.set_position(a, Point::new(1.0, 1.0));
        p.set_position(b, Point::new(3.0, 1.0));
        p.set_position(t, Point::new(7.0, 7.0));
        let map = c.cell_to_nets();
        (c, p, grid, map)
    }

    #[test]
    fn delta_applies_in_order_and_dedups_moved_cells() {
        let (_, mut p, ..) = fixture();
        let mut d = PlacementDelta::new();
        d.push(CellId(0), Point::new(5.0, 5.0));
        d.push(CellId(0), Point::new(6.0, 6.0)); // later move wins
        assert_eq!(d.len(), 2);
        assert_eq!(d.moved_cells(), vec![CellId(0)]);
        d.apply(&mut p);
        assert_eq!(p.position(CellId(0)), Point::new(6.0, 6.0));
    }

    #[test]
    fn noop_move_is_clean() {
        let (c, before, grid, map) = fixture();
        let after = before.clone();
        let d = PlacementDelta::single(CellId(0), before.position(CellId(0)));
        let report = rebin_delta(&c, &grid, &before, &after, &d, &map);
        assert!(report.is_clean());
        assert_eq!(report.moved_cells, 0);
    }

    #[test]
    fn move_within_gcell_dirties_nothing() {
        let (c, before, grid, map) = fixture();
        let mut after = before.clone();
        // a sits at (1,1) inside g-cell (0,0) spanning [0,2)x[0,2): nudge
        // it without leaving the cell
        let d = PlacementDelta::single(CellId(0), Point::new(1.5, 1.5));
        d.apply(&mut after);
        let report = rebin_delta(&c, &grid, &before, &after, &d, &map);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.moved_cells, 1);
    }

    #[test]
    fn crossing_a_gcell_reports_net_and_pin() {
        let (c, before, grid, map) = fixture();
        let mut after = before.clone();
        let d = PlacementDelta::single(CellId(0), Point::new(1.0, 5.0)); // (0,0) -> (0,2)
        d.apply(&mut after);
        let report = rebin_delta(&c, &grid, &before, &after, &d, &map);
        assert_eq!(report.net_rebins.len(), 1);
        assert_eq!(report.net_rebins[0].net, NetId(0));
        assert_eq!(report.pin_moves.len(), 1);
        assert_eq!(report.pin_moves[0].from, grid.index(GcellCoord { gx: 0, gy: 0 }));
        assert_eq!(report.pin_moves[0].to, grid.index(GcellCoord { gx: 0, gy: 2 }));
        assert!(!report.moved_terminal);
    }

    #[test]
    fn shared_cell_dirties_both_nets_once_each() {
        let (c, before, grid, map) = fixture();
        let mut after = before.clone();
        let d = PlacementDelta::single(CellId(1), Point::new(5.0, 5.0));
        d.apply(&mut after);
        let report = rebin_delta(&c, &grid, &before, &after, &d, &map);
        let nets: Vec<NetId> = report.net_rebins.iter().map(|r| r.net).collect();
        assert_eq!(nets, vec![NetId(0), NetId(1)]);
        assert_eq!(report.pin_moves.len(), 2, "one pin move per net on the shared cell");
    }

    #[test]
    fn filter_crossing_classifies_all_four_ways() {
        let lo = GcellCoord { gx: 0, gy: 0 };
        let small = (lo, GcellCoord { gx: 1, gy: 0 }); // 2 cells
        let big = (lo, GcellCoord { gx: 2, gy: 2 }); // 9 cells
        assert_eq!(span_cells(small), 2);
        assert_eq!(span_cells(big), 9);
        let rb = |old, new| NetRebin { net: NetId(0), old_span: old, new_span: new };
        assert_eq!(rb(Some(small), Some(small)).filter_crossing(4), FilterCrossing::StaysInside);
        assert_eq!(rb(Some(big), Some(big)).filter_crossing(4), FilterCrossing::StaysOutside);
        assert_eq!(rb(Some(big), Some(small)).filter_crossing(4), FilterCrossing::Enters);
        assert_eq!(rb(Some(small), Some(big)).filter_crossing(4), FilterCrossing::Leaves);
        // spanless counts as outside on either side
        assert_eq!(rb(None, Some(small)).filter_crossing(4), FilterCrossing::Enters);
        assert_eq!(rb(Some(small), None).filter_crossing(4), FilterCrossing::Leaves);
        assert_eq!(rb(None, None).filter_crossing(4), FilterCrossing::StaysOutside);
        // the boundary is inclusive
        assert_eq!(rb(Some(big), Some(big)).filter_crossing(9), FilterCrossing::StaysInside);
    }

    #[test]
    fn terminal_move_is_flagged() {
        let (c, before, grid, map) = fixture();
        let mut after = before.clone();
        let d = PlacementDelta::single(CellId(2), Point::new(1.0, 7.0));
        d.apply(&mut after);
        let report = rebin_delta(&c, &grid, &before, &after, &d, &map);
        assert!(report.moved_terminal);
    }
}
