//! The G-cell grid: the tessellation of the die into routing tiles.
//!
//! Terminology follows the paper (Figure 1a): the die is divided into
//! `nx × ny` rectangular *G-cells*; each G-cell is one "pixel" of every
//! map (demand, congestion, features). A *G-net* is the set of G-cells
//! covered by a net's pin bounding box.

use serde::{Deserialize, Serialize};

use crate::geometry::{Point, Rect};

/// Integer coordinates of a G-cell: `(gx, gy)` with `gx` the column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GcellCoord {
    /// Column index (0 = leftmost).
    pub gx: u32,
    /// Row index (0 = bottom).
    pub gy: u32,
}

/// The uniform G-cell grid over a die.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcellGrid {
    die: Rect,
    nx: u32,
    ny: u32,
}

impl GcellGrid {
    /// Creates an `nx × ny` grid over `die`.
    ///
    /// # Panics
    ///
    /// Panics if `nx`, `ny` are zero or the die is degenerate.
    pub fn new(die: Rect, nx: u32, ny: u32) -> Self {
        assert!(nx > 0 && ny > 0, "grid must have at least one g-cell");
        assert!(die.width() > 0.0 && die.height() > 0.0, "die must have positive area");
        Self { die, nx, ny }
    }

    /// The die outline.
    pub fn die(&self) -> Rect {
        self.die
    }

    /// Number of columns.
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of rows.
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Total number of G-cells.
    pub fn num_gcells(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// Width of one G-cell.
    pub fn gcell_width(&self) -> f32 {
        self.die.width() / self.nx as f32
    }

    /// Height of one G-cell.
    pub fn gcell_height(&self) -> f32 {
        self.die.height() / self.ny as f32
    }

    /// Flattened index of a coordinate (row-major: `gy * nx + gx`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn index(&self, c: GcellCoord) -> usize {
        assert!(c.gx < self.nx && c.gy < self.ny, "g-cell {c:?} out of range");
        c.gy as usize * self.nx as usize + c.gx as usize
    }

    /// Inverse of [`GcellGrid::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn coord(&self, idx: usize) -> GcellCoord {
        assert!(idx < self.num_gcells(), "g-cell index {idx} out of range");
        GcellCoord { gx: (idx % self.nx as usize) as u32, gy: (idx / self.nx as usize) as u32 }
    }

    /// The G-cell containing a point (points outside the die are clamped).
    pub fn locate(&self, p: Point) -> GcellCoord {
        let clamped = self.die.clamp(p);
        let fx = (clamped.x - self.die.lx) / self.gcell_width();
        let fy = (clamped.y - self.die.ly) / self.gcell_height();
        GcellCoord { gx: (fx as u32).min(self.nx - 1), gy: (fy as u32).min(self.ny - 1) }
    }

    /// The rectangle covered by a G-cell.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn gcell_rect(&self, c: GcellCoord) -> Rect {
        assert!(c.gx < self.nx && c.gy < self.ny, "g-cell {c:?} out of range");
        let w = self.gcell_width();
        let h = self.gcell_height();
        Rect::new(
            self.die.lx + c.gx as f32 * w,
            self.die.ly + c.gy as f32 * h,
            self.die.lx + (c.gx + 1) as f32 * w,
            self.die.ly + (c.gy + 1) as f32 * h,
        )
    }

    /// Centre point of a G-cell.
    pub fn gcell_center(&self, c: GcellCoord) -> Point {
        self.gcell_rect(c).center()
    }

    /// The inclusive coordinate span of G-cells overlapping `rect`
    /// (clamped to the die). Returns `None` when `rect` is the empty seed.
    pub fn span(&self, rect: &Rect) -> Option<(GcellCoord, GcellCoord)> {
        if rect.is_empty() {
            return None;
        }
        let lo = self.locate(Point::new(rect.lx, rect.ly));
        let hi = self.locate(Point::new(rect.ux, rect.uy));
        Some((lo, hi))
    }

    /// Iterates over all G-cell coordinates within an inclusive span.
    pub fn iter_span(
        &self,
        lo: GcellCoord,
        hi: GcellCoord,
    ) -> impl Iterator<Item = GcellCoord> + '_ {
        (lo.gy..=hi.gy).flat_map(move |gy| (lo.gx..=hi.gx).map(move |gx| GcellCoord { gx, gy }))
    }

    /// The 4-neighbourhood of a G-cell (lattice-graph edges).
    pub fn neighbors(&self, c: GcellCoord) -> impl Iterator<Item = GcellCoord> + '_ {
        let (nx, ny) = (self.nx, self.ny);
        let deltas = [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)];
        deltas.into_iter().filter_map(move |(dx, dy)| {
            let gx = c.gx as i64 + dx;
            let gy = c.gy as i64 + dy;
            (gx >= 0 && gy >= 0 && (gx as u32) < nx && (gy as u32) < ny)
                .then_some(GcellCoord { gx: gx as u32, gy: gy as u32 })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GcellGrid {
        GcellGrid::new(Rect::new(0.0, 0.0, 8.0, 4.0), 4, 2)
    }

    #[test]
    fn dimensions() {
        let g = grid();
        assert_eq!(g.num_gcells(), 8);
        assert_eq!(g.gcell_width(), 2.0);
        assert_eq!(g.gcell_height(), 2.0);
    }

    #[test]
    fn index_coord_roundtrip() {
        let g = grid();
        for idx in 0..g.num_gcells() {
            assert_eq!(g.index(g.coord(idx)), idx);
        }
    }

    #[test]
    fn locate_interior_and_boundary() {
        let g = grid();
        assert_eq!(g.locate(Point::new(0.5, 0.5)), GcellCoord { gx: 0, gy: 0 });
        assert_eq!(g.locate(Point::new(7.9, 3.9)), GcellCoord { gx: 3, gy: 1 });
        // exactly on the die edge clamps into the last cell
        assert_eq!(g.locate(Point::new(8.0, 4.0)), GcellCoord { gx: 3, gy: 1 });
        // outside points clamp
        assert_eq!(g.locate(Point::new(-5.0, 100.0)), GcellCoord { gx: 0, gy: 1 });
    }

    #[test]
    fn gcell_rect_tiles_the_die() {
        let g = grid();
        let r = g.gcell_rect(GcellCoord { gx: 1, gy: 1 });
        assert_eq!(r, Rect::new(2.0, 2.0, 4.0, 4.0));
        let total: f32 = (0..g.num_gcells()).map(|i| g.gcell_rect(g.coord(i)).area()).sum();
        assert!((total - g.die().area()).abs() < 1e-4);
    }

    #[test]
    fn span_covers_bounding_box() {
        let g = grid();
        let bbox = Rect::new(1.0, 0.5, 5.0, 3.5);
        let (lo, hi) = g.span(&bbox).unwrap();
        assert_eq!(lo, GcellCoord { gx: 0, gy: 0 });
        assert_eq!(hi, GcellCoord { gx: 2, gy: 1 });
        let count = g.iter_span(lo, hi).count();
        assert_eq!(count, 6);
        assert!(g.span(&Rect::empty()).is_none());
    }

    #[test]
    fn neighbors_counts() {
        let g = grid();
        assert_eq!(g.neighbors(GcellCoord { gx: 0, gy: 0 }).count(), 2); // corner
        assert_eq!(g.neighbors(GcellCoord { gx: 1, gy: 0 }).count(), 3); // edge
        let g2 = GcellGrid::new(Rect::new(0.0, 0.0, 9.0, 9.0), 3, 3);
        assert_eq!(g2.neighbors(GcellCoord { gx: 1, gy: 1 }).count(), 4); // interior
    }

    #[test]
    fn zero_point_net_span() {
        let g = grid();
        let mut bb = Rect::empty();
        bb.absorb(Point::new(3.0, 3.0));
        let (lo, hi) = g.span(&bb).unwrap();
        assert_eq!(lo, hi);
    }
}
