//! Error type for the `vlsi-netlist` crate.

use std::error::Error as StdError;
use std::fmt;
use std::io;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetlistError>;

/// Errors produced while building, validating or parsing circuits.
#[derive(Debug)]
pub enum NetlistError {
    /// A cell definition is malformed.
    InvalidCell {
        /// Cell name.
        name: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A net definition is malformed.
    InvalidNet {
        /// Net name.
        name: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A Bookshelf file failed to parse.
    Parse {
        /// File kind (`nodes`, `nets`, `pl`, `aux`).
        file: &'static str,
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// Underlying I/O failure.
    Io(io::Error),
    /// A generator configuration was invalid.
    InvalidConfig(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::InvalidCell { name, reason } => {
                write!(f, "invalid cell `{name}`: {reason}")
            }
            NetlistError::InvalidNet { name, reason } => {
                write!(f, "invalid net `{name}`: {reason}")
            }
            NetlistError::Parse { file, line, reason } => {
                write!(f, "parse error in .{file} line {line}: {reason}")
            }
            NetlistError::Io(e) => write!(f, "i/o error: {e}"),
            NetlistError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl StdError for NetlistError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            NetlistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetlistError {
    fn from(e: io::Error) -> Self {
        NetlistError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetlistError::Parse { file: "nets", line: 12, reason: "bad degree".into() };
        let s = e.to_string();
        assert!(s.contains(".nets") && s.contains("12") && s.contains("bad degree"));
    }

    #[test]
    fn io_error_roundtrip_and_source() {
        let e: NetlistError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(StdError::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
