//! Planar geometry primitives: [`Point`] and [`Rect`].

use serde::{Deserialize, Serialize};

/// A point in the die plane (unit = placement database units).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f32,
    /// Vertical coordinate.
    pub y: f32,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Componentwise sum.
    pub fn offset(self, dx: f32, dy: f32) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f32 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Manhattan (rectilinear) distance to `other`, the wirelength metric.
    pub fn manhattan(self, other: Point) -> f32 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

/// An axis-aligned rectangle `[lx, ux] × [ly, uy]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub lx: f32,
    /// Bottom edge.
    pub ly: f32,
    /// Right edge.
    pub ux: f32,
    /// Top edge.
    pub uy: f32,
}

impl Rect {
    /// Creates a rectangle from its corners.
    ///
    /// # Panics
    ///
    /// Panics if `ux < lx` or `uy < ly`.
    pub fn new(lx: f32, ly: f32, ux: f32, uy: f32) -> Self {
        assert!(ux >= lx && uy >= ly, "degenerate rect: ({lx},{ly})-({ux},{uy})");
        Self { lx, ly, ux, uy }
    }

    /// The empty rectangle used as a bounding-box seed.
    pub fn empty() -> Self {
        Self { lx: f32::INFINITY, ly: f32::INFINITY, ux: f32::NEG_INFINITY, uy: f32::NEG_INFINITY }
    }

    /// Whether this is the [`Rect::empty`] seed (no point absorbed yet).
    pub fn is_empty(&self) -> bool {
        self.lx > self.ux || self.ly > self.uy
    }

    /// Width (`0` for an empty rect).
    pub fn width(&self) -> f32 {
        (self.ux - self.lx).max(0.0)
    }

    /// Height (`0` for an empty rect).
    pub fn height(&self) -> f32 {
        (self.uy - self.ly).max(0.0)
    }

    /// Area (`0` for an empty rect).
    pub fn area(&self) -> f32 {
        self.width() * self.height()
    }

    /// Centre point.
    pub fn center(&self) -> Point {
        Point::new((self.lx + self.ux) * 0.5, (self.ly + self.uy) * 0.5)
    }

    /// Grows the rectangle to include `p`.
    pub fn absorb(&mut self, p: Point) {
        self.lx = self.lx.min(p.x);
        self.ly = self.ly.min(p.y);
        self.ux = self.ux.max(p.x);
        self.uy = self.uy.max(p.y);
    }

    /// Whether `p` lies inside (inclusive of edges).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lx && p.x <= self.ux && p.y >= self.ly && p.y <= self.uy
    }

    /// Whether two rectangles overlap (inclusive of shared edges).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lx <= other.ux && other.lx <= self.ux && self.ly <= other.uy && other.ly <= self.uy
    }

    /// The overlapping region, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            lx: self.lx.max(other.lx),
            ly: self.ly.max(other.ly),
            ux: self.ux.min(other.ux),
            uy: self.uy.min(other.uy),
        })
    }

    /// Half-perimeter of the rectangle — HPWL of a net whose bounding box
    /// this is.
    pub fn half_perimeter(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Clamps a point into the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.lx, self.ux), p.y.clamp(self.ly, self.uy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.manhattan(b), 7.0);
    }

    #[test]
    fn rect_dimensions() {
        let r = Rect::new(1.0, 2.0, 4.0, 6.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.half_perimeter(), 7.0);
        assert_eq!(r.center(), Point::new(2.5, 4.0));
    }

    #[test]
    fn empty_rect_absorbs_points() {
        let mut r = Rect::empty();
        assert!(r.is_empty());
        assert_eq!(r.half_perimeter(), 0.0);
        r.absorb(Point::new(1.0, 5.0));
        r.absorb(Point::new(-2.0, 3.0));
        assert!(!r.is_empty());
        assert_eq!(r.lx, -2.0);
        assert_eq!(r.uy, 5.0);
        assert_eq!(r.half_perimeter(), 3.0 + 2.0);
    }

    #[test]
    fn contains_is_inclusive() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(2.0, 2.0)));
        assert!(!r.contains(Point::new(2.1, 1.0)));
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 3.0, 3.0);
        let c = Rect::new(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.intersection(&b), Some(Rect::new(1.0, 1.0, 2.0, 2.0)));
        assert!(a.intersection(&c).is_none());
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn clamp_pins_to_edges() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(r.clamp(Point::new(5.0, -3.0)), Point::new(1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "degenerate rect")]
    fn new_rejects_inverted() {
        Rect::new(1.0, 0.0, 0.0, 1.0);
    }
}
