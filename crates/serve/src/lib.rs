//! `lhnn-serve` — a batched, multi-threaded congestion-inference engine.
//!
//! The paper's end goal is congestion feedback *inside* placement loops: a
//! placer queries "where will routing congest?" thousands of times per
//! design, so inference must stay hot, parallel and deduplicated. This
//! crate turns the one-shot [`lhnn::Lhnn::predict`] path into an always-on
//! service skeleton:
//!
//! * [`ModelRegistry`] — loads `.lhnn` checkpoints once, validates them
//!   against the feature pipeline, hands out shared entries; bad
//!   checkpoints are rejected without touching serving state.
//! * [`ServeEngine`] — a bounded request queue drained by long-lived
//!   worker threads, each running tape-free forwards on a reusable
//!   [`lhnn::InferenceScratch`]; same-shape identical requests drained in
//!   one wake-up share a single forward (micro-batching).
//! * [`PredictionCache`] — an LRU keyed by content fingerprints of
//!   `(model weights, graph operators, features)`, so repeated queries on
//!   an unchanged placement cost only hashing.
//! * [`ServeHandle`] — the synchronous client API
//!   ([`ServeHandle::predict`], [`ServeHandle::predict_batch`],
//!   [`ServeHandle::stats`]) with latency percentiles, throughput and
//!   cache hit rate.
//! * [`Session`] — the stateful placement-loop surface
//!   ([`ServeHandle::open_session`] / [`Session::update`] /
//!   [`Session::predict`]): keeps an incremental
//!   [`lhnn::LatticePipeline`] hot per design so a placer's per-iteration
//!   deltas patch only the dirty graph/feature rows (sort-free copies, no
//!   placement rescan, pre-seeded digests) instead of rebuilding, with
//!   results bitwise identical to batch construction.
//!
//! Served predictions are **bitwise identical** to direct
//! [`lhnn::Lhnn::predict`] calls regardless of worker count or cache
//! state (property-tested in `tests/determinism.rs`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use lh_graph::{FeatureSet, LhGraph, LhGraphConfig};
//! use lhnn::{AblationSpec, GraphOps, Lhnn, LhnnConfig};
//! use lhnn_serve::{EngineConfig, ModelRegistry, PredictRequest, ServeEngine};
//! use vlsi_netlist::synth::{generate, SynthConfig};
//! use vlsi_place::GlobalPlacer;
//!
//! // Build one tiny design (generate → place → graph → features).
//! let cfg = SynthConfig { n_cells: 60, grid_nx: 6, grid_ny: 6, ..SynthConfig::default() };
//! let synth = generate(&cfg).unwrap();
//! let grid = cfg.grid();
//! let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
//! let graph =
//!     LhGraph::build(&synth.circuit, &placed.placement, &grid, &LhGraphConfig::default())
//!         .unwrap();
//! let (gd, nd) = FeatureSet::default_divisors();
//! let features = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid)
//!     .unwrap()
//!     .scaled_fixed(&gd, &nd);
//! let ops = Arc::new(GraphOps::from_graph(&graph, &AblationSpec::full()));
//! let features = Arc::new(features);
//!
//! // Register a model and stand up a 2-worker engine.
//! let registry = Arc::new(ModelRegistry::new());
//! registry.register("default", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
//! let engine = ServeEngine::new(registry, EngineConfig { workers: 2, ..Default::default() });
//! let handle = engine.handle();
//!
//! // First query computes, the repeat is served from the LRU cache.
//! let req = PredictRequest::new("default", ops, features).with_threshold(0.5);
//! let cold = handle.predict(&req).unwrap();
//! let warm = handle.predict(&req).unwrap();
//! assert!(!cold.cached && warm.cached);
//! assert!(warm.prediction.cls_prob.approx_eq(&cold.prediction.cls_prob, 0.0));
//! assert!(handle.stats().cache_hit_rate > 0.0);
//! engine.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod registry;
pub mod session;
pub mod stats;

pub use cache::{CacheKey, PredictionCache};
pub use engine::{EngineConfig, PredictRequest, ServeEngine, ServeHandle, ServeReply};
pub use error::{Result, ServeError};
pub use registry::{ModelEntry, ModelRegistry};
pub use session::{Session, SessionConfig};
pub use stats::ServeStats;
