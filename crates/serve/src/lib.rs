//! `lhnn-serve` — a sharded, batched, multi-threaded congestion-inference
//! engine.
//!
//! The paper's end goal is congestion feedback *inside* placement loops: a
//! placer queries "where will routing congest?" thousands of times per
//! design, and a serving deployment fields *many* such loops at once. This
//! crate turns the one-shot [`lhnn::CongestionModel::predict`] path into an
//! always-on service skeleton, generic over the model architecture — any
//! [`lhnn::CongestionModel`] (LHNN, HybridNet, …) serves through the same
//! engine:
//!
//! * [`ModelRegistry`] — loads `.lhnn` checkpoints once, validates them
//!   against the feature pipeline, hands out shared entries; bad
//!   checkpoints are rejected without touching serving state.
//! * [`ServeEngine`] — a front over [`EngineConfig::shards`] independent
//!   shards; each owns a bounded request queue drained by its slice of
//!   long-lived worker threads (tape-free forwards on a reusable
//!   per-kind [`lhnn::ScratchSet`], micro-batching, single-flight dedup),
//!   its own prediction cache and its own stats. Designs route to shards
//!   by a stable hash, so one hot placement loop can neither evict
//!   another design's cache entries nor monopolise all workers.
//! * [`PredictionCache`] — a per-shard LRU keyed by content fingerprints
//!   of `(model weights, graph operators, features)`, so repeated queries
//!   on an unchanged placement cost only hashing.
//! * [`ServeHandle`] — the synchronous client API
//!   ([`ServeHandle::predict`], [`ServeHandle::predict_batch`],
//!   [`ServeHandle::stats`]) with latency percentiles, throughput, cache
//!   hit rate and a per-shard breakdown ([`ServeStats::per_shard`]).
//! * [`Session`] — the stateful, **pipelined** placement-loop surface
//!   ([`ServeHandle::open_session`] / [`Session::submit_update`] /
//!   [`Session::predict`]): keeps an incremental
//!   [`lhnn::LatticePipeline`] hot per design, pinned to the design's
//!   shard. `submit_update` returns an [`UpdateTicket`] and the shard's
//!   workers apply the delta while the caller overlaps its own work;
//!   `predict` drains pending tickets in submission order before the
//!   forward, so one placer thread keeps several designs in flight
//!   without ever observing a half-applied sequence.
//!
//! Failures stay contained: a panicking forward costs its requester a
//! [`ServeError::WorkerLost`] and nothing else; engine locks guard
//! re-derivable state and recover from mutex poisoning instead of
//! cascading panics; a session wedged by a panic mid-update fails its own
//! calls with [`ServeError::Poisoned`] while the engine keeps serving.
//!
//! Served predictions are **bitwise identical** to direct
//! [`lhnn::Lhnn::predict`] calls regardless of worker count or cache
//! state (property-tested in `tests/determinism.rs`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use lh_graph::{FeatureSet, LhGraph, LhGraphConfig};
//! use lhnn::{AblationSpec, GraphOps, Lhnn, LhnnConfig};
//! use lhnn_serve::{EngineConfig, ModelRegistry, PredictRequest, ServeEngine};
//! use vlsi_netlist::synth::{generate, SynthConfig};
//! use vlsi_place::GlobalPlacer;
//!
//! // Build one tiny design (generate → place → graph → features).
//! let cfg = SynthConfig { n_cells: 60, grid_nx: 6, grid_ny: 6, ..SynthConfig::default() };
//! let synth = generate(&cfg).unwrap();
//! let grid = cfg.grid();
//! let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
//! let graph =
//!     LhGraph::build(&synth.circuit, &placed.placement, &grid, &LhGraphConfig::default())
//!         .unwrap();
//! let (gd, nd) = FeatureSet::default_divisors();
//! let features = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid)
//!     .unwrap()
//!     .scaled_fixed(&gd, &nd);
//! let ops = Arc::new(GraphOps::from_graph(&graph, &AblationSpec::full()));
//! let features = Arc::new(features);
//!
//! // Register a model and stand up a 2-worker engine.
//! let registry = Arc::new(ModelRegistry::new());
//! registry.register("default", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
//! let engine = ServeEngine::new(registry, EngineConfig { workers: 2, ..Default::default() });
//! let handle = engine.handle();
//!
//! // First query computes, the repeat is served from the LRU cache.
//! let req = PredictRequest::new("default", ops, features).with_threshold(0.5);
//! let cold = handle.predict(&req).unwrap();
//! let warm = handle.predict(&req).unwrap();
//! assert!(!cold.cached && warm.cached);
//! assert!(warm.prediction.cls_prob.approx_eq(&cold.prediction.cls_prob, 0.0));
//! assert!(handle.stats().cache_hit_rate > 0.0);
//! engine.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod engine;
pub mod error;
pub(crate) mod lock;
pub(crate) mod observability;
pub mod registry;
pub mod session;
pub mod stats;

pub use cache::{CacheKey, PredictionCache};
pub use engine::{EngineConfig, PredictRequest, ServeEngine, ServeHandle, ServeReply};
pub use error::{Result, ServeError};
pub use registry::{ModelEntry, ModelRegistry};
pub use session::{Session, SessionConfig, SessionObservability, UpdateTicket};
pub use stats::{ServeStats, ShardStats};

/// The observability vocabulary (registry, snapshots, exposition, flight
/// events), re-exported so engine clients need no separate dependency.
pub use lhnn_obs as obs;
