//! The model registry: load checkpoints once, hand out shared handles.
//!
//! A registry owns every model the engine can serve — any architecture
//! behind the [`CongestionModel`] trait, not just LHNN. Models are
//! validated on the way in (input dimensions must match the feature
//! pipeline, the architecture must be non-degenerate) and stored behind
//! `Arc`, so the worker pool, caches and callers all share one copy of
//! the weights. A checkpoint that fails to load or validate — including
//! one with an unknown kind tag — is rejected *before* the map is
//! touched: a bad file can never poison a serving pool.

use std::collections::HashMap;
use std::io::Read;
use std::path::Path;
use std::sync::{Arc, RwLock};

use crate::lock;

use lh_graph::{gcell_channel, gnet_channel};
use lhnn::{load_model, CongestionModel};
use lhnn_obs::Registry as MetricsRegistry;

use crate::error::{Result, ServeError};

/// A registered model: weights plus its serving identity.
#[derive(Debug)]
pub struct ModelEntry {
    /// Registry name (e.g. `"default"`, `"lhnn-duo-v3"`).
    pub name: String,
    /// Content version: [`CongestionModel::weights_fingerprint`] at
    /// registration. Part of every cache key, so hot-swapping a model
    /// under the same name invalidates its cached predictions implicitly
    /// (fingerprints are also disjoint across kinds).
    pub version: u64,
    /// The model itself (immutable while registered).
    pub model: Box<dyn CongestionModel>,
}

/// Thread-safe name → model map with load-time validation.
#[derive(Debug)]
pub struct ModelRegistry {
    expected_gcell_dim: usize,
    expected_gnet_dim: usize,
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
    /// Optional metrics sink: each successful (re-)registration bumps
    /// `lhnn_model_registrations_total{kind=...}`.
    metrics: RwLock<Option<Arc<MetricsRegistry>>>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// A registry expecting the standard feature pipeline (4 G-cell and
    /// 4 G-net channels, the paper's §3.1 layout).
    pub fn new() -> Self {
        Self::with_expected_dims(gcell_channel::COUNT, gnet_channel::COUNT)
    }

    /// A registry for a non-standard feature pipeline.
    pub fn with_expected_dims(gcell_dim: usize, gnet_dim: usize) -> Self {
        Self {
            expected_gcell_dim: gcell_dim,
            expected_gnet_dim: gnet_dim,
            models: RwLock::new(HashMap::new()),
            metrics: RwLock::new(None),
        }
    }

    /// Attaches a metrics registry; from now on every successful model
    /// (re-)registration increments
    /// `lhnn_model_registrations_total{kind="<kind>"}`.
    pub fn attach_metrics(&self, metrics: Arc<MetricsRegistry>) {
        *lock::write_recover(&self.metrics) = Some(metrics);
    }

    fn validate(&self, model: &dyn CongestionModel) -> Result<()> {
        if model.gcell_in_dim() != self.expected_gcell_dim {
            return Err(ServeError::Incompatible(format!(
                "model expects {} g-cell channels, pipeline produces {}",
                model.gcell_in_dim(),
                self.expected_gcell_dim
            )));
        }
        if model.gnet_in_dim() != self.expected_gnet_dim {
            return Err(ServeError::Incompatible(format!(
                "model expects {} g-net channels, pipeline produces {}",
                model.gnet_in_dim(),
                self.expected_gnet_dim
            )));
        }
        if model.hidden() == 0 {
            return Err(ServeError::Incompatible("zero hidden dimension".into()));
        }
        Ok(())
    }

    /// Registers an in-memory model under `name`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Incompatible`] if validation fails,
    /// [`ServeError::AlreadyRegistered`] if the name is taken (use
    /// [`ModelRegistry::replace`] to hot-swap).
    pub fn register<M: CongestionModel + 'static>(
        &self,
        name: &str,
        model: M,
    ) -> Result<Arc<ModelEntry>> {
        self.insert(name, Box::new(model), false)
    }

    /// [`ModelRegistry::register`] for an already-boxed model (e.g. one
    /// that came out of [`load_model`]).
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::register`].
    pub fn register_boxed(
        &self,
        name: &str,
        model: Box<dyn CongestionModel>,
    ) -> Result<Arc<ModelEntry>> {
        self.insert(name, model, false)
    }

    /// Registers or hot-swaps a model under `name` — the replacement may
    /// be a different architecture.
    ///
    /// Cached predictions of the displaced model become unreachable
    /// because the weight fingerprint in the cache key changes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Incompatible`] if validation fails.
    pub fn replace<M: CongestionModel + 'static>(
        &self,
        name: &str,
        model: M,
    ) -> Result<Arc<ModelEntry>> {
        self.insert(name, Box::new(model), true)
    }

    /// [`ModelRegistry::replace`] for an already-boxed model.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::replace`].
    pub fn replace_boxed(
        &self,
        name: &str,
        model: Box<dyn CongestionModel>,
    ) -> Result<Arc<ModelEntry>> {
        self.insert(name, model, true)
    }

    fn insert(
        &self,
        name: &str,
        model: Box<dyn CongestionModel>,
        allow_replace: bool,
    ) -> Result<Arc<ModelEntry>> {
        self.validate(model.as_ref())?;
        // Honour the model's intra-op thread request (no-op at 0 or when
        // the pool already matches).
        model.configure_pool();
        let kind = model.kind();
        let entry = Arc::new(ModelEntry {
            name: name.to_string(),
            version: model.weights_fingerprint(),
            model,
        });
        {
            let mut map = lock::write_recover(&self.models);
            if !allow_replace && map.contains_key(name) {
                return Err(ServeError::AlreadyRegistered(name.to_string()));
            }
            map.insert(name.to_string(), Arc::clone(&entry));
        }
        if let Some(metrics) = lock::read_recover(&self.metrics).as_ref() {
            metrics.counter_with("lhnn_model_registrations_total", &[("kind", kind)]).inc();
        }
        Ok(entry)
    }

    /// Loads a `.lhnn` checkpoint from a reader and registers it; the
    /// kind tag in the stream decides the architecture.
    ///
    /// The checkpoint is parsed and validated entirely before the registry
    /// map is modified: a truncated, corrupted, unknown-kind or
    /// architecturally incompatible file leaves the registry exactly as
    /// it was.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] for unparseable checkpoints, plus every error
    /// [`ModelRegistry::register`] can return.
    pub fn load_reader<R: Read>(&self, name: &str, reader: R) -> Result<Arc<ModelEntry>> {
        let model = load_model(reader)?;
        self.register_boxed(name, model)
    }

    /// Loads a `.lhnn` checkpoint file and registers it.
    ///
    /// # Errors
    ///
    /// See [`ModelRegistry::load_reader`]; file-open failures surface as
    /// [`ServeError::Model`].
    pub fn load_file<P: AsRef<Path>>(&self, name: &str, path: P) -> Result<Arc<ModelEntry>> {
        let file = std::fs::File::open(path).map_err(lhnn::ModelIoError::from)?;
        self.load_reader(name, std::io::BufReader::new(file))
    }

    /// Resolves a name to its current entry.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        lock::read_recover(&self.models).get(name).cloned()
    }

    /// Removes a model; returns whether it existed. In-flight requests
    /// holding the `Arc` finish normally.
    pub fn remove(&self, name: &str) -> bool {
        lock::write_recover(&self.models).remove(name).is_some()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = lock::read_recover(&self.models).keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        lock::read_recover(&self.models).len()
    }

    /// Whether no model is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhnn::{HybridNet, HybridNetConfig, Lhnn, LhnnConfig};

    #[test]
    fn register_get_remove() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let entry = reg.register("default", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
        assert_eq!(entry.name, "default");
        assert_eq!(reg.len(), 1);
        let got = reg.get("default").expect("registered");
        assert_eq!(got.version, entry.version);
        assert!(reg.get("missing").is_none());
        assert!(reg.remove("default"));
        assert!(!reg.remove("default"));
    }

    #[test]
    fn duplicate_name_rejected_but_replace_swaps() {
        let reg = ModelRegistry::new();
        let v1 = reg.register("m", Lhnn::new(LhnnConfig::default(), 0)).unwrap().version;
        let err = reg.register("m", Lhnn::new(LhnnConfig::default(), 1)).unwrap_err();
        assert!(matches!(err, ServeError::AlreadyRegistered(_)));
        let v2 = reg.replace("m", Lhnn::new(LhnnConfig::default(), 1)).unwrap().version;
        assert_ne!(v1, v2, "hot-swap must change the serving version");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn replace_accepts_a_different_architecture() {
        let reg = ModelRegistry::new();
        let v1 = reg.register("m", Lhnn::new(LhnnConfig::default(), 0)).unwrap().version;
        let v2 = reg.replace("m", HybridNet::new(HybridNetConfig::default(), 0)).unwrap().version;
        assert_ne!(v1, v2, "cross-kind swap must change the serving version");
        assert_eq!(reg.get("m").unwrap().model.kind(), "hybridnet");
    }

    #[test]
    fn incompatible_dims_rejected() {
        let reg = ModelRegistry::new();
        let bad = Lhnn::new(LhnnConfig { gcell_in_dim: 7, ..Default::default() }, 0);
        let err = reg.register("bad", bad).unwrap_err();
        assert!(matches!(err, ServeError::Incompatible(_)));
        let bad = HybridNet::new(HybridNetConfig { gnet_in_dim: 9, ..Default::default() }, 0);
        let err = reg.register("bad", bad).unwrap_err();
        assert!(matches!(err, ServeError::Incompatible(_)));
        assert!(reg.is_empty(), "failed validation must not insert");
    }

    #[test]
    fn bad_checkpoint_leaves_registry_untouched() {
        let reg = ModelRegistry::new();
        reg.register("good", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
        // corrupt stream
        let err = reg.load_reader("evil", "lhnn-model v1\nhidden banana\n".as_bytes());
        assert!(matches!(err, Err(ServeError::Model(_))));
        // unknown kind tag
        let err = reg.load_reader("evil", "lhnn-model v2\nkind alexnet\n".as_bytes());
        assert!(matches!(err, Err(ServeError::Model(_))));
        // truncated stream
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        buf.truncate(buf.len() / 3);
        assert!(reg.load_reader("evil", &buf[..]).is_err());
        assert_eq!(reg.names(), vec!["good".to_string()], "registry unpoisoned");
    }

    #[test]
    fn load_reader_dispatches_on_kind() {
        let reg = ModelRegistry::new();
        let model = Lhnn::new(LhnnConfig::default(), 9);
        let fp = model.weights_fingerprint();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let entry = reg.load_reader("rt", &buf[..]).unwrap();
        assert_eq!(entry.version, fp, "loaded weights carry the same version");
        assert_eq!(entry.model.kind(), "lhnn");

        let hybrid = HybridNet::new(HybridNetConfig::default(), 9);
        let fp = lhnn::CongestionModel::weights_fingerprint(&hybrid);
        let mut buf = Vec::new();
        hybrid.save(&mut buf).unwrap();
        let entry = reg.load_reader("hy", &buf[..]).unwrap();
        assert_eq!(entry.version, fp);
        assert_eq!(entry.model.kind(), "hybridnet");
    }

    #[test]
    fn registrations_counter_is_labelled_by_kind() {
        let reg = ModelRegistry::new();
        let metrics = Arc::new(MetricsRegistry::new());
        reg.attach_metrics(Arc::clone(&metrics));
        reg.register("a", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
        reg.register("b", HybridNet::new(HybridNetConfig::default(), 0)).unwrap();
        reg.replace("a", HybridNet::new(HybridNetConfig::default(), 1)).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("lhnn_model_registrations_total{kind=\"lhnn\"}"), 1);
        assert_eq!(snap.counter("lhnn_model_registrations_total{kind=\"hybridnet\"}"), 2);
    }
}
