//! The model registry: load checkpoints once, hand out shared handles.
//!
//! A registry owns every model the engine can serve. Models are validated
//! on the way in (input dimensions must match the feature pipeline, the
//! architecture must be non-degenerate) and stored behind `Arc`, so the
//! worker pool, caches and callers all share one copy of the weights. A
//! checkpoint that fails to load or validate is rejected *before* the map
//! is touched — a bad file can never poison a serving pool.

use std::collections::HashMap;
use std::io::Read;
use std::path::Path;
use std::sync::{Arc, RwLock};

use crate::lock;

use lh_graph::{gcell_channel, gnet_channel};
use lhnn::{Lhnn, LhnnConfig};

use crate::error::{Result, ServeError};

/// A registered model: weights plus its serving identity.
#[derive(Debug)]
pub struct ModelEntry {
    /// Registry name (e.g. `"default"`, `"lhnn-duo-v3"`).
    pub name: String,
    /// Content version: [`Lhnn::weights_fingerprint`] at registration.
    /// Part of every cache key, so hot-swapping a model under the same
    /// name invalidates its cached predictions implicitly.
    pub version: u64,
    /// The model itself (immutable while registered).
    pub model: Lhnn,
}

/// Thread-safe name → model map with load-time validation.
#[derive(Debug)]
pub struct ModelRegistry {
    expected_gcell_dim: usize,
    expected_gnet_dim: usize,
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// A registry expecting the standard feature pipeline (4 G-cell and
    /// 4 G-net channels, the paper's §3.1 layout).
    pub fn new() -> Self {
        Self::with_expected_dims(gcell_channel::COUNT, gnet_channel::COUNT)
    }

    /// A registry for a non-standard feature pipeline.
    pub fn with_expected_dims(gcell_dim: usize, gnet_dim: usize) -> Self {
        Self {
            expected_gcell_dim: gcell_dim,
            expected_gnet_dim: gnet_dim,
            models: RwLock::new(HashMap::new()),
        }
    }

    fn validate(&self, cfg: &LhnnConfig) -> Result<()> {
        if cfg.gcell_in_dim != self.expected_gcell_dim {
            return Err(ServeError::Incompatible(format!(
                "model expects {} g-cell channels, pipeline produces {}",
                cfg.gcell_in_dim, self.expected_gcell_dim
            )));
        }
        if cfg.gnet_in_dim != self.expected_gnet_dim {
            return Err(ServeError::Incompatible(format!(
                "model expects {} g-net channels, pipeline produces {}",
                cfg.gnet_in_dim, self.expected_gnet_dim
            )));
        }
        if cfg.hidden == 0 {
            return Err(ServeError::Incompatible("zero hidden dimension".into()));
        }
        Ok(())
    }

    /// Registers an in-memory model under `name`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Incompatible`] if validation fails,
    /// [`ServeError::AlreadyRegistered`] if the name is taken (use
    /// [`ModelRegistry::replace`] to hot-swap).
    pub fn register(&self, name: &str, model: Lhnn) -> Result<Arc<ModelEntry>> {
        self.insert(name, model, false)
    }

    /// Registers or hot-swaps a model under `name`.
    ///
    /// Cached predictions of the displaced model become unreachable
    /// because the weight fingerprint in the cache key changes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Incompatible`] if validation fails.
    pub fn replace(&self, name: &str, model: Lhnn) -> Result<Arc<ModelEntry>> {
        self.insert(name, model, true)
    }

    fn insert(&self, name: &str, model: Lhnn, allow_replace: bool) -> Result<Arc<ModelEntry>> {
        self.validate(model.config())?;
        // Honour the model's intra-op thread request (`LhnnConfig::threads`;
        // no-op at 0 or when the pool already matches).
        model.configure_pool();
        let entry = Arc::new(ModelEntry {
            name: name.to_string(),
            version: model.weights_fingerprint(),
            model,
        });
        let mut map = lock::write_recover(&self.models);
        if !allow_replace && map.contains_key(name) {
            return Err(ServeError::AlreadyRegistered(name.to_string()));
        }
        map.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Loads a `.lhnn` checkpoint from a reader and registers it.
    ///
    /// The checkpoint is parsed and validated entirely before the registry
    /// map is modified: a truncated, corrupted or architecturally
    /// incompatible file leaves the registry exactly as it was.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] for unparseable checkpoints, plus every error
    /// [`ModelRegistry::register`] can return.
    pub fn load_reader<R: Read>(&self, name: &str, reader: R) -> Result<Arc<ModelEntry>> {
        let model = Lhnn::load(reader)?;
        self.register(name, model)
    }

    /// Loads a `.lhnn` checkpoint file and registers it.
    ///
    /// # Errors
    ///
    /// See [`ModelRegistry::load_reader`]; file-open failures surface as
    /// [`ServeError::Model`].
    pub fn load_file<P: AsRef<Path>>(&self, name: &str, path: P) -> Result<Arc<ModelEntry>> {
        let file = std::fs::File::open(path).map_err(lhnn::ModelIoError::from)?;
        self.load_reader(name, std::io::BufReader::new(file))
    }

    /// Resolves a name to its current entry.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        lock::read_recover(&self.models).get(name).cloned()
    }

    /// Removes a model; returns whether it existed. In-flight requests
    /// holding the `Arc` finish normally.
    pub fn remove(&self, name: &str) -> bool {
        lock::write_recover(&self.models).remove(name).is_some()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = lock::read_recover(&self.models).keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        lock::read_recover(&self.models).len()
    }

    /// Whether no model is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_get_remove() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let entry = reg.register("default", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
        assert_eq!(entry.name, "default");
        assert_eq!(reg.len(), 1);
        let got = reg.get("default").expect("registered");
        assert_eq!(got.version, entry.version);
        assert!(reg.get("missing").is_none());
        assert!(reg.remove("default"));
        assert!(!reg.remove("default"));
    }

    #[test]
    fn duplicate_name_rejected_but_replace_swaps() {
        let reg = ModelRegistry::new();
        let v1 = reg.register("m", Lhnn::new(LhnnConfig::default(), 0)).unwrap().version;
        let err = reg.register("m", Lhnn::new(LhnnConfig::default(), 1)).unwrap_err();
        assert!(matches!(err, ServeError::AlreadyRegistered(_)));
        let v2 = reg.replace("m", Lhnn::new(LhnnConfig::default(), 1)).unwrap().version;
        assert_ne!(v1, v2, "hot-swap must change the serving version");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn incompatible_dims_rejected() {
        let reg = ModelRegistry::new();
        let bad = Lhnn::new(LhnnConfig { gcell_in_dim: 7, ..Default::default() }, 0);
        let err = reg.register("bad", bad).unwrap_err();
        assert!(matches!(err, ServeError::Incompatible(_)));
        assert!(reg.is_empty(), "failed validation must not insert");
    }

    #[test]
    fn bad_checkpoint_leaves_registry_untouched() {
        let reg = ModelRegistry::new();
        reg.register("good", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
        // corrupt stream
        let err = reg.load_reader("evil", "lhnn-model v1\nhidden banana\n".as_bytes());
        assert!(matches!(err, Err(ServeError::Model(_))));
        // truncated stream
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        buf.truncate(buf.len() / 3);
        assert!(reg.load_reader("evil", &buf[..]).is_err());
        assert_eq!(reg.names(), vec!["good".to_string()], "registry unpoisoned");
    }

    #[test]
    fn load_reader_roundtrip() {
        let reg = ModelRegistry::new();
        let model = Lhnn::new(LhnnConfig::default(), 9);
        let fp = model.weights_fingerprint();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let entry = reg.load_reader("rt", &buf[..]).unwrap();
        assert_eq!(entry.version, fp, "loaded weights carry the same version");
    }
}
