//! Stateful placement-loop sessions: the incremental serving surface.
//!
//! A stateless [`crate::ServeHandle::predict`] forces every caller to
//! rebuild graph operators and features per query — fine for one-shot
//! CLIs, wasteful for a placer that perturbs a few cells and re-queries
//! thousands of times. A [`Session`] keeps a [`LatticePipeline`] hot per
//! design:
//!
//! ```text
//! open_session(circuit, placement)   // one full build
//!   loop {
//!     session.update(&delta)         // incremental dirty-row patch
//!     session.predict()              // engine forward (or cache hit)
//!   }
//! ```
//!
//! Because incremental updates are bitwise identical to full rebuilds, the
//! engine's fingerprint-keyed prediction cache composes transparently: a
//! `predict` after a no-op update (or after a delta that returns to a
//! previously seen placement) hits the cache exactly as if the inputs had
//! been batch-built.

use std::sync::Arc;

use lh_graph::{FeatureSet, LhGraphConfig};
use lhnn::{AblationSpec, GraphOps, LatticePipeline, PipelineStats, PipelineUpdate};
use vlsi_netlist::{Circuit, GcellGrid, Placement, PlacementDelta};

use crate::engine::{PredictRequest, ServeHandle, ServeReply};
use crate::error::{Result, ServeError};

/// Options for [`ServeHandle::open_session`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Registry name of the model to serve with.
    pub model: String,
    /// Congestion threshold applied to predictions.
    pub threshold: f32,
    /// LH-graph build options.
    pub graph: LhGraphConfig,
    /// Fixed per-channel G-cell feature divisors (see
    /// [`FeatureSet::scaled_fixed`]).
    pub gcell_divisors: Vec<f32>,
    /// Fixed per-channel G-net feature divisors.
    pub gnet_divisors: Vec<f32>,
}

impl SessionConfig {
    /// Defaults: 0.5 threshold, default graph config, the reproduction's
    /// fixed feature divisors.
    pub fn new(model: impl Into<String>) -> Self {
        let (gcell_divisors, gnet_divisors) = FeatureSet::default_divisors();
        Self {
            model: model.into(),
            threshold: 0.5,
            graph: LhGraphConfig::default(),
            gcell_divisors,
            gnet_divisors,
        }
    }

    /// Sets the congestion threshold.
    #[must_use]
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the LH-graph build options.
    #[must_use]
    pub fn with_graph_config(mut self, graph: LhGraphConfig) -> Self {
        self.graph = graph;
        self
    }
}

/// A hot placement-loop session over one design.
///
/// Owned by the placer thread driving it; the underlying engine and its
/// worker pool are shared with every other client of the [`ServeHandle`].
#[derive(Debug)]
pub struct Session {
    handle: ServeHandle,
    cfg: SessionConfig,
    pipeline: LatticePipeline,
    /// Scaled snapshot of the pipeline state, rebuilt lazily after a
    /// non-noop update. Holding `Arc`s means repeated `predict` calls on
    /// an unchanged placement submit pointer-identical inputs.
    snapshot: Option<(Arc<GraphOps>, Arc<FeatureSet>)>,
}

impl ServeHandle {
    /// Opens a placement-loop session: builds the full pipeline once and
    /// keeps it hot for incremental [`Session::update`]s.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] if `cfg.model` is not registered;
    /// [`ServeError::Session`] if the initial pipeline build fails.
    pub fn open_session(
        &self,
        cfg: SessionConfig,
        circuit: Arc<Circuit>,
        placement: Placement,
        grid: GcellGrid,
    ) -> Result<Session> {
        if self.registry().get(&cfg.model).is_none() {
            return Err(ServeError::UnknownModel(cfg.model.clone()));
        }
        let pipeline =
            LatticePipeline::new(circuit, placement, grid, cfg.graph.clone(), AblationSpec::full())
                .map_err(|e| ServeError::Session(e.to_string()))?;
        Ok(Session { handle: self.clone(), cfg, pipeline, snapshot: None })
    }
}

impl Session {
    /// Applies a placement delta to the hot pipeline.
    ///
    /// Returns what the pipeline did ([`PipelineUpdate::Noop`] /
    /// [`PipelineUpdate::Incremental`] / [`PipelineUpdate::FullRebuild`]).
    /// A noop keeps the current prediction snapshot — and therefore the
    /// engine cache key — untouched.
    ///
    /// # Errors
    ///
    /// [`ServeError::Session`] if a structural fallback rebuild fails
    /// (e.g. the delta pushed every net past the size filter).
    pub fn update(&mut self, delta: &PlacementDelta) -> Result<PipelineUpdate> {
        let outcome = self.pipeline.apply(delta);
        // Any non-noop outcome — including a failed rebuild, which leaves
        // the pipeline poisoned — invalidates the prediction snapshot.
        if !matches!(outcome, Ok(PipelineUpdate::Noop)) {
            self.snapshot = None;
        }
        outcome.map_err(|e| ServeError::Session(e.to_string()))
    }

    /// Predicts congestion for the current placement through the shared
    /// engine (worker pool, single-flight dedup, fingerprint cache).
    ///
    /// # Errors
    ///
    /// [`ServeError::Session`] if the pipeline is poisoned (a fallback
    /// rebuild failed, so graph/features lag the placement — answering
    /// would serve a stale map as current); otherwise propagates engine
    /// errors ([`ServeError::UnknownModel`], [`ServeError::Incompatible`],
    /// shutdown races).
    pub fn predict(&mut self) -> Result<ServeReply> {
        let (ops, features) = self.inputs()?;
        let request =
            PredictRequest::new(&self.cfg.model, ops, features).with_threshold(self.cfg.threshold);
        self.handle.predict(&request)
    }

    /// The current `(operators, scaled features)` snapshot, as submitted
    /// to the engine by [`Session::predict`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Session`] while the pipeline is poisoned — the
    /// snapshot would describe an older placement than the session's.
    pub fn inputs(&mut self) -> Result<(Arc<GraphOps>, Arc<FeatureSet>)> {
        if self.pipeline.is_poisoned() {
            return Err(ServeError::Session(
                "pipeline is poisoned (a rebuild failed); apply a delta that admits a \
                 rebuild before predicting"
                    .into(),
            ));
        }
        if self.snapshot.is_none() {
            let ops = self.pipeline.ops();
            let features = Arc::new(
                self.pipeline
                    .features()
                    .scaled_fixed(&self.cfg.gcell_divisors, &self.cfg.gnet_divisors),
            );
            self.snapshot = Some((ops, features));
        }
        let (ops, features) = self.snapshot.as_ref().expect("just filled");
        Ok((Arc::clone(ops), Arc::clone(features)))
    }

    /// The hot pipeline (placement, graph, counters).
    pub fn pipeline(&self) -> &LatticePipeline {
        &self.pipeline
    }

    /// The pipeline's lifetime counters.
    pub fn stats(&self) -> &PipelineStats {
        self.pipeline.stats()
    }

    /// The session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, ServeEngine};
    use crate::registry::ModelRegistry;
    use lhnn::{Lhnn, LhnnConfig};
    use vlsi_netlist::synth::{generate, SynthConfig};
    use vlsi_netlist::{CellId, Point};
    use vlsi_place::GlobalPlacer;

    fn engine() -> ServeEngine {
        let registry = Arc::new(ModelRegistry::new());
        registry.register("default", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
        ServeEngine::new(registry, EngineConfig { workers: 2, ..EngineConfig::default() })
    }

    fn design(seed: u64) -> (Arc<Circuit>, Placement, GcellGrid) {
        let cfg = SynthConfig { seed, n_cells: 120, grid_nx: 8, grid_ny: 8, ..Default::default() };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        (Arc::new(synth.circuit), placed.placement, grid)
    }

    #[test]
    fn session_predicts_and_noop_update_hits_cache() {
        let engine = engine();
        let handle = engine.handle();
        let (circuit, placement, grid) = design(1);
        let mut session =
            handle.open_session(SessionConfig::new("default"), circuit, placement, grid).unwrap();
        let cold = session.predict().unwrap();
        assert!(!cold.cached);
        // unchanged placement → same fingerprints → cache hit
        let warm = session.predict().unwrap();
        assert!(warm.cached);
        // a noop delta must not spoil the key
        let id = CellId(0);
        let pos = session.pipeline().placement().position(id);
        let update = session.update(&PlacementDelta::single(id, pos)).unwrap();
        assert_eq!(update, PipelineUpdate::Noop);
        assert!(session.predict().unwrap().cached);
        engine.shutdown();
    }

    #[test]
    fn session_predictions_match_direct_model_bitwise() {
        let engine = engine();
        let handle = engine.handle();
        let (circuit, placement, grid) = design(2);
        let mut session = handle
            .open_session(
                SessionConfig::new("default"),
                Arc::clone(&circuit),
                placement.clone(),
                grid.clone(),
            )
            .unwrap();
        let die = circuit.die;
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let mut placement = placement;
        for step in 0..4u32 {
            // move one cell a g-cell to the right, both in the session and
            // in the reference placement
            let id = CellId(step);
            let np = die.clamp(Point::new(
                placement.position(id).x + grid.gcell_width() * 1.5,
                placement.position(id).y,
            ));
            placement.set_position(id, np);
            session.update(&PlacementDelta::single(id, np)).unwrap();
            let reply = session.predict().unwrap();
            // reference: batch rebuild from scratch
            let (ops, features) = batch_inputs(&circuit, &placement, &grid, session.config());
            let direct = model.predict(&ops, &features);
            assert!(
                reply.prediction.cls_prob.approx_eq(&direct.cls_prob, 0.0),
                "served prediction diverged from batch rebuild at step {step}"
            );
        }
        engine.shutdown();
    }

    fn batch_inputs(
        circuit: &Circuit,
        placement: &Placement,
        grid: &GcellGrid,
        cfg: &SessionConfig,
    ) -> (GraphOps, FeatureSet) {
        let graph = lh_graph::LhGraph::build(circuit, placement, grid, &cfg.graph).unwrap();
        let features = FeatureSet::build(&graph, circuit, placement, grid)
            .unwrap()
            .scaled_fixed(&cfg.gcell_divisors, &cfg.gnet_divisors);
        (GraphOps::from_graph(&graph, &AblationSpec::full()), features)
    }

    #[test]
    fn unknown_model_is_rejected_at_open() {
        let engine = engine();
        let (circuit, placement, grid) = design(3);
        let err = engine
            .handle()
            .open_session(SessionConfig::new("nope"), circuit, placement, grid)
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel(_)));
        engine.shutdown();
    }

    #[test]
    fn poisoned_session_refuses_to_serve_stale_predictions() {
        use vlsi_netlist::{Cell, Net, Pin, Rect};
        let engine = engine();
        let handle = engine.handle();
        // Single 2-pin net with a 1-g-cell size filter: stretching it is
        // structural and the fallback rebuild fails (no nets survive).
        let die = Rect::new(0.0, 0.0, 8.0, 8.0);
        let grid = GcellGrid::new(die, 4, 4);
        let mut c = Circuit::new("tiny", die);
        let a = c.add_cell(Cell::movable("a", 0.2, 0.2));
        let b = c.add_cell(Cell::movable("b", 0.2, 0.2));
        c.add_net(Net::new("n", vec![Pin::at_center(a), Pin::at_center(b)]));
        let mut placement = Placement::zeroed(2);
        placement.set_position(a, Point::new(1.0, 1.0));
        placement.set_position(b, Point::new(1.2, 1.2));
        let cfg = SessionConfig::new("default")
            .with_graph_config(LhGraphConfig { max_gnet_fraction: 1e-9 });
        let mut session = handle.open_session(cfg, Arc::new(c), placement, grid).unwrap();
        assert!(session.predict().is_ok());

        let stretch = PlacementDelta::single(b, Point::new(7.0, 7.0));
        assert!(matches!(session.update(&stretch), Err(ServeError::Session(_))));
        // the session must refuse to answer from the stale state
        assert!(
            matches!(session.predict(), Err(ServeError::Session(_))),
            "poisoned session must not serve a pre-delta congestion map"
        );
        // healing delta: rebuild succeeds, predictions flow again
        let heal = PlacementDelta::single(b, Point::new(1.3, 1.3));
        assert!(matches!(session.update(&heal), Ok(PipelineUpdate::FullRebuild { .. })));
        assert!(session.predict().is_ok());
        engine.shutdown();
    }

    #[test]
    fn incremental_updates_are_counted() {
        let engine = engine();
        let handle = engine.handle();
        let (circuit, placement, grid) = design(4);
        let mut session = handle
            .open_session(SessionConfig::new("default"), Arc::clone(&circuit), placement, grid)
            .unwrap();
        let die = circuit.die;
        let mut moved = 0;
        for i in 0..8u32 {
            let id = CellId(i);
            let p = session.pipeline().placement().position(id);
            let np = die.clamp(Point::new(p.x + 2.5, p.y + 2.5));
            let update = session.update(&PlacementDelta::single(id, np)).unwrap();
            if matches!(update, PipelineUpdate::Incremental { .. }) {
                moved += 1;
            }
        }
        assert_eq!(session.stats().updates, 8);
        assert_eq!(
            session.stats().incremental,
            moved,
            "stats must count exactly the incremental updates"
        );
        engine.shutdown();
    }
}
