//! Stateful placement-loop sessions: the pipelined incremental serving
//! surface.
//!
//! A stateless [`crate::ServeHandle::predict`] forces every caller to
//! rebuild graph operators and features per query — fine for one-shot
//! CLIs, wasteful for a placer that perturbs a few cells and re-queries
//! thousands of times. A [`Session`] keeps a [`LatticePipeline`] hot per
//! design, and since this PR the update half is **pipelined**: the delta
//! is applied by the session's shard workers while the caller overlaps
//! its own work.
//!
//! ```text
//! open_session(circuit, placement)      // one full build; design → shard
//!   loop {
//!     let t = session.submit_update(&delta);   // no waiting;
//!                                              // the shard applies it
//!     /* caller overlaps placer work here */
//!     session.predict()                 // drains pending tickets in
//!                                       // order, then runs the forward
//!   }
//! ```
//!
//! # Ordering and determinism
//!
//! Deltas apply strictly in submission order: appliers (shard workers,
//! `predict`, `UpdateTicket::wait`) take the session's state lock first
//! and then drain the pending queue FIFO, so no interleaving of workers
//! can reorder two updates. Combined with the bitwise-deterministic
//! kernel backend, any interleaving of sessions across any shard count
//! yields predictions bitwise identical to serial single-shard execution
//! (proptest-enforced in `tests/sharded_sessions.rs`).
//!
//! # Failure discipline
//!
//! A failed structural fallback rebuild poisons the pipeline: the ticket
//! that triggered it *and every later call* fail until a delta admits a
//! successful rebuild — exactly the pre-pipelining behaviour. A *panic*
//! mid-apply (distinct from a clean error) wedges the session
//! permanently: the placement may have advanced while graph state did
//! not, so every later call surfaces [`ServeError::Poisoned`]; the
//! engine itself keeps serving every other session.
//!
//! Because incremental updates are bitwise identical to full rebuilds,
//! the engine's fingerprint-keyed prediction cache composes
//! transparently: a `predict` after a no-op update (or after a delta
//! that returns to a previously seen placement) hits the cache exactly
//! as if the inputs had been batch-built.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use lh_graph::{FeatureSet, LhGraphConfig};
use lhnn::{
    AblationSpec, ForwardDirty, GraphOps, IncrementalForward, IncrementalStats, InvalidationCause,
    LatticePipeline, PipelineStats, PipelineUpdate, RebuildCause,
};
use lhnn_obs::{FlightEventKind, FlightRecorder, Histogram};
use vlsi_netlist::{Circuit, GcellGrid, Placement, PlacementDelta};

use crate::engine::{PredictRequest, ServeHandle, ServeReply};
use crate::error::{Result, ServeError};

/// Options for [`ServeHandle::open_session`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Registry name of the model to serve with.
    pub model: String,
    /// Design identity used for shard affinity (stable hash of this id
    /// picks the shard). `None` (the default) uses the circuit's name, so
    /// two sessions over the same design share a shard — and its cache.
    pub design: Option<String>,
    /// Congestion threshold applied to predictions.
    pub threshold: f32,
    /// LH-graph build options.
    pub graph: LhGraphConfig,
    /// Fixed per-channel G-cell feature divisors (see
    /// [`FeatureSet::scaled_fixed`]).
    pub gcell_divisors: Vec<f32>,
    /// Fixed per-channel G-net feature divisors.
    pub gnet_divisors: Vec<f32>,
}

impl SessionConfig {
    /// Defaults: 0.5 threshold, default graph config, the reproduction's
    /// fixed feature divisors, shard affinity by circuit name.
    pub fn new(model: impl Into<String>) -> Self {
        let (gcell_divisors, gnet_divisors) = FeatureSet::default_divisors();
        Self {
            model: model.into(),
            design: None,
            threshold: 0.5,
            graph: LhGraphConfig::default(),
            gcell_divisors,
            gnet_divisors,
        }
    }

    /// Sets the congestion threshold.
    #[must_use]
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the LH-graph build options.
    #[must_use]
    pub fn with_graph_config(mut self, graph: LhGraphConfig) -> Self {
        self.graph = graph;
        self
    }

    /// Sets an explicit design id for shard affinity.
    #[must_use]
    pub fn with_design(mut self, design: impl Into<String>) -> Self {
        self.design = Some(design.into());
        self
    }
}

/// A pending, not-yet-applied [`Session::submit_update`].
///
/// The outcome arrives when the session's shard (or any in-order drain —
/// a later `predict`, a blocking [`UpdateTicket::wait`]) applies the
/// delta. Dropping the ticket is fine: the update still applies; only
/// the outcome is discarded.
#[derive(Debug)]
pub struct UpdateTicket {
    core: Arc<SessionCore>,
    rx: mpsc::Receiver<Result<PipelineUpdate>>,
}

impl UpdateTicket {
    /// Blocks until the update has been applied, returning what the
    /// pipeline did.
    ///
    /// Never deadlocks: if no shard worker has drained the queue yet (the
    /// engine may be saturated, or already shut down), the caller drains
    /// it inline — in submission order, exactly as a worker would.
    ///
    /// # Errors
    ///
    /// [`ServeError::Session`] if a structural fallback rebuild failed
    /// (the pipeline is poisoned until a later delta admits a rebuild);
    /// [`ServeError::Poisoned`] if the session wedged (a panic mid-apply).
    pub fn wait(self) -> Result<PipelineUpdate> {
        if let Ok(outcome) = self.rx.try_recv() {
            return outcome;
        }
        // Drain inline. If a worker owns the state lock right now it will
        // apply our delta before releasing; either way the reply is in
        // the channel once we get the lock and find the queue empty.
        self.core.service();
        self.rx.recv().map_err(|_| {
            ServeError::Poisoned("update ticket lost: session state dropped mid-apply".into())
        })?
    }
}

struct PendingUpdate {
    delta: PlacementDelta,
    reply: mpsc::Sender<Result<PipelineUpdate>>,
}

struct SessionState {
    pipeline: LatticePipeline,
    /// Scaled snapshot of the pipeline state, rebuilt lazily after a
    /// non-noop update. Holding `Arc`s means repeated `predict` calls on
    /// an unchanged placement submit pointer-identical inputs.
    snapshot: Option<(Arc<GraphOps>, Arc<FeatureSet>)>,
    /// Set when an apply *panicked* (not merely errored): the placement
    /// may have advanced while graph state did not, and unlike a failed
    /// rebuild the divergence is unknowable. Every later call fails with
    /// [`ServeError::Poisoned`].
    wedged: Option<String>,
}

/// The shard-shared half of a [`Session`]: the hot pipeline plus the
/// FIFO queue of not-yet-applied deltas.
///
/// Appliers take `state` first and then drain `pending` front-to-back
/// under it, so updates apply in submission order no matter which thread
/// (shard worker, `predict`, `UpdateTicket::wait`) performs the drain.
pub(crate) struct SessionCore {
    state: Mutex<SessionState>,
    pending: Mutex<VecDeque<PendingUpdate>>,
    divisors: (Vec<f32>, Vec<f32>),
    /// Bounded-radius forward state for this design: cached per-layer
    /// activations plus the dirty sets noted by applied updates. Appliers
    /// note every outcome here (under the state lock, so notes follow
    /// apply order); `predict` hands it to the engine so a worker can
    /// splice instead of recomputing every G-cell.
    incr: Arc<IncrementalForward>,
    /// The design id the session routes (and labels its metrics) by.
    design: String,
    /// Per-design trace handles; `None` when the engine runs without
    /// metrics ([`crate::EngineConfig::metrics`] off).
    obs: Option<SessionObs>,
}

/// The session's slice of the engine's observability plane: the flight
/// recorder (fallback/poison/wedge events carry the design as scope) and
/// the predict-side drain-stage span.
struct SessionObs {
    flight: Arc<FlightRecorder>,
    drain: Histogram,
}

impl std::fmt::Debug for SessionCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SessionCore")
    }
}

impl SessionCore {
    /// Recovers a session-state guard from mutex poisoning, recording
    /// that coherence is gone: the holder panicked outside
    /// `drain_locked`'s catch (e.g. mid-snapshot), so unlike the engine's
    /// re-derivable locks this state cannot be trusted again.
    fn wedge_on_poison(
        poison: std::sync::PoisonError<std::sync::MutexGuard<'_, SessionState>>,
    ) -> std::sync::MutexGuard<'_, SessionState> {
        let mut guard = poison.into_inner();
        if guard.wedged.is_none() {
            guard.wedged = Some("a thread panicked while holding the session state".into());
        }
        guard
    }

    /// Locks the session state, converting poison into a wedge.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, SessionState> {
        self.state.lock().unwrap_or_else(Self::wedge_on_poison)
    }

    /// Applies every pending delta in submission order; returns how many
    /// were applied. Blocking — used by the inline drains
    /// ([`UpdateTicket::wait`]), which guarantee liveness.
    pub(crate) fn service(&self) -> usize {
        self.drain_locked(&mut self.lock_state())
    }

    /// The shard-worker variant of [`SessionCore::service`]: never blocks
    /// on the session state — a worker parked on one session's mutex
    /// would head-of-line-block every other job on its shard.
    ///
    /// Returns `Some(applied)` when the drain ran (possibly applying
    /// nothing), and `None` when the state lock was busy while deltas are
    /// still pending — the current holder may have finished its own drain
    /// before those deltas arrived, so the caller must re-nudge rather
    /// than drop them on the floor (a lost nudge would silently degrade
    /// pipelining to apply-on-next-inline-drain).
    pub(crate) fn service_nonblocking(&self) -> Option<usize> {
        let mut state = match self.state.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                let drained = crate::lock::recover(&self.pending).is_empty();
                return if drained { Some(0) } else { None };
            }
            Err(std::sync::TryLockError::Poisoned(poison)) => Self::wedge_on_poison(poison),
        };
        Some(self.drain_locked(&mut state))
    }

    fn drain_locked(&self, state: &mut SessionState) -> usize {
        let mut applied = 0;
        loop {
            let next = crate::lock::recover(&self.pending).pop_front();
            let Some(PendingUpdate { delta, reply }) = next else { break };
            applied += 1;
            // A submitter that dropped its ticket is fine.
            let _ = reply.send(self.apply_locked(state, &delta));
        }
        applied
    }

    /// Applies one delta under the state lock, enforcing the wedge/poison
    /// discipline. The single apply path for drained and inline updates.
    fn apply_locked(
        &self,
        state: &mut SessionState,
        delta: &PlacementDelta,
    ) -> Result<PipelineUpdate> {
        if let Some(why) = &state.wedged {
            return Err(ServeError::Poisoned(format!("session wedged: {why}")));
        }
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| state.pipeline.apply(delta)))
        {
            Ok(Ok(update)) => {
                // Feed the incremental-forward notes (still under the
                // state lock, so notes land in apply order). A noop
                // touches nothing; an incremental patch contributes its
                // dirty sets (including tombstoned/revived/appended
                // filter-crossing columns — stable columns keep those on
                // the splice path); a full rebuild may have renumbered
                // G-net columns, so the activation cache must die with it.
                match &update {
                    PipelineUpdate::Noop => {}
                    PipelineUpdate::Incremental { dirty_nets, dirty_gcells } => {
                        self.incr.note_incremental(&ForwardDirty::new(
                            dirty_gcells.clone(),
                            dirty_nets.clone(),
                        ));
                    }
                    PipelineUpdate::FullRebuild { cause } => {
                        self.incr.note_structural(InvalidationCause::from(cause));
                        if let Some(o) = &self.obs {
                            match cause {
                                RebuildCause::Compaction { tombstones, live } => o.flight.record(
                                    FlightEventKind::Compaction,
                                    &self.design,
                                    format!(
                                        "compacted {tombstones} tombstoned g-net columns \
                                         ({live} live)"
                                    ),
                                ),
                                _ => o.flight.record(
                                    FlightEventKind::Fallback,
                                    &self.design,
                                    format!("full rebuild: {cause}"),
                                ),
                            }
                        }
                    }
                }
                if !matches!(update, PipelineUpdate::Noop) {
                    state.snapshot = None;
                }
                Ok(update)
            }
            Ok(Err(e)) => {
                // Failed fallback rebuild: the pipeline is poisoned and
                // every later call fails until a rebuild succeeds (the
                // pipeline retries on each subsequent apply).
                state.snapshot = None;
                self.incr.note_structural(InvalidationCause::Poisoned);
                if let Some(o) = &self.obs {
                    o.flight.record(
                        FlightEventKind::Poisoned,
                        &self.design,
                        format!("fallback rebuild failed: {e}"),
                    );
                }
                Err(ServeError::Session(e.to_string()))
            }
            Err(panic) => {
                let why = panic
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic mid-apply".into());
                state.snapshot = None;
                state.wedged = Some(why.clone());
                self.incr.note_structural(InvalidationCause::Poisoned);
                if let Some(o) = &self.obs {
                    o.flight.record(FlightEventKind::Wedged, &self.design, why.clone());
                }
                Err(ServeError::Poisoned(format!("session wedged: {why}")))
            }
        }
    }
}

/// One session's merged observability view ([`Session::observability`]):
/// the pipeline and incremental-forward counters side by side, tagged
/// with the design id and shard they describe.
#[derive(Debug, Clone)]
pub struct SessionObservability {
    /// The design id the session routes (and labels its metrics) by.
    pub design: String,
    /// The shard the session is pinned to.
    pub shard: usize,
    /// Update-path counters: noops, incremental patches, fallbacks.
    pub pipeline: PipelineStats,
    /// Forward-path counters: reused, spliced, full, invalidations.
    pub incremental: IncrementalStats,
}

/// A hot placement-loop session over one design, pinned to one shard.
///
/// Owned by the placer thread driving it; the underlying engine, its
/// shard's worker slice and prediction cache are shared with every other
/// client of the [`ServeHandle`].
#[derive(Debug)]
pub struct Session {
    handle: ServeHandle,
    cfg: SessionConfig,
    core: Arc<SessionCore>,
    shard: usize,
}

impl ServeHandle {
    /// Opens a placement-loop session: builds the full pipeline once,
    /// pins the session to its design's shard (stable hash of the design
    /// id) and keeps it hot for incremental updates.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] if `cfg.model` is not registered;
    /// [`ServeError::Session`] if the initial pipeline build fails.
    pub fn open_session(
        &self,
        cfg: SessionConfig,
        circuit: Arc<Circuit>,
        placement: Placement,
        grid: GcellGrid,
    ) -> Result<Session> {
        let entry = self
            .registry()
            .get(&cfg.model)
            .ok_or_else(|| ServeError::UnknownModel(cfg.model.clone()))?;
        let model_kind = entry.model.kind();
        let design_id = cfg.design.clone().unwrap_or_else(|| circuit.name.clone());
        let shard = self.shard_of_design(&design_id);
        let mut pipeline =
            LatticePipeline::new(circuit, placement, grid, cfg.graph.clone(), AblationSpec::full())
                .map_err(|e| ServeError::Session(e.to_string()))?;
        // Wire the design's instrumentation into the engine's registry
        // and flight recorder. With metrics off both collapse to `None` /
        // disabled handles, so the hot path stays untouched.
        let engine_obs = self.obs();
        let (incr, obs) = if engine_obs.registry.is_enabled() {
            pipeline.set_metrics(&engine_obs.registry, &design_id);
            (
                IncrementalForward::with_metrics(&engine_obs.registry, &design_id, model_kind),
                Some(SessionObs {
                    flight: Arc::clone(&engine_obs.flight),
                    drain: engine_obs.registry.stage("drain"),
                }),
            )
        } else {
            (IncrementalForward::new(), None)
        };
        let core = Arc::new(SessionCore {
            state: Mutex::new(SessionState { pipeline, snapshot: None, wedged: None }),
            pending: Mutex::new(VecDeque::new()),
            divisors: (cfg.gcell_divisors.clone(), cfg.gnet_divisors.clone()),
            incr: Arc::new(incr),
            design: design_id,
            obs,
        });
        // Cross-kind hot-swaps must be able to kill this session's
        // activation cache (weakly held; dropping the session unregisters).
        self.register_session_incr(&cfg.model, &core.incr);
        Ok(Session { handle: self.clone(), cfg, core, shard })
    }
}

impl Session {
    /// Submits a placement delta for pipelined application on the
    /// session's shard, without waiting for it to apply.
    ///
    /// The caller overlaps its own work while a shard worker applies the
    /// delta; the returned [`UpdateTicket`] resolves to what the pipeline
    /// did. Updates apply strictly in submission order, and
    /// [`Session::predict`] drains every pending ticket before running a
    /// forward — predictions can never observe a half-applied sequence.
    ///
    /// Submission cannot fail: the delta always lands in the session's
    /// pending queue, and even if the engine refuses the nudge (shutdown)
    /// the next in-order drain — `predict` or [`UpdateTicket::wait`] —
    /// applies it inline, so the session survives its engine. The call
    /// may block briefly on the shard's backpressure bound when its queue
    /// is full.
    pub fn submit_update(&self, delta: &PlacementDelta) -> UpdateTicket {
        let (tx, rx) = mpsc::channel();
        let was_empty = {
            let mut pending = crate::lock::recover(&self.core.pending);
            let was_empty = pending.is_empty();
            pending.push_back(PendingUpdate { delta: delta.clone(), reply: tx });
            was_empty
        };
        // Nudge the shard — but only when this push made the queue
        // non-empty: a non-empty queue already has a nudge in flight (or
        // an active drainer, which pops until empty and so picks this
        // delta up too).
        if was_empty {
            let _ = self.handle.enqueue_session(self.shard, Arc::clone(&self.core));
        }
        UpdateTicket { core: Arc::clone(&self.core), rx }
    }

    /// Applies a placement delta synchronously (submit + wait).
    ///
    /// Returns what the pipeline did ([`PipelineUpdate::Noop`] /
    /// [`PipelineUpdate::Incremental`] / [`PipelineUpdate::FullRebuild`]).
    /// A noop keeps the current prediction snapshot — and therefore the
    /// engine cache key — untouched.
    ///
    /// # Errors
    ///
    /// [`ServeError::Session`] if a structural fallback rebuild fails
    /// (e.g. the delta pushed every net past the size filter);
    /// [`ServeError::Poisoned`] if the session wedged.
    pub fn update(&mut self, delta: &PlacementDelta) -> Result<PipelineUpdate> {
        // The blocking path skips the ticket/nudge machinery entirely:
        // drain anything still pending (in submission order), then apply
        // this delta inline — no channel, no queue round-trip, no worker
        // wake-up that would find nothing to do.
        let mut state = self.core.lock_state();
        self.core.drain_locked(&mut state);
        self.core.apply_locked(&mut state, delta)
    }

    /// Predicts congestion for the current placement through the shared
    /// engine, after draining every pending update in submission order.
    ///
    /// Routes to the session's shard, so the forward runs on the worker
    /// slice that owns this design and the result lands in that shard's
    /// cache.
    ///
    /// # Errors
    ///
    /// [`ServeError::Session`] if the pipeline is poisoned (a fallback
    /// rebuild failed, so graph/features lag the placement — answering
    /// would serve a stale map as current); [`ServeError::Poisoned`] if
    /// the session wedged; otherwise propagates engine errors
    /// ([`ServeError::UnknownModel`], [`ServeError::Incompatible`],
    /// shutdown races).
    pub fn predict(&mut self) -> Result<ServeReply> {
        let (ops, features, seq) = self.inputs_with_seq()?;
        let request = PredictRequest::new(&self.cfg.model, ops, features)
            .with_threshold(self.cfg.threshold)
            .with_incremental(Arc::clone(&self.core.incr), seq);
        self.handle.predict_on_shard(self.shard, &request)
    }

    /// The current `(operators, scaled features)` snapshot, as submitted
    /// to the engine by [`Session::predict`] — after draining every
    /// pending update.
    ///
    /// # Errors
    ///
    /// [`ServeError::Session`] while the pipeline is poisoned (the
    /// snapshot would describe an older placement than the session's);
    /// [`ServeError::Poisoned`] if the session wedged.
    pub fn inputs(&mut self) -> Result<(Arc<GraphOps>, Arc<FeatureSet>)> {
        let (ops, features, _) = self.inputs_with_seq()?;
        Ok((ops, features))
    }

    /// [`Session::inputs`] plus the incremental-forward note sequence,
    /// captured under the same state lock as the snapshot — so dirt noted
    /// by updates applied *after* this snapshot stays pending across the
    /// forward that consumes it.
    fn inputs_with_seq(&mut self) -> Result<(Arc<GraphOps>, Arc<FeatureSet>, u64)> {
        let mut state = self.core.lock_state();
        // In-order drain of anything still pending: predictions always
        // describe every update submitted before them.
        let t_drain = self.core.obs.as_ref().and_then(|o| o.drain.start());
        self.core.drain_locked(&mut state);
        if let Some(o) = &self.core.obs {
            o.drain.stop_us(t_drain);
        }
        if let Some(why) = &state.wedged {
            return Err(ServeError::Poisoned(format!("session wedged: {why}")));
        }
        if state.pipeline.is_poisoned() {
            return Err(ServeError::Session(
                "pipeline is poisoned (a rebuild failed); apply a delta that admits a \
                 rebuild before predicting"
                    .into(),
            ));
        }
        if state.snapshot.is_none() {
            let ops = state.pipeline.ops();
            let (gcell_div, gnet_div) = &self.core.divisors;
            let features = Arc::new(state.pipeline.features().scaled_fixed(gcell_div, gnet_div));
            state.snapshot = Some((ops, features));
        }
        let seq = self.core.incr.seq();
        let (ops, features) = state.snapshot.as_ref().expect("just filled");
        Ok((Arc::clone(ops), Arc::clone(features), seq))
    }

    /// Runs `f` against the hot pipeline (placement, graph, counters),
    /// after draining pending updates so the observed state is current.
    /// A wedged session still exposes its (last coherent-looking)
    /// pipeline here for diagnostics; prefer [`Session::inputs`] /
    /// [`Session::predict`] for anything that must refuse wedged state.
    pub fn with_pipeline<T>(&self, f: impl FnOnce(&LatticePipeline) -> T) -> T {
        let mut state = self.core.lock_state();
        self.core.drain_locked(&mut state);
        f(&state.pipeline)
    }

    /// The pipeline's lifetime counters (pending updates drained first).
    /// [`PipelineStats::stale`] is set while the pipeline is poisoned —
    /// the counters then describe the pre-failure placement.
    pub fn stats(&self) -> PipelineStats {
        self.with_pipeline(LatticePipeline::stats)
    }

    /// The incremental-forward counters: how many predictions were served
    /// from the activation cache outright, spliced over a dirty halo, or
    /// recomputed in full, and how often structural events invalidated
    /// the cache.
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.core.incr.stats()
    }

    /// `(operators, features)` content fingerprints of the current state
    /// (pending updates drained first).
    ///
    /// # Errors
    ///
    /// [`ServeError::Session`] while the pipeline is poisoned: the
    /// fingerprints would describe the pre-failure placement, not the
    /// session's.
    pub fn fingerprints(&self) -> Result<(u64, u64)> {
        self.with_pipeline(LatticePipeline::fingerprints)
            .map_err(|e| ServeError::Session(e.to_string()))
    }

    /// One merged observability view of the session: the pipeline's
    /// lifetime counters and the incremental-forward counters, captured
    /// together with the design id and shard (pending updates drained
    /// first, so both halves describe the same state). The same numbers
    /// are exported as `lhnn_design_*` series in the engine's registry
    /// snapshot ([`crate::ServeHandle::metrics_snapshot`]).
    pub fn observability(&self) -> SessionObservability {
        SessionObservability {
            design: self.core.design.clone(),
            shard: self.shard,
            pipeline: self.stats(),
            incremental: self.incremental_stats(),
        }
    }

    /// The shard this session's updates and predictions are pinned to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, ServeEngine};
    use crate::registry::ModelRegistry;
    use lhnn::{Lhnn, LhnnConfig};
    use vlsi_netlist::synth::{generate, SynthConfig};
    use vlsi_netlist::{CellId, Point};
    use vlsi_place::GlobalPlacer;

    fn engine() -> ServeEngine {
        let registry = Arc::new(ModelRegistry::new());
        registry.register("default", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
        ServeEngine::new(registry, EngineConfig { workers: 2, ..EngineConfig::default() })
    }

    fn sharded_engine(shards: usize) -> ServeEngine {
        let registry = Arc::new(ModelRegistry::new());
        registry.register("default", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
        ServeEngine::new(
            registry,
            EngineConfig { workers: shards, shards, ..EngineConfig::default() },
        )
    }

    fn design(seed: u64) -> (Arc<Circuit>, Placement, GcellGrid) {
        let cfg = SynthConfig { seed, n_cells: 120, grid_nx: 8, grid_ny: 8, ..Default::default() };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        (Arc::new(synth.circuit), placed.placement, grid)
    }

    #[test]
    fn session_predicts_and_noop_update_hits_cache() {
        let engine = engine();
        let handle = engine.handle();
        let (circuit, placement, grid) = design(1);
        let mut session =
            handle.open_session(SessionConfig::new("default"), circuit, placement, grid).unwrap();
        let cold = session.predict().unwrap();
        assert!(!cold.cached);
        // unchanged placement → same fingerprints → cache hit
        let warm = session.predict().unwrap();
        assert!(warm.cached);
        // a noop delta must not spoil the key
        let id = CellId(0);
        let pos = session.with_pipeline(|p| p.placement().position(id));
        let update = session.update(&PlacementDelta::single(id, pos)).unwrap();
        assert_eq!(update, PipelineUpdate::Noop);
        assert!(session.predict().unwrap().cached);
        engine.shutdown();
    }

    #[test]
    fn pipelined_updates_apply_in_order_and_predict_drains() {
        let engine = sharded_engine(2);
        let handle = engine.handle();
        let (circuit, placement, grid) = design(9);
        let die = circuit.die;
        let mut session = handle
            .open_session(
                SessionConfig::new("default"),
                Arc::clone(&circuit),
                placement.clone(),
                grid.clone(),
            )
            .unwrap();
        // submit a burst of updates without waiting on any of them
        let mut reference = placement.clone();
        let mut tickets = Vec::new();
        let mut deltas = Vec::new();
        for step in 0..5u32 {
            let id = CellId(step);
            let np = die.clamp(Point::new(
                reference.position(id).x + grid.gcell_width() * 1.25,
                reference.position(id).y + grid.gcell_height() * 0.75,
            ));
            reference.set_position(id, np);
            let delta = PlacementDelta::single(id, np);
            tickets.push(session.submit_update(&delta));
            deltas.push(delta);
        }
        // predict drains all five in order before the forward
        let reply = session.predict().unwrap();
        assert!(reply.prediction.cls_prob.is_finite());
        for t in tickets {
            // tickets resolve (possibly applied by the predict drain)
            t.wait().unwrap();
        }
        // the session state equals a serial replay of the same deltas —
        // updates were neither lost nor reordered (a crossing mid-burst
        // tombstones/appends columns, so the stable layout — and thus the
        // fingerprints — depends on the exact apply order)
        let mut fresh = LatticePipeline::for_serving(circuit, placement, grid).unwrap();
        for delta in &deltas {
            fresh.apply(delta).unwrap();
        }
        assert_eq!(session.fingerprints().unwrap(), fresh.fingerprints().unwrap());
        assert_eq!(session.stats().updates, 5);
        engine.shutdown();
    }

    #[test]
    fn tickets_resolve_after_engine_shutdown() {
        let engine = engine();
        let handle = engine.handle();
        let (circuit, placement, grid) = design(10);
        let die = circuit.die;
        let session =
            handle.open_session(SessionConfig::new("default"), circuit, placement, grid).unwrap();
        engine.shutdown();
        // the engine is gone, but the ticket drains inline instead of
        // hanging forever
        let id = CellId(0);
        let np = die.clamp(Point::new(die.ux * 0.5, die.uy * 0.5));
        let ticket = session.submit_update(&PlacementDelta::single(id, np));
        ticket.wait().unwrap();
        assert_eq!(session.stats().updates, 1);
    }

    #[test]
    fn session_predictions_match_direct_model_bitwise() {
        let engine = engine();
        let handle = engine.handle();
        let (circuit, placement, grid) = design(2);
        let mut session = handle
            .open_session(
                SessionConfig::new("default"),
                Arc::clone(&circuit),
                placement.clone(),
                grid.clone(),
            )
            .unwrap();
        let die = circuit.die;
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let mut placement = placement;
        for step in 0..4u32 {
            // move one cell a g-cell to the right, both in the session and
            // in the reference placement
            let id = CellId(step);
            let np = die.clamp(Point::new(
                placement.position(id).x + grid.gcell_width() * 1.5,
                placement.position(id).y,
            ));
            placement.set_position(id, np);
            session.update(&PlacementDelta::single(id, np)).unwrap();
            let reply = session.predict().unwrap();
            // reference: batch rebuild from scratch
            let (ops, features) = batch_inputs(&circuit, &placement, &grid, session.config());
            let direct = model.predict(&ops, &features);
            assert!(
                reply.prediction.cls_prob.approx_eq(&direct.cls_prob, 0.0),
                "served prediction diverged from batch rebuild at step {step}"
            );
        }
        // The loop-query path really took the bounded-radius fast path:
        // the first forward is full (cold cache), later ones splice over
        // the dirty halo — and each was bitwise-checked above.
        let inc = session.incremental_stats();
        assert_eq!(inc.full_forwards, 1, "only the cold forward recomputes everything");
        assert!(inc.spliced_forwards >= 1, "incremental updates must splice, got {inc:?}");
        engine.shutdown();
    }

    fn batch_inputs(
        circuit: &Circuit,
        placement: &Placement,
        grid: &GcellGrid,
        cfg: &SessionConfig,
    ) -> (GraphOps, FeatureSet) {
        let graph = lh_graph::LhGraph::build(circuit, placement, grid, &cfg.graph).unwrap();
        let features = FeatureSet::build(&graph, circuit, placement, grid)
            .unwrap()
            .scaled_fixed(&cfg.gcell_divisors, &cfg.gnet_divisors);
        (GraphOps::from_graph(&graph, &AblationSpec::full()), features)
    }

    #[test]
    fn unknown_model_is_rejected_at_open() {
        let engine = engine();
        let (circuit, placement, grid) = design(3);
        let err = engine
            .handle()
            .open_session(SessionConfig::new("nope"), circuit, placement, grid)
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel(_)));
        engine.shutdown();
    }

    #[test]
    fn poisoned_session_refuses_to_serve_stale_predictions() {
        use vlsi_netlist::{Cell, Net, Pin, Rect};
        let engine = engine();
        let handle = engine.handle();
        // Single 2-pin net with a 1-g-cell size filter: stretching it is
        // structural and the fallback rebuild fails (no nets survive).
        let die = Rect::new(0.0, 0.0, 8.0, 8.0);
        let grid = GcellGrid::new(die, 4, 4);
        let mut c = Circuit::new("tiny", die);
        let a = c.add_cell(Cell::movable("a", 0.2, 0.2));
        let b = c.add_cell(Cell::movable("b", 0.2, 0.2));
        c.add_net(Net::new("n", vec![Pin::at_center(a), Pin::at_center(b)]));
        let mut placement = Placement::zeroed(2);
        placement.set_position(a, Point::new(1.0, 1.0));
        placement.set_position(b, Point::new(1.2, 1.2));
        let cfg = SessionConfig::new("default").with_graph_config(LhGraphConfig {
            max_gnet_fraction: 1e-9,
            ..LhGraphConfig::default()
        });
        let mut session = handle.open_session(cfg, Arc::new(c), placement, grid).unwrap();
        assert!(session.predict().is_ok());

        let stretch = PlacementDelta::single(b, Point::new(7.0, 7.0));
        assert!(matches!(session.update(&stretch), Err(ServeError::Session(_))));
        // the session must refuse to answer from the stale state
        assert!(
            matches!(session.predict(), Err(ServeError::Session(_))),
            "poisoned session must not serve a pre-delta congestion map"
        );
        // pipelined tickets observe the same discipline: every call after
        // the failed rebuild fails until a delta admits a rebuild
        let nudge = PlacementDelta::single(b, Point::new(7.1, 7.1));
        let ticket = session.submit_update(&nudge);
        assert!(matches!(ticket.wait(), Err(ServeError::Session(_))));
        // healing delta: rebuild succeeds, predictions flow again
        let heal = PlacementDelta::single(b, Point::new(1.3, 1.3));
        assert!(matches!(session.update(&heal), Ok(PipelineUpdate::FullRebuild { .. })));
        assert!(session.predict().is_ok());
        engine.shutdown();
    }

    #[test]
    fn wedged_session_fails_permanently_but_not_the_engine() {
        let engine = engine();
        let handle = engine.handle();
        let (circuit, placement, grid) = design(11);
        let n_cells = circuit.num_cells() as u32;
        let mut session =
            handle.open_session(SessionConfig::new("default"), circuit, placement, grid).unwrap();
        assert!(session.predict().is_ok());
        // a delta referencing a cell outside the circuit panics mid-apply
        let bogus = PlacementDelta::single(CellId(n_cells + 7), Point::new(1.0, 1.0));
        let err = session.update(&bogus).unwrap_err();
        assert!(matches!(err, ServeError::Poisoned(_)), "got {err:?}");
        // every later call fails the same way — the state is unknowable
        assert!(matches!(session.predict(), Err(ServeError::Poisoned(_))));
        let id = CellId(0);
        let t = session.submit_update(&PlacementDelta::single(id, Point::new(1.0, 1.0)));
        assert!(matches!(t.wait(), Err(ServeError::Poisoned(_))));
        // ...but the engine is fine: a fresh session over a healthy design
        // serves normally
        let (c2, p2, g2) = design(12);
        let mut healthy = handle.open_session(SessionConfig::new("default"), c2, p2, g2).unwrap();
        assert!(healthy.predict().is_ok());
        engine.shutdown();
    }

    #[test]
    fn incremental_updates_are_counted() {
        let engine = engine();
        let handle = engine.handle();
        let (circuit, placement, grid) = design(4);
        let mut session = handle
            .open_session(SessionConfig::new("default"), Arc::clone(&circuit), placement, grid)
            .unwrap();
        let die = circuit.die;
        let mut moved = 0;
        for i in 0..8u32 {
            let id = CellId(i);
            let p = session.with_pipeline(|pl| pl.placement().position(id));
            let np = die.clamp(Point::new(p.x + 2.5, p.y + 2.5));
            let update = session.update(&PlacementDelta::single(id, np)).unwrap();
            if matches!(update, PipelineUpdate::Incremental { .. }) {
                moved += 1;
            }
        }
        assert_eq!(session.stats().updates, 8);
        assert_eq!(
            session.stats().incremental,
            moved,
            "stats must count exactly the incremental updates"
        );
        engine.shutdown();
    }

    /// A compaction rebuild (the one event that renumbers G-net columns)
    /// must invalidate the activation cache completely: the next
    /// prediction recomputes in full and still matches a from-scratch
    /// build bitwise. A zero tombstone budget makes the very first
    /// filter crossing compact.
    #[test]
    fn compaction_invalidates_the_activation_cache() {
        let engine = engine();
        let handle = engine.handle();
        let (circuit, placement, grid) = design(13);
        let die = circuit.die;
        let cfg = SessionConfig::new("default").with_graph_config(LhGraphConfig {
            max_tombstone_fraction: 0.0,
            ..LhGraphConfig::default()
        });
        let mut session = handle
            .open_session(cfg, Arc::clone(&circuit), placement.clone(), grid.clone())
            .unwrap();
        assert!(session.predict().is_ok());
        // yank cells across the die until one stretches a kept net past
        // the size filter — with no tombstone budget, that crossing is an
        // immediate compaction (full rebuild)
        let mut reference = placement;
        let mut compacted = false;
        for i in 0..20u32 {
            let id = CellId(i);
            let far = die.clamp(Point::new(die.ux - 0.01, die.uy - 0.01));
            reference.set_position(id, far);
            let update = session.update(&PlacementDelta::single(id, far)).unwrap();
            if let PipelineUpdate::FullRebuild { cause } = update {
                assert!(
                    matches!(cause, RebuildCause::Compaction { .. }),
                    "crossing with a zero tombstone budget must compact, got {cause:?}"
                );
                compacted = true;
                break;
            }
        }
        assert!(compacted, "no cross-die move crossed the size filter");
        let inc = session.incremental_stats();
        assert!(inc.invalidations >= 1, "compaction must invalidate the cache, got {inc:?}");
        assert!(inc.invalidations_compaction >= 1, "invalidation must book as compaction");
        let reply = session.predict().unwrap();
        let model = Lhnn::new(LhnnConfig::default(), 0);
        let (ops, features) = batch_inputs(&circuit, &reference, &grid, session.config());
        let direct = model.predict(&ops, &features);
        assert!(
            reply.prediction.cls_prob.approx_eq(&direct.cls_prob, 0.0),
            "post-compaction prediction must match a from-scratch build bitwise"
        );
        assert_eq!(
            session.incremental_stats().full_forwards,
            2,
            "the forward after a compaction recomputes everything"
        );
        engine.shutdown();
    }

    /// With the default tombstone budget, a size-filter crossing rides the
    /// incremental path: the activation cache survives (no invalidation),
    /// the pipeline reports the crossing as patched, and the forward
    /// after the crossing splices instead of recomputing every row.
    #[test]
    fn filter_crossings_keep_the_activation_cache() {
        let engine = engine();
        let handle = engine.handle();
        let (circuit, placement, grid) = design(13);
        let die = circuit.die;
        let mut session = handle
            .open_session(SessionConfig::new("default"), Arc::clone(&circuit), placement, grid)
            .unwrap();
        assert!(!session.predict().unwrap().cached);
        // yank one cell to the far corner (tombstoning its stretched
        // nets), then home again (reviving them): two crossings, zero
        // rebuilds
        let id = CellId(0);
        let home = session.with_pipeline(|p| p.placement().position(id));
        let far = die.clamp(Point::new(die.ux - 0.01, die.uy - 0.01));
        // outbound: a fresh placement, so the forward runs — spliced over
        // the crossing's dirty halo, not recomputed from scratch
        let update = session.update(&PlacementDelta::single(id, far)).unwrap();
        assert!(
            matches!(update, PipelineUpdate::Incremental { .. }),
            "crossing must patch in place, got {update:?}"
        );
        assert!(!session.predict().unwrap().cached);
        // homebound: revives the tombstoned columns *bitwise*, so the
        // fingerprints return to the cold values and the engine cache
        // serves the prediction without any forward at all
        let update = session.update(&PlacementDelta::single(id, home)).unwrap();
        assert!(
            matches!(update, PipelineUpdate::Incremental { .. }),
            "crossing must patch in place, got {update:?}"
        );
        assert!(
            session.predict().unwrap().cached,
            "out-and-back revival must restore the cold cache key"
        );
        let stats = session.stats();
        assert!(stats.crossings_patched >= 2, "out-and-back must count crossings: {stats:?}");
        assert_eq!(stats.full_rebuilds, 0, "crossings must not rebuild: {stats:?}");
        let inc = session.incremental_stats();
        assert_eq!(inc.invalidations, 0, "crossings must keep the cache, got {inc:?}");
        assert_eq!(inc.full_forwards, 1, "only the cold forward recomputes everything");
        assert!(inc.spliced_forwards >= 1, "crossing forward must splice, got {inc:?}");
        engine.shutdown();
    }

    /// Regression for cross-kind hot-swap: replacing a session's model
    /// with a **different architecture** mid-session must (a) evict the
    /// displaced version's cache entries, (b) invalidate the session's
    /// incremental activation cache (a splice against the old
    /// architecture's activations would be garbage), and (c) serve the
    /// new model bitwise-identically to a direct forward.
    #[test]
    fn cross_kind_hot_swap_invalidates_sessions_and_serves_the_new_model() {
        use lhnn::{HybridNet, HybridNetConfig};
        let engine = engine();
        let handle = engine.handle();
        let (circuit, placement, grid) = design(17);
        let die = circuit.die;
        let mut session = handle
            .open_session(
                SessionConfig::new("default"),
                Arc::clone(&circuit),
                placement.clone(),
                grid.clone(),
            )
            .unwrap();
        // warm the session: a cold full forward, then a spliced one
        assert!(!session.predict().unwrap().cached);
        let mut reference = placement;
        let id = CellId(0);
        let np = die.clamp(Point::new(
            reference.position(id).x + grid.gcell_width() * 1.5,
            reference.position(id).y,
        ));
        reference.set_position(id, np);
        session.update(&PlacementDelta::single(id, np)).unwrap();
        assert!(session.predict().is_ok());
        let before = session.incremental_stats();
        assert!(before.spliced_forwards >= 1, "warm-up must splice, got {before:?}");
        assert!(handle.cache_len() >= 1);

        // hot-swap LHNN -> HybridNet under the same registry name
        let hybrid = HybridNet::new(HybridNetConfig::default(), 3);
        let reference_model = HybridNet::new(HybridNetConfig::default(), 3);
        let entry = handle.replace_model("default", hybrid).unwrap();
        assert_eq!(entry.model.kind(), "hybridnet");
        assert_eq!(handle.cache_len(), 0, "displaced kind's entries must be evicted");
        let after_swap = session.incremental_stats();
        assert!(
            after_swap.invalidations_dim_change >= 1,
            "cross-kind swap must invalidate the session's activation cache, got {after_swap:?}"
        );

        // the session now serves the new architecture, bitwise equal to a
        // direct HybridNet forward on freshly built inputs
        let reply = session.predict().unwrap();
        assert!(!reply.cached, "old kind's cache entries must not answer");
        let (ops, features) = batch_inputs(&circuit, &reference, &grid, session.config());
        let direct = reference_model.predict(&ops, &features);
        assert!(
            reply.prediction.cls_prob.approx_eq(&direct.cls_prob, 0.0),
            "post-swap prediction must match a direct HybridNet forward bitwise"
        );
        let after = session.incremental_stats();
        assert_eq!(
            after.full_forwards,
            before.full_forwards + 1,
            "the first post-swap forward must recompute everything"
        );
        engine.shutdown();
    }

    #[test]
    fn sessions_pin_their_design_shard() {
        let engine = sharded_engine(3);
        let handle = engine.handle();
        let (circuit, placement, grid) = design(5);
        let expected = handle.shard_of_design(&circuit.name);
        let mut session = handle
            .open_session(
                SessionConfig::new("default"),
                Arc::clone(&circuit),
                placement.clone(),
                grid.clone(),
            )
            .unwrap();
        assert_eq!(session.shard(), expected);
        assert!(session.predict().is_ok());
        // the prediction landed in the pinned shard's cache
        assert_eq!(handle.shard_cache_len(expected), 1);
        // an explicit design id overrides the circuit name
        let named = handle
            .open_session(
                SessionConfig::new("default").with_design("other-design"),
                circuit,
                placement,
                grid,
            )
            .unwrap();
        assert_eq!(named.shard(), handle.shard_of_design("other-design"));
        engine.shutdown();
    }
}
