//! The LRU prediction cache.
//!
//! Predictions are pure functions of `(model weights, graph operators,
//! input features)`, so the cache key is the triple of their content
//! fingerprints ([`lhnn::CongestionModel::weights_fingerprint`],
//! [`lhnn::GraphOps::fingerprint`],
//! [`lh_graph::FeatureSet::fingerprint`]). A placer polling congestion on
//! an unchanged placement — the dominant access pattern inside an
//! optimisation loop that moved nothing in a region — hits the cache and
//! pays only the hashing cost.

use std::collections::HashMap;
use std::sync::Arc;

use lhnn::Prediction;

/// Cache key: content fingerprints of everything a forward pass reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Model version ([`lhnn::CongestionModel::weights_fingerprint`]).
    /// Fingerprints hash the architecture kind too, so two kinds can
    /// never collide on one key.
    pub model: u64,
    /// Graph-operator fingerprint ([`lhnn::GraphOps::fingerprint`]).
    pub ops: u64,
    /// Feature fingerprint ([`lh_graph::FeatureSet::fingerprint`]).
    pub features: u64,
}

#[derive(Debug)]
struct Entry {
    value: Arc<Prediction>,
    last_used: u64,
}

/// A least-recently-used map from [`CacheKey`] to shared predictions.
///
/// Eviction scans for the minimum `last_used` tick — O(capacity), which is
/// deliberate: capacities are small (default 128) and predictions are
/// megabyte-scale, so the scan is noise next to one forward pass. Capacity
/// 0 disables the cache entirely.
#[derive(Debug)]
pub struct PredictionCache {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry>,
}

impl PredictionCache {
    /// Creates a cache holding at most `capacity` predictions.
    pub fn new(capacity: usize) -> Self {
        Self { capacity, tick: 0, map: HashMap::with_capacity(capacity.min(1024)) }
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Prediction>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.value)
        })
    }

    /// Inserts (or refreshes) a prediction, evicting the least recently
    /// used entry if the cache is full.
    pub fn insert(&mut self, key: CacheKey, value: Arc<Prediction>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, Entry { value, last_used: self.tick });
    }

    /// Number of cached predictions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every entry (e.g. after a model hot-swap, although versioned
    /// keys already make stale entries unreachable).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Drops every entry computed by model `version`, returning how many
    /// were evicted.
    ///
    /// Versioned keys make a displaced model's entries unreachable after a
    /// hot-swap, but unreachable is not gone: they still occupy LRU slots
    /// and push out live predictions until enough traffic ages them off.
    /// The engine calls this on [`crate::ServeHandle::replace_model`] so a
    /// swap reclaims the dead capacity immediately.
    pub fn evict_model(&mut self, version: u64) -> usize {
        let before = self.map.len();
        self.map.retain(|k, _| k.model != version);
        before - self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurograd::Matrix;

    fn pred(tag: f32) -> Arc<Prediction> {
        Arc::new(Prediction { cls_prob: Matrix::full(1, 1, tag), reg: Matrix::full(1, 1, tag) })
    }

    fn key(i: u64) -> CacheKey {
        CacheKey { model: 1, ops: 2, features: i }
    }

    #[test]
    fn hit_and_miss() {
        let mut c = PredictionCache::new(4);
        assert!(c.get(&key(0)).is_none());
        c.insert(key(0), pred(0.5));
        let hit = c.get(&key(0)).expect("hit");
        assert_eq!(hit.cls_prob[(0, 0)], 0.5);
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = PredictionCache::new(2);
        c.insert(key(0), pred(0.0));
        c.insert(key(1), pred(1.0));
        // touch key 0 so key 1 is the LRU
        assert!(c.get(&key(0)).is_some());
        c.insert(key(2), pred(2.0));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(0)).is_some(), "recently used entry survived");
        assert!(c.get(&key(1)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(2)).is_some());
    }

    #[test]
    fn reinserting_same_key_does_not_evict() {
        let mut c = PredictionCache::new(2);
        c.insert(key(0), pred(0.0));
        c.insert(key(1), pred(1.0));
        c.insert(key(1), pred(1.5));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&key(1)).unwrap().cls_prob[(0, 0)], 1.5);
        assert!(c.get(&key(0)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = PredictionCache::new(0);
        c.insert(key(0), pred(0.0));
        assert!(c.is_empty());
        assert!(c.get(&key(0)).is_none());
    }

    #[test]
    fn evict_model_drops_only_that_version() {
        let mut c = PredictionCache::new(8);
        c.insert(CacheKey { model: 1, ops: 10, features: 10 }, pred(1.0));
        c.insert(CacheKey { model: 1, ops: 11, features: 11 }, pred(1.1));
        c.insert(CacheKey { model: 2, ops: 10, features: 10 }, pred(2.0));
        assert_eq!(c.evict_model(1), 2);
        assert_eq!(c.len(), 1);
        assert!(c.get(&CacheKey { model: 2, ops: 10, features: 10 }).is_some());
        assert_eq!(c.evict_model(1), 0, "idempotent on an absent version");
    }

    #[test]
    fn distinct_model_versions_do_not_collide() {
        let mut c = PredictionCache::new(4);
        let a = CacheKey { model: 1, ops: 9, features: 9 };
        let b = CacheKey { model: 2, ops: 9, features: 9 };
        c.insert(a, pred(1.0));
        assert!(c.get(&b).is_none());
    }
}
