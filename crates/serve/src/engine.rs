//! The inference engine: a front over N shards, each with its own
//! bounded request queue, worker-pool slice, prediction cache and stats.
//!
//! # Architecture
//!
//! ```text
//!                      ServeHandle::predict / Session
//!                                  │ stable hash: design → shard
//!            ┌─────────────────────┼─────────────────────┐
//!            ▼                     ▼                     ▼
//!         shard 0               shard 1      …        shard N-1
//!   ┌───────────────┐    ┌───────────────┐
//!   │ bounded queue │    │ bounded queue │   (predict jobs AND pipelined
//!   │ worker slice  │    │ worker slice  │    session-update jobs)
//!   │ LRU cache     │    │ LRU cache     │
//!   │ single-flight │    │ single-flight │
//!   │ stats         │    │ stats         │
//!   └───────────────┘    └───────────────┘
//! ```
//!
//! Sharding gives many concurrent placement loops isolation: a hot design
//! hammering one shard cannot evict another design's cache entries or
//! monopolise the other shards' workers, because requests route by a
//! *stable* hash of the design's identity (sessions and
//! [`PredictRequest::with_design`]: the design id; anonymous stateless
//! requests: the operator fingerprint, which keeps repeats of one state
//! on one shard but spreads a design's successive states) — the same
//! state always lands on the same shard, so single-flight deduplication
//! still works.
//!
//! Within a shard the PR-2 machinery is unchanged: a bounded queue
//! (backpressure when full) drained in micro-batches by long-lived
//! workers, identical in-flight requests deduplicated to one forward, an
//! LRU prediction cache keyed by content fingerprints. Workers also
//! service pipelined session updates (see [`crate::Session`]) from the
//! same queue, so one pool drives both halves of a placement loop.
//!
//! Requests are answered synchronously: `predict` blocks the calling
//! thread until its reply arrives. Shutdown is cooperative — workers
//! drain the queue they were handed and exit; unserved requests observe
//! [`ServeError::ShuttingDown`] / [`ServeError::WorkerLost`].
//!
//! Lock discipline: every engine lock guards re-derivable state and
//! recovers from poisoning (see [`crate::lock`]); a panicking forward is
//! caught, its requester observes [`ServeError::WorkerLost`], and the
//! engine keeps serving.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::AtomicU64;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lh_graph::FeatureSet;
use lhnn::{
    CongestionModel, GraphOps, IncrementalForward, InvalidationCause, Prediction, ScratchSet,
};
use lhnn_obs::{FlightEvent, FlightEventKind, Registry, Snapshot};
use neurograd::{Fnv64, Matrix};

use crate::cache::{CacheKey, PredictionCache};
use crate::error::{Result, ServeError};
use crate::lock;
use crate::observability::EngineObs;
use crate::registry::{ModelEntry, ModelRegistry};
use crate::session::SessionCore;
use crate::stats::{self, ServeStats, StatsInner};

/// Saturating microseconds of a [`Duration`].
fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing forwards, divided across the shards
    /// (default: available parallelism). Raised to `shards` if smaller, so
    /// every shard owns at least one worker.
    pub workers: usize,
    /// Independent shards (default 1). Each shard has its own queue,
    /// worker slice, prediction cache and stats; designs map to shards by
    /// a stable hash, so one hot design cannot evict another design's
    /// cache entries or monopolise all workers.
    pub shards: usize,
    /// Maximum queued (accepted, unserved) requests **per shard** before
    /// submitters block — the backpressure bound.
    pub queue_depth: usize,
    /// Maximum jobs a worker drains per wake-up (micro-batch size).
    pub max_batch: usize,
    /// LRU prediction-cache capacity in entries **per shard** (0 disables
    /// caching).
    pub cache_capacity: usize,
    /// Intra-op compute threads: 0 (default) leaves the shared
    /// `neurograd` pool as configured; a positive value rebuilds it with
    /// that many lanes when the engine starts.
    ///
    /// All workers *share* one compute pool rather than each assuming a
    /// serial forward: a worker's forward fans its kernels out across the
    /// pool, and because the kernel backend is bitwise
    /// thread-count-invariant this never changes a prediction (the
    /// `served_prediction_is_bitwise_identical` proptest covers it).
    pub compute_threads: usize,
    /// Metrics, stage tracing and the flight recorder (default on).
    ///
    /// Off builds the disabled registry/recorder pair: hot-path recording
    /// collapses to one relaxed load per site, span timers skip their
    /// clock reads entirely, and flight events are dropped before
    /// formatting. Instrumentation never touches model arithmetic either
    /// way — predictions are bitwise identical with it on or off (the
    /// `metrics_do_not_change_predictions` proptest covers it).
    pub metrics: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            shards: 1,
            queue_depth: 256,
            max_batch: 8,
            cache_capacity: 128,
            compute_threads: 0,
            metrics: true,
        }
    }
}

/// One congestion-inference request.
#[derive(Debug, Clone)]
pub struct PredictRequest {
    /// Registry name of the model to serve with.
    pub model: String,
    /// Graph operators of the design (shared; typically built once per
    /// placement iteration).
    pub ops: Arc<GraphOps>,
    /// Input features of the design.
    pub features: Arc<FeatureSet>,
    /// Optional design identity for shard routing. `Some` pins every
    /// state of the design to one shard (the per-design affinity sessions
    /// get automatically); `None` routes by the operator fingerprint, so
    /// repeats of the *same state* still meet their cache and
    /// single-flight entries, but successive states of one design spread
    /// across shards.
    pub design: Option<String>,
    /// Per-request congestion threshold applied to channel-0
    /// probabilities for [`ServeReply::congested_fraction`].
    pub threshold: f32,
    /// Session-owned bounded-radius forward state plus the note-sequence
    /// snapshot matching `(ops, features)`. When set, a worker that must
    /// compute (cache miss) runs [`IncrementalForward::predict`] — a halo
    /// splice over the dirty region when the cached activations allow it —
    /// instead of a from-scratch forward. Results are bitwise identical
    /// either way, so the fingerprint-keyed cache stays coherent.
    pub(crate) incremental: Option<(Arc<IncrementalForward>, u64)>,
}

impl PredictRequest {
    /// A request against `model` with the conventional 0.5 threshold.
    pub fn new(model: &str, ops: Arc<GraphOps>, features: Arc<FeatureSet>) -> Self {
        Self {
            model: model.to_string(),
            ops,
            features,
            design: None,
            threshold: 0.5,
            incremental: None,
        }
    }

    /// Attaches a session's incremental-forward state (see the field doc).
    #[must_use]
    pub(crate) fn with_incremental(mut self, incr: Arc<IncrementalForward>, seq: u64) -> Self {
        self.incremental = Some((incr, seq));
        self
    }

    /// Sets the congestion threshold.
    #[must_use]
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        self.threshold = threshold;
        self
    }

    /// Pins the request to the shard owning `design` (stable hash), like
    /// a session over that design would be.
    #[must_use]
    pub fn with_design(mut self, design: impl Into<String>) -> Self {
        self.design = Some(design.into());
        self
    }
}

/// The answer to one request.
#[derive(Debug, Clone)]
pub struct ServeReply {
    /// The prediction (shared with the cache and concurrent requesters).
    pub prediction: Arc<Prediction>,
    /// Whether the prediction came from the cache or from deduplication
    /// against an identical in-flight request (no forward was run for it).
    pub cached: bool,
    /// Fraction of G-cells whose channel-0 congestion probability meets
    /// the request's threshold.
    pub congested_fraction: f64,
    /// Submission-to-reply latency as measured by the engine.
    pub latency: Duration,
}

struct PredictJob {
    entry: Arc<ModelEntry>,
    ops: Arc<GraphOps>,
    features: Arc<FeatureSet>,
    key: CacheKey,
    threshold: f32,
    submitted: Instant,
    /// Queue-stage span token: set at admission when metrics are on,
    /// closed when a worker drains the job (`None` skips both clock reads).
    enqueued: Option<Instant>,
    reply: mpsc::Sender<ServeReply>,
    incremental: Option<(Arc<IncrementalForward>, u64)>,
}

/// One unit of shard work: an inference request, or a nudge to drain a
/// pipelined session's pending placement deltas.
enum Job {
    Predict(PredictJob),
    Session(Arc<SessionCore>),
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Single-flight marker: the first worker to claim a key computes; every
/// concurrent worker with the same key waits for the result instead of
/// duplicating the forward pass.
#[derive(Default)]
struct InFlight {
    done: Mutex<InFlightState>,
    cv: Condvar,
}

#[derive(Default, Clone)]
enum InFlightState {
    /// The owner is still computing.
    #[default]
    Pending,
    /// The owner finished; the shared result is here.
    Done(Arc<Prediction>),
    /// The owner's forward panicked; waiters must compute for themselves.
    Abandoned,
}

/// One shard: queue, cache, single-flight map and stats, isolated from
/// every other shard.
struct Shard {
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cache: Mutex<PredictionCache>,
    in_flight: Mutex<HashMap<CacheKey, Arc<InFlight>>>,
    stats: Mutex<StatsInner>,
}

impl Shard {
    fn new(cache_capacity: usize, clock: Arc<AtomicU64>) -> Self {
        Self {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cache: Mutex::new(PredictionCache::new(cache_capacity)),
            in_flight: Mutex::new(HashMap::new()),
            // All shards share one logical clock, so ring entries carry
            // engine-wide recency stamps and the aggregate percentile
            // merge can prefer the newest samples across shards.
            stats: Mutex::new(StatsInner::with_clock(clock)),
        }
    }
}

pub(crate) struct Shared {
    registry: Arc<ModelRegistry>,
    cfg: EngineConfig,
    shards: Vec<Shard>,
    workers_per_shard: Vec<usize>,
    started: Instant,
    obs: EngineObs,
    /// Weak handles to every open session's incremental-forward state,
    /// tagged with the model name it serves with. [`ServeHandle::replace_model`]
    /// walks this on a cross-kind (or cross-channel-count) hot-swap to
    /// invalidate activation caches that the new architecture cannot
    /// splice against; dead weaks are pruned on each walk.
    session_incrs: Mutex<Vec<(String, std::sync::Weak<IncrementalForward>)>>,
}

/// The engine: owns the sharded worker pool; hand out [`ServeHandle`]s to
/// use it.
///
/// Dropping (or [`ServeEngine::shutdown`]) stops the workers; requests
/// still queued are abandoned and their submitters receive
/// [`ServeError::WorkerLost`], new submissions [`ServeError::ShuttingDown`].
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ServeEngine({} workers over {} shards)",
            self.workers.len(),
            self.shared.shards.len()
        )
    }
}

/// Splits `workers` across `shards`, front-loading the remainder, with
/// every shard guaranteed at least one worker.
fn partition_workers(workers: usize, shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let workers = workers.max(shards);
    let base = workers / shards;
    let rem = workers % shards;
    (0..shards).map(|i| base + usize::from(i < rem)).collect()
}

impl ServeEngine {
    /// Starts the worker pool over `registry`: `cfg.shards` shards, with
    /// `cfg.workers` long-lived worker threads divided among them (every
    /// shard gets at least one).
    ///
    /// With `cfg.compute_threads > 0` the shared intra-op compute pool is
    /// rebuilt to that width first (process-wide — see
    /// [`neurograd::pool::configure_threads`]).
    pub fn new(registry: Arc<ModelRegistry>, cfg: EngineConfig) -> Self {
        if cfg.compute_threads > 0 {
            neurograd::pool::configure_threads(cfg.compute_threads);
        }
        let workers_per_shard = partition_workers(cfg.workers.max(1), cfg.shards.max(1));
        let clock = Arc::new(AtomicU64::new(0));
        let shards: Vec<Shard> = workers_per_shard
            .iter()
            .map(|_| Shard::new(cfg.cache_capacity, Arc::clone(&clock)))
            .collect();
        let obs = EngineObs::new(cfg.metrics);
        registry.attach_metrics(Arc::clone(&obs.registry));
        let shared = Arc::new(Shared {
            registry,
            shards,
            workers_per_shard,
            started: Instant::now(),
            obs,
            cfg,
            session_incrs: Mutex::new(Vec::new()),
        });
        let mut workers = Vec::new();
        for (shard_idx, &n) in shared.workers_per_shard.iter().enumerate() {
            for lane in 0..n {
                let shared = Arc::clone(&shared);
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("lhnn-serve-{shard_idx}-{lane}"))
                        .spawn(move || worker_loop(&shared, shard_idx))
                        .expect("spawn worker"),
                );
            }
        }
        Self { shared, workers }
    }

    /// A convenience engine with default tuning but an explicit thread
    /// count (the knob benchmarks sweep).
    pub fn with_workers(registry: Arc<ModelRegistry>, workers: usize) -> Self {
        Self::new(registry, EngineConfig { workers, ..EngineConfig::default() })
    }

    /// A convenience engine with `shards` shards and one worker per shard.
    pub fn with_shards(registry: Arc<ModelRegistry>, shards: usize) -> Self {
        Self::new(registry, EngineConfig { workers: shards, shards, ..EngineConfig::default() })
    }

    /// A cloneable client handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle { shared: Arc::clone(&self.shared) }
    }

    /// Stops accepting work, wakes every worker and joins them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        for shard in &self.shared.shards {
            let mut q = lock::recover(&shard.queue);
            q.shutdown = true;
            // Abandoned predict jobs: dropping them closes their reply
            // channels, so blocked submitters observe WorkerLost rather
            // than hanging. Session jobs are just nudges — their pending
            // deltas stay with the session, whose ticket-wait drains them
            // inline, so pipelined updates survive engine shutdown.
            q.jobs.clear();
            drop(q);
            shard.not_empty.notify_all();
            shard.not_full.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Cloneable, thread-safe client of a [`ServeEngine`].
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServeHandle({} shards)", self.shared.shards.len())
    }
}

impl ServeHandle {
    /// Serves one request, blocking until the prediction is available.
    ///
    /// Routing: a request carrying a design id
    /// ([`PredictRequest::with_design`]) goes to that design's shard —
    /// the same per-design affinity sessions get. Without one, the shard
    /// is a stable hash of the operator fingerprint: repeats of the same
    /// state always meet their own cache and single-flight entries, but
    /// successive states of an anonymous design spread across shards, so
    /// pass a design id when one placement loop should stay isolated.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for unregistered names,
    /// [`ServeError::Incompatible`] when the inputs do not fit the model,
    /// [`ServeError::ShuttingDown`] / [`ServeError::WorkerLost`] around
    /// engine shutdown.
    pub fn predict(&self, request: &PredictRequest) -> Result<ServeReply> {
        self.predict_on_shard(self.shard_of_request(request), request)
    }

    /// The shard a request routes to: its design id when it has one, the
    /// operator fingerprint otherwise.
    fn shard_of_request(&self, request: &PredictRequest) -> usize {
        match &request.design {
            Some(design) => self.shard_of_design(design),
            None => self.shard_of_ops_fingerprint(request.ops.fingerprint()),
        }
    }

    /// Serves one request on an explicit shard (sessions pin their design's
    /// shard so updates and predictions share a worker slice and cache).
    pub(crate) fn predict_on_shard(
        &self,
        shard_idx: usize,
        request: &PredictRequest,
    ) -> Result<ServeReply> {
        let submitted = Instant::now();
        let (entry, key) = self.admit(request)?;
        let shard_idx = shard_idx.min(self.shared.shards.len() - 1);
        let shard = &self.shared.shards[shard_idx];
        // Fast path: answer from the shard's cache without touching the
        // queue. (The guard is scoped to the lookup — never held across
        // other locks.)
        let t_cache = self.shared.obs.stage_cache.start();
        let hit = lock::recover(&shard.cache).get(&key);
        self.shared.obs.stage_cache.stop_us(t_cache);
        if let Some(hit) = hit {
            let latency = submitted.elapsed();
            lock::recover(&shard.stats).record_request(latency, true);
            record_request_obs(&self.shared.obs, latency, true);
            return Ok(reply_from(hit, true, request.threshold, latency));
        }
        let rx = self.enqueue(shard_idx, entry, request, key, submitted)?;
        rx.recv().map_err(|_| ServeError::WorkerLost)
    }

    /// Serves many requests, keeping all of them in flight at once
    /// (across their designs' shards).
    ///
    /// Replies come back in request order; each slot fails independently
    /// (one unknown model does not sink the batch).
    pub fn predict_batch(&self, requests: &[PredictRequest]) -> Vec<Result<ServeReply>> {
        let submitted = Instant::now();
        // Phase 1: admit + enqueue everything (cache hits answered inline).
        let pending: Vec<Result<PendingReply>> = requests
            .iter()
            .map(|request| {
                let (entry, key) = self.admit(request)?;
                let shard_idx = self.shard_of_request(request);
                let shard = &self.shared.shards[shard_idx];
                let t_cache = self.shared.obs.stage_cache.start();
                let hit = lock::recover(&shard.cache).get(&key);
                self.shared.obs.stage_cache.stop_us(t_cache);
                if let Some(hit) = hit {
                    let latency = submitted.elapsed();
                    lock::recover(&shard.stats).record_request(latency, true);
                    record_request_obs(&self.shared.obs, latency, true);
                    return Ok(PendingReply::Ready(reply_from(
                        hit,
                        true,
                        request.threshold,
                        latency,
                    )));
                }
                let rx = self.enqueue(shard_idx, Arc::clone(&entry), request, key, submitted)?;
                Ok(PendingReply::InFlight(rx))
            })
            .collect();
        // Phase 2: collect in order.
        pending
            .into_iter()
            .map(|p| match p {
                Ok(PendingReply::Ready(r)) => Ok(r),
                Ok(PendingReply::InFlight(rx)) => rx.recv().map_err(|_| ServeError::WorkerLost),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// A snapshot of the engine's counters and latency percentiles,
    /// aggregated across shards ([`ServeStats::per_shard`] has the
    /// breakdown).
    pub fn stats(&self) -> ServeStats {
        // Snapshot each shard under its own lock; clone out so no lock is
        // held across the aggregation.
        let snapshots: Vec<StatsInner> = self
            .shared
            .shards
            .iter()
            .map(|s| {
                let guard = lock::recover(&s.stats);
                guard.clone_for_snapshot()
            })
            .collect();
        stats::aggregate(&snapshots, &self.shared.workers_per_shard, self.shared.started.elapsed())
    }

    /// Number of engine worker threads (across all shards).
    pub fn workers(&self) -> usize {
        self.shared.workers_per_shard.iter().sum()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// The shard a design id routes to (stable FNV hash, so the same
    /// design always lands on the same shard).
    pub fn shard_of_design(&self, design_id: &str) -> usize {
        let mut h = Fnv64::new();
        h.write_str(design_id);
        (h.finish() % self.shared.shards.len() as u64) as usize
    }

    fn shard_of_ops_fingerprint(&self, fp: u64) -> usize {
        // The fingerprint is already well-mixed; fold it through FNV once
        // more so shard routing is independent of cache-key equality.
        let mut h = Fnv64::new();
        h.write_u64(fp);
        (h.finish() % self.shared.shards.len() as u64) as usize
    }

    /// Width of the shared intra-op compute pool the workers' forwards fan
    /// out over (the process-wide `neurograd` pool).
    pub fn compute_threads(&self) -> usize {
        neurograd::pool::current_threads()
    }

    /// Number of predictions currently cached, across all shards.
    pub fn cache_len(&self) -> usize {
        self.shared.shards.iter().map(|s| lock::recover(&s.cache).len()).sum()
    }

    /// Number of predictions cached on one shard.
    pub fn shard_cache_len(&self, shard: usize) -> usize {
        lock::recover(&self.shared.shards[shard.min(self.shared.shards.len() - 1)].cache).len()
    }

    /// Drops every cached prediction on every shard.
    pub fn clear_cache(&self) {
        for s in &self.shared.shards {
            lock::recover(&s.cache).clear();
        }
    }

    /// The registry this engine serves from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Hot-swaps the model registered under `name` and evicts the
    /// displaced version's predictions from every shard cache.
    ///
    /// Prefer this over [`ModelRegistry::replace`] on a live engine: the
    /// versioned cache keys make the old entries unreachable either way,
    /// but a bare registry swap leaves them squatting in the shard LRUs,
    /// evicting live predictions until traffic ages them off.
    ///
    /// The replacement may be a **different architecture**: displaced
    /// cache entries are evicted either way, and when the kind (or the
    /// output channel count) changes, every open session serving `name`
    /// has its incremental-forward activation cache invalidated too — a
    /// spliced forward against the old architecture's activations would
    /// be garbage under the new one.
    ///
    /// # Errors
    ///
    /// [`ServeError::Incompatible`] if the new model fails validation (the
    /// registry and the caches are left untouched).
    pub fn replace_model<M: CongestionModel + 'static>(
        &self,
        name: &str,
        model: M,
    ) -> Result<Arc<ModelEntry>> {
        self.replace_model_boxed(name, Box::new(model))
    }

    /// [`ServeHandle::replace_model`] for an already-boxed model (e.g.
    /// straight out of [`lhnn::load_model`]).
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::replace_model`].
    pub fn replace_model_boxed(
        &self,
        name: &str,
        model: Box<dyn CongestionModel>,
    ) -> Result<Arc<ModelEntry>> {
        let displaced = self.shared.registry.get(name);
        let entry = self.shared.registry.replace_boxed(name, model)?;
        if let Some(old) = displaced {
            if old.version != entry.version {
                for s in &self.shared.shards {
                    lock::recover(&s.cache).evict_model(old.version);
                }
                self.shared.obs.flight.record(
                    FlightEventKind::HotSwap,
                    name,
                    format!("v{} -> v{} ({})", old.version, entry.version, entry.model.kind()),
                );
            }
            if old.model.kind() != entry.model.kind()
                || old.model.channels() != entry.model.channels()
            {
                let mut incrs = lock::recover(&self.shared.session_incrs);
                incrs.retain(|(session_model, weak)| match weak.upgrade() {
                    Some(incr) => {
                        if session_model == name {
                            incr.note_structural(InvalidationCause::DimChange);
                        }
                        true
                    }
                    None => false,
                });
            }
        }
        Ok(entry)
    }

    /// Records a session's incremental-forward state so cross-kind
    /// hot-swaps of its model can invalidate it (weakly held — a closed
    /// session just drops off the list).
    pub(crate) fn register_session_incr(&self, model: &str, incr: &Arc<IncrementalForward>) {
        lock::recover(&self.shared.session_incrs).push((model.to_string(), Arc::downgrade(incr)));
    }

    /// The engine's metrics registry: counters, gauges and stage/latency
    /// histograms for everything the engine and its sessions record.
    /// Shared — handles cloned from one engine all see the same registry.
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.obs.registry)
    }

    /// A point-in-time snapshot of every registered series (render it with
    /// [`lhnn_obs::to_prometheus`] / [`lhnn_obs::to_json`]).
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.shared.obs.registry.snapshot()
    }

    /// The flight recorder's retained events, oldest first: fallbacks,
    /// poisonings, wedges, hot-swaps, queue-depth high-water marks and
    /// worker losses (bounded ring — newest win).
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        self.shared.obs.flight.snapshot()
    }

    /// Whether this engine records metrics ([`EngineConfig::metrics`]).
    pub fn metrics_enabled(&self) -> bool {
        self.shared.obs.registry.is_enabled()
    }

    /// The engine's observability plane, for sessions to wire their
    /// per-design instrumentation into.
    pub(crate) fn obs(&self) -> &EngineObs {
        &self.shared.obs
    }

    /// Enqueues a session-drain nudge on `shard_idx`, blocking on the
    /// shard's backpressure bound.
    pub(crate) fn enqueue_session(&self, shard_idx: usize, core: Arc<SessionCore>) -> Result<()> {
        self.push_job(shard_idx.min(self.shared.shards.len() - 1), Job::Session(core))
    }

    /// The one queue-admission path every job kind goes through: wait out
    /// the shard's backpressure bound, refuse on shutdown, push, wake a
    /// worker. Tracks the engine-wide queue-depth high-water mark and logs
    /// a flight event the first time a new high reaches a full micro-batch.
    fn push_job(&self, shard_idx: usize, job: Job) -> Result<()> {
        let shard = &self.shared.shards[shard_idx];
        let mut q = lock::recover(&shard.queue);
        while q.jobs.len() >= self.shared.cfg.queue_depth.max(1) {
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            q = shard.not_full.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if q.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        q.jobs.push_back(job);
        let depth = q.jobs.len() as u64;
        drop(q);
        if self.shared.obs.queue_depth_high.record_max(depth)
            && depth >= self.shared.cfg.max_batch.max(1) as u64
        {
            self.shared.obs.flight.record(
                FlightEventKind::QueueHigh,
                &format!("shard {shard_idx}"),
                format!("depth {depth}"),
            );
        }
        shard.not_empty.notify_one();
        Ok(())
    }

    fn admit(&self, request: &PredictRequest) -> Result<(Arc<ModelEntry>, CacheKey)> {
        let entry = self
            .shared
            .registry
            .get(&request.model)
            .ok_or_else(|| ServeError::UnknownModel(request.model.clone()))?;
        if request.features.gcell.cols() != entry.model.gcell_in_dim()
            || request.features.gnet.cols() != entry.model.gnet_in_dim()
        {
            return Err(ServeError::Incompatible(format!(
                "feature dims ({}, {}) do not match model `{}` input dims ({}, {})",
                request.features.gcell.cols(),
                request.features.gnet.cols(),
                entry.name,
                entry.model.gcell_in_dim(),
                entry.model.gnet_in_dim()
            )));
        }
        if request.features.gcell.rows() != request.ops.num_gcells {
            return Err(ServeError::Incompatible(format!(
                "features describe {} g-cells, operators {}",
                request.features.gcell.rows(),
                request.ops.num_gcells
            )));
        }
        // FeatureSet::build pads an empty g-net block to one zero row, so
        // the operators' column count is num_gnets.max(1).
        if request.features.gnet.rows() != request.ops.num_gnets.max(1) {
            return Err(ServeError::Incompatible(format!(
                "features describe {} g-nets, operators {}",
                request.features.gnet.rows(),
                request.ops.num_gnets
            )));
        }
        let key = CacheKey {
            model: entry.version,
            ops: request.ops.fingerprint(),
            features: request.features.fingerprint(),
        };
        Ok((entry, key))
    }

    fn enqueue(
        &self,
        shard_idx: usize,
        entry: Arc<ModelEntry>,
        request: &PredictRequest,
        key: CacheKey,
        submitted: Instant,
    ) -> Result<mpsc::Receiver<ServeReply>> {
        let (tx, rx) = mpsc::channel();
        let job = PredictJob {
            entry,
            ops: Arc::clone(&request.ops),
            features: Arc::clone(&request.features),
            key,
            threshold: request.threshold,
            submitted,
            enqueued: self.shared.obs.stage_queue.start(),
            reply: tx,
            incremental: request.incremental.as_ref().map(|(i, s)| (Arc::clone(i), *s)),
        };
        self.push_job(shard_idx, Job::Predict(job))?;
        Ok(rx)
    }
}

enum PendingReply {
    Ready(ServeReply),
    InFlight(mpsc::Receiver<ServeReply>),
}

fn reply_from(
    prediction: Arc<Prediction>,
    cached: bool,
    threshold: f32,
    latency: Duration,
) -> ServeReply {
    let rows = prediction.cls_prob.rows().max(1);
    let congested = (0..prediction.cls_prob.rows())
        .filter(|&r| prediction.cls_prob[(r, 0)] >= threshold)
        .count();
    ServeReply { prediction, cached, congested_fraction: congested as f64 / rows as f64, latency }
}

fn worker_loop(shared: &Shared, shard_idx: usize) {
    let shard = &shared.shards[shard_idx];
    // One scratch slot per model kind, lazily created: a long-lived worker
    // serves a mixed model zoo with zero steady-state allocation.
    let mut scratch = ScratchSet::new();
    loop {
        let batch: Vec<Job> = {
            let mut q = lock::recover(&shard.queue);
            loop {
                if !q.jobs.is_empty() {
                    break;
                }
                if q.shutdown {
                    return;
                }
                q = shard.not_empty.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            let n = q.jobs.len().min(shared.cfg.max_batch.max(1));
            let batch = q.jobs.drain(..n).collect();
            drop(q);
            shard.not_full.notify_all();
            batch
        };
        // Batch-size stats count only inference jobs — session nudges are
        // control messages, not batched forwards. Queue-wait spans close
        // here, at pickup, for the whole batch at once — closing them as
        // each job is processed would bill earlier jobs' forwards to later
        // jobs' queue time.
        let predict_jobs = batch.iter().filter(|j| matches!(j, Job::Predict(_))).count();
        if predict_jobs > 0 {
            lock::recover(&shard.stats).record_batch(predict_jobs);
            shared.obs.batches.inc();
            for job in &batch {
                if let Job::Predict(j) = job {
                    shared.obs.stage_queue.stop_us(j.enqueued);
                }
            }
        }
        // Same-key predict jobs in the batch share one forward pass. Lock
        // scopes are kept explicit: the cache guard must be released
        // before the (long) forward pass and before any other lock is
        // taken. Jobs whose key is owned by ANOTHER worker are deferred to
        // the end of the batch so a slow peer never head-of-line-blocks
        // work this worker could run immediately. Stateless jobs this
        // worker owns are deferred too — to the grouping pass, where
        // same-shape requests for one model fuse into a single
        // block-diagonal forward. Session jobs drain their session's
        // pending deltas in submission order, in place.
        let mut local: HashMap<CacheKey, Arc<Prediction>> = HashMap::new();
        let mut owned: Vec<(PredictJob, Arc<InFlight>)> = Vec::new();
        let mut deferred: Vec<(PredictJob, Arc<InFlight>)> = Vec::new();
        for job in batch {
            let job = match job {
                Job::Session(core) => {
                    // Non-blocking: parking this worker on one session's
                    // state mutex would head-of-line-block every other
                    // design on the shard (inline drains keep liveness).
                    match core.service_nonblocking() {
                        Some(applied) => {
                            if applied > 0 {
                                lock::recover(&shard.stats).record_session_updates(applied);
                                shared.obs.session_updates.add(applied as u64);
                            }
                        }
                        None => {
                            // Lock busy with deltas still pending: the
                            // holder may not re-drain, so keep the nudge
                            // alive (we just freed this queue slot, so no
                            // backpressure wait) and let go of the CPU —
                            // the holder likely needs it to finish.
                            let mut q = lock::recover(&shard.queue);
                            if !q.shutdown {
                                q.jobs.push_back(Job::Session(core));
                            }
                            drop(q);
                            std::thread::yield_now();
                        }
                    }
                    continue;
                }
                Job::Predict(job) => job,
            };
            let in_batch = local.get(&job.key).map(Arc::clone);
            let (prediction, cached) = if let Some(p) = in_batch {
                (p, true)
            } else {
                // Another worker (or an earlier batch) may have filled the
                // cache since the submitter's fast-path miss.
                let t_cache = shared.obs.stage_cache.start();
                let from_cache = lock::recover(&shard.cache).get(&job.key);
                shared.obs.stage_cache.stop_us(t_cache);
                if let Some(p) = from_cache {
                    local.insert(job.key, Arc::clone(&p));
                    (p, true)
                } else {
                    // Single-flight: the first claimant computes;
                    // concurrent claimants wait for its result (after
                    // finishing the rest of their own batch).
                    match claim_key(shard, job.key) {
                        Ok(marker) => {
                            if job.incremental.is_none() {
                                // Stateless and owned: hold it for the
                                // grouping pass below, which may fuse it
                                // with other designs' requests into one
                                // block-diagonal forward. (A later
                                // same-key job in this batch claims Err
                                // on OUR marker and waits in the final
                                // pass, which runs after every group
                                // marker is published.)
                                owned.push((job, marker));
                                continue;
                            }
                            // Incremental forwards splice against one
                            // session's cached activations — they cannot
                            // share a dispatch, so compute in place.
                            match compute_owned(shared, shard, &job, &marker, &mut scratch) {
                                Some((p, cached)) => {
                                    local.insert(job.key, Arc::clone(&p));
                                    (p, cached)
                                }
                                // Forward panicked: marker cleaned up, reply
                                // dropped (requester sees WorkerLost), worker
                                // keeps serving.
                                None => continue,
                            }
                        }
                        Err(marker) => {
                            deferred.push((job, marker));
                            continue;
                        }
                    }
                }
            };
            send_reply(shared, shard, &job, prediction, cached);
        }
        // Second pass: cross-design batching. Owned stateless jobs group
        // by model identity and graph shape (first-seen order); each
        // group of two or more runs as ONE block-diagonal forward,
        // singletons fall back to the plain single-design path. Every
        // marker is published (Done or Abandoned) here, BEFORE the
        // deferred-waits pass — a deferred job waiting on one of OUR
        // markers must not deadlock.
        let mut groups: Vec<((usize, usize, usize), Vec<(PredictJob, Arc<InFlight>)>)> = Vec::new();
        for (job, marker) in owned {
            // Same entry Arc ⇒ same model + version; rows key the block
            // shapes (gnet is already padded to `num_gnets.max(1)` rows,
            // consistently with the operator shapes).
            let key = (
                Arc::as_ptr(&job.entry) as usize,
                job.features.gcell.rows(),
                job.features.gnet.rows(),
            );
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, g)) => g.push((job, marker)),
                None => groups.push((key, vec![(job, marker)])),
            }
        }
        for (_, group) in groups {
            compute_batched(shared, shard, group, &mut scratch);
        }
        // Final pass: resolve waits on keys owned by other workers.
        for (job, first_marker) in deferred {
            let mut marker = first_marker;
            loop {
                let state = {
                    let mut done = lock::recover(&marker.done);
                    while matches!(*done, InFlightState::Pending) {
                        done =
                            marker.cv.wait(done).unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    done.clone()
                };
                match state {
                    InFlightState::Done(p) => {
                        send_reply(shared, shard, &job, p, true);
                        break;
                    }
                    InFlightState::Abandoned => {
                        // The owner's forward panicked on ITS inputs (only
                        // key-equal to ours); retry the claim protocol.
                        // compute_owned re-checks the cache after claiming.
                        match claim_key(shard, job.key) {
                            Ok(m) => {
                                if let Some((p, cached)) =
                                    compute_owned(shared, shard, &job, &m, &mut scratch)
                                {
                                    send_reply(shared, shard, &job, p, cached);
                                }
                                break;
                            }
                            // another worker re-claimed first: wait on it
                            Err(m) => marker = m,
                        }
                    }
                    InFlightState::Pending => unreachable!("waited out of Pending above"),
                }
            }
        }
    }
}

/// Claims `key` in the shard's single-flight map: `Ok` hands the caller
/// ownership (it must publish via `compute_owned`), `Err` returns the
/// current owner's marker to wait on.
fn claim_key(shard: &Shard, key: CacheKey) -> std::result::Result<Arc<InFlight>, Arc<InFlight>> {
    let mut map = lock::recover(&shard.in_flight);
    match map.get(&key) {
        Some(m) => Err(Arc::clone(m)),
        None => {
            let m = Arc::new(InFlight::default());
            map.insert(key, Arc::clone(&m));
            Ok(m)
        }
    }
}

/// Resolves the forward for a claimed key, publishing the result to the
/// shard's cache and the single-flight marker. The cache is re-checked
/// first — another worker may have finished (and unclaimed) this key
/// between the caller's miss and its claim — so the returned flag reports
/// whether the prediction was cached. Returns `None` (after unclaiming
/// the key and waking waiters) if the forward panics, so one malformed
/// request cannot wedge the pool — see `ServeError::WorkerLost`.
fn compute_owned(
    shared: &Shared,
    shard: &Shard,
    job: &PredictJob,
    marker: &Arc<InFlight>,
    scratch: &mut ScratchSet,
) -> Option<(Arc<Prediction>, bool)> {
    let recheck = lock::recover(&shard.cache).get(&job.key);
    let outcome = match recheck {
        Some(p) => Ok((p, true)),
        None => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // A session attaches its bounded-radius forward state: splice
            // over the dirty halo when possible (bitwise identical to the
            // from-scratch path, so the fingerprint cache stays coherent).
            let p = match &job.incremental {
                Some((inc, seq)) => {
                    inc.predict(
                        job.entry.model.as_ref(),
                        job.entry.version,
                        &job.ops,
                        &job.features,
                        *seq,
                    )
                    .0
                }
                None => scratch.predict(job.entry.model.as_ref(), &job.ops, &job.features),
            };
            (Arc::new(p), false)
        })),
    };
    let (result, state) = match outcome {
        Ok((p, cached)) => {
            if !cached {
                lock::recover(&shard.stats).record_computed();
                shared.obs.computed.inc();
                // cache before unmarking, so latecomers that miss the
                // marker hit the cache
                lock::recover(&shard.cache).insert(job.key, Arc::clone(&p));
            }
            (Some((Arc::clone(&p), cached)), InFlightState::Done(p))
        }
        Err(_) => {
            shared.obs.flight.record(
                FlightEventKind::WorkerLost,
                &job.entry.name,
                format!("forward panicked (model v{})", job.entry.version),
            );
            (None, InFlightState::Abandoned)
        }
    };
    lock::recover(&shard.in_flight).remove(&job.key);
    *lock::recover(&marker.done) = state;
    marker.cv.notify_all();
    result
}

/// Unclaims a key and publishes its single-flight outcome to waiters.
fn publish(shard: &Shard, key: CacheKey, marker: &Arc<InFlight>, state: InFlightState) {
    lock::recover(&shard.in_flight).remove(&key);
    *lock::recover(&marker.done) = state;
    marker.cv.notify_all();
}

/// Runs one group of owned, stateless, shape-compatible predict jobs as a
/// single block-diagonal forward: operators stack via
/// [`GraphOps::block_diag`], features stack by rows, and the batched
/// output rows split back per design. Dense layers are row-local and the
/// stacked sparse operators give each block's rows exactly that block's
/// entries (shifted columns, same order), so every per-request result is
/// **bitwise identical** to its individual forward — caches stay coherent
/// across batched and unbatched executions of the same state.
///
/// Accounting is per request: each member still records `computed` (its
/// forward really ran, fused into the dispatch), publishes its own
/// single-flight marker and caches under its own key; the group adds one
/// `batched_forwards` tick. A panic abandons every member's marker
/// (requesters see `WorkerLost`), mirroring `compute_owned`.
fn compute_batched(
    shared: &Shared,
    shard: &Shard,
    group: Vec<(PredictJob, Arc<InFlight>)>,
    scratch: &mut ScratchSet,
) {
    // Per-job cache recheck (same race as `compute_owned`: another worker
    // may have computed and unclaimed a key between our miss and our
    // claim): publish hits immediately, batch only the remainder.
    let mut pending: Vec<(PredictJob, Arc<InFlight>)> = Vec::with_capacity(group.len());
    for (job, marker) in group {
        match lock::recover(&shard.cache).get(&job.key) {
            Some(p) => {
                publish(shard, job.key, &marker, InFlightState::Done(Arc::clone(&p)));
                send_reply(shared, shard, &job, p, true);
            }
            None => pending.push((job, marker)),
        }
    }
    if pending.len() < 2 {
        // Nothing to fuse: the plain single-design path.
        if let Some((job, marker)) = pending.pop() {
            if let Some((p, cached)) = compute_owned(shared, shard, &job, &marker, scratch) {
                send_reply(shared, shard, &job, p, cached);
            }
        }
        return;
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let ops: Vec<&GraphOps> = pending.iter().map(|(j, _)| j.ops.as_ref()).collect();
        let block_ops = GraphOps::block_diag(&ops);
        let feats = FeatureSet {
            gcell: vstack(pending.iter().map(|(j, _)| &j.features.gcell)),
            gnet: vstack(pending.iter().map(|(j, _)| &j.features.gnet)),
        };
        let batched = scratch.predict(pending[0].0.entry.model.as_ref(), &block_ops, &feats);
        split_rows(&batched, pending.iter().map(|(j, _)| j.features.gcell.rows()))
    }));
    match outcome {
        Ok(parts) => {
            lock::recover(&shard.stats).record_batched_forward(pending.len());
            shared.obs.batched_forwards.inc();
            for ((job, marker), p) in pending.into_iter().zip(parts) {
                let p = Arc::new(p);
                lock::recover(&shard.stats).record_computed();
                shared.obs.computed.inc();
                // cache before unmarking, so latecomers that miss the
                // marker hit the cache
                lock::recover(&shard.cache).insert(job.key, Arc::clone(&p));
                publish(shard, job.key, &marker, InFlightState::Done(Arc::clone(&p)));
                send_reply(shared, shard, &job, p, false);
            }
        }
        Err(_) => {
            for (job, marker) in pending {
                shared.obs.flight.record(
                    FlightEventKind::WorkerLost,
                    &job.entry.name,
                    format!("batched forward panicked (model v{})", job.entry.version),
                );
                publish(shard, job.key, &marker, InFlightState::Abandoned);
            }
        }
    }
}

/// Stacks equal-width matrices by rows.
fn vstack<'a>(blocks: impl Iterator<Item = &'a Matrix>) -> Matrix {
    let blocks: Vec<&Matrix> = blocks.collect();
    let cols = blocks[0].cols();
    let rows: usize = blocks.iter().map(|b| b.rows()).sum();
    let mut data = Vec::with_capacity(rows * cols);
    for b in &blocks {
        assert_eq!(b.cols(), cols, "vstack requires equal column counts");
        data.extend_from_slice(b.as_slice());
    }
    Matrix::from_vec(rows, cols, data).expect("vstack shape")
}

/// Splits a batched prediction back into per-design predictions by
/// consecutive G-cell row counts.
fn split_rows(batched: &Prediction, row_counts: impl Iterator<Item = usize>) -> Vec<Prediction> {
    let ch = batched.cls_prob.cols();
    let mut offset = 0;
    row_counts
        .map(|n| {
            let cls = batched.cls_prob.as_slice()[offset * ch..(offset + n) * ch].to_vec();
            let reg = batched.reg.as_slice()[offset * ch..(offset + n) * ch].to_vec();
            offset += n;
            Prediction {
                cls_prob: Matrix::from_vec(n, ch, cls).expect("split shape"),
                reg: Matrix::from_vec(n, ch, reg).expect("split shape"),
            }
        })
        .collect()
}

fn send_reply(
    shared: &Shared,
    shard: &Shard,
    job: &PredictJob,
    prediction: Arc<Prediction>,
    cached: bool,
) {
    let latency = job.submitted.elapsed();
    lock::recover(&shard.stats).record_request(latency, cached);
    record_request_obs(&shared.obs, latency, cached);
    // A requester that gave up (dropped the receiver) is fine.
    let _ = job.reply.send(reply_from(prediction, cached, job.threshold, latency));
}

/// Mirrors one answered request into the metrics registry (the exact
/// counts live in `StatsInner`; these are the exported view).
fn record_request_obs(obs: &EngineObs, latency: Duration, cached: bool) {
    obs.requests.inc();
    if cached {
        obs.cache_hits.inc();
    }
    obs.request_us.observe(duration_us(latency));
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhnn::{Lhnn, LhnnConfig};
    use neurograd::CsrMatrix;

    fn design(seed: u64, n_cells: usize, grid: u32) -> (Arc<GraphOps>, Arc<FeatureSet>) {
        let (ops, feats) = lhnn_data::serving_inputs(seed, n_cells, grid).expect("build design");
        (Arc::new(ops), Arc::new(feats))
    }

    fn engine_with_default_model(workers: usize, cache: usize) -> ServeEngine {
        let registry = Arc::new(ModelRegistry::new());
        registry.register("default", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
        ServeEngine::new(
            registry,
            EngineConfig { workers, cache_capacity: cache, ..Default::default() },
        )
    }

    #[test]
    fn serves_and_caches() {
        let engine = engine_with_default_model(2, 16);
        let handle = engine.handle();
        let (ops, feats) = design(1, 90, 6);
        let req = PredictRequest::new("default", ops, feats);
        let cold = handle.predict(&req).unwrap();
        assert!(!cold.cached);
        let warm = handle.predict(&req).unwrap();
        assert!(warm.cached, "second identical request must hit the cache");
        assert!(warm.prediction.cls_prob.approx_eq(&cold.prediction.cls_prob, 0.0));
        let stats = handle.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.computed, 1);
        assert!(stats.cache_hit_rate > 0.0);
        assert_eq!(handle.cache_len(), 1);
        engine.shutdown();
    }

    #[test]
    fn batch_mixes_models_and_errors_independently() {
        let engine = engine_with_default_model(2, 16);
        let handle = engine.handle();
        let (ops, feats) = design(2, 80, 6);
        let good = PredictRequest::new("default", Arc::clone(&ops), Arc::clone(&feats));
        let unknown = PredictRequest::new("nope", ops, feats);
        let replies = handle.predict_batch(&[good.clone(), unknown, good]);
        assert_eq!(replies.len(), 3);
        assert!(replies[0].is_ok());
        assert!(matches!(replies[1], Err(ServeError::UnknownModel(_))));
        assert!(replies[2].is_ok());
    }

    #[test]
    fn per_request_threshold_changes_fraction() {
        let engine = engine_with_default_model(1, 4);
        let handle = engine.handle();
        let (ops, feats) = design(3, 80, 6);
        let lo = handle
            .predict(
                &PredictRequest::new("default", Arc::clone(&ops), Arc::clone(&feats))
                    .with_threshold(0.0),
            )
            .unwrap();
        let hi = handle
            .predict(&PredictRequest::new("default", ops, feats).with_threshold(1.1))
            .unwrap();
        assert!((lo.congested_fraction - 1.0).abs() < 1e-12, "threshold 0 flags everything");
        assert_eq!(hi.congested_fraction, 0.0, "threshold >1 flags nothing");
        // the second request hit the cache — threshold is per-request, not
        // part of the key
        assert!(hi.cached);
    }

    #[test]
    fn incompatible_inputs_rejected_at_submission() {
        let engine = engine_with_default_model(1, 4);
        let handle = engine.handle();
        let (ops, feats) = design(4, 80, 6);
        let narrow =
            Arc::new(FeatureSet { gnet: feats.gnet.clone(), gcell: feats.gcell.slice_cols(0, 3) });
        let err = handle.predict(&PredictRequest::new("default", ops, narrow)).unwrap_err();
        assert!(matches!(err, ServeError::Incompatible(_)));
    }

    #[test]
    fn mismatched_gnet_rows_rejected_at_submission() {
        // ops from one design, features from another with equal g-cell
        // count but different g-net count: must be rejected up front, not
        // panic a worker.
        let engine = engine_with_default_model(1, 4);
        let handle = engine.handle();
        let (ops_a, feats_a) = design(6, 80, 6);
        let (_, feats_b) = design(7, 120, 6);
        assert_eq!(feats_a.gcell.rows(), feats_b.gcell.rows(), "same grid, same g-cells");
        assert_ne!(feats_a.gnet.rows(), feats_b.gnet.rows(), "different g-net counts");
        let err = handle
            .predict(&PredictRequest::new("default", Arc::clone(&ops_a), feats_b))
            .unwrap_err();
        assert!(matches!(err, ServeError::Incompatible(_)), "got {err:?}");
        // the pool is still alive and serves the matching pair
        let ok = handle.predict(&PredictRequest::new("default", ops_a, feats_a)).unwrap();
        assert!(ok.prediction.cls_prob.is_finite());
    }

    #[test]
    fn concurrent_clients_all_get_answers() {
        let engine = engine_with_default_model(4, 64);
        let handle = engine.handle();
        let designs: Vec<_> = (0..4).map(|s| design(10 + s, 70, 6)).collect();
        std::thread::scope(|scope| {
            for (ops, feats) in &designs {
                for _ in 0..3 {
                    let h = handle.clone();
                    let ops = Arc::clone(ops);
                    let feats = Arc::clone(feats);
                    scope.spawn(move || {
                        let r = h.predict(&PredictRequest::new("default", ops, feats)).unwrap();
                        assert!(r.prediction.cls_prob.is_finite());
                    });
                }
            }
        });
        let stats = handle.stats();
        assert_eq!(stats.requests, 12);
        // 4 unique designs → exactly 4 forwards; duplicates are served by
        // the cache, in-batch dedup or single-flight waiting
        assert_eq!(stats.computed, 4, "single-flight must deduplicate concurrent work");
        engine.shutdown();
    }

    #[test]
    fn sharded_engine_serves_and_isolates_routing() {
        let registry = Arc::new(ModelRegistry::new());
        registry.register("default", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
        let engine = ServeEngine::new(
            Arc::clone(&registry),
            EngineConfig { workers: 3, shards: 3, cache_capacity: 8, ..Default::default() },
        );
        let handle = engine.handle();
        assert_eq!(handle.shards(), 3);
        assert_eq!(handle.workers(), 3);
        // distinct designs spread over the shards; every request lands on
        // a deterministic shard, so repeats always hit their own cache
        let designs: Vec<_> = (0..6).map(|s| design(40 + s, 70, 6)).collect();
        for (ops, feats) in &designs {
            let req = PredictRequest::new("default", Arc::clone(ops), Arc::clone(feats));
            assert!(!handle.predict(&req).unwrap().cached);
            assert!(handle.predict(&req).unwrap().cached, "repeat must hit the same shard");
        }
        let stats = handle.stats();
        assert_eq!(stats.requests, 12);
        assert_eq!(stats.computed, 6);
        assert_eq!(stats.per_shard.len(), 3);
        let spread: u64 = stats.per_shard.iter().map(|s| s.requests).sum();
        assert_eq!(spread, 12, "per-shard requests must sum to the aggregate");
        assert_eq!(handle.cache_len(), 6);
        engine.shutdown();
    }

    #[test]
    fn stateless_requests_with_a_design_id_pin_their_shard() {
        let registry = Arc::new(ModelRegistry::new());
        registry.register("default", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
        let engine = ServeEngine::new(
            Arc::clone(&registry),
            EngineConfig { workers: 2, shards: 2, cache_capacity: 8, ..Default::default() },
        );
        let handle = engine.handle();
        let expected = handle.shard_of_design("pinned");
        // two different states of the same named design land on one shard
        for seed in [20, 21] {
            let (ops, feats) = design(seed, 80, 6);
            let req = PredictRequest::new("default", ops, feats).with_design("pinned");
            handle.predict(&req).unwrap();
        }
        assert_eq!(handle.shard_cache_len(expected), 2, "both states cached on the pinned shard");
        assert_eq!(handle.cache_len(), 2);
        engine.shutdown();
    }

    /// Regression: a hot-swap through the bare registry left the displaced
    /// version's predictions squatting in the shard LRUs — unreachable
    /// (versioned keys) but still evicting live entries. `replace_model`
    /// must reclaim them immediately, on every shard, and leave other
    /// models' entries alone.
    #[test]
    fn hot_swap_evicts_displaced_versions_cache_entries() {
        let registry = Arc::new(ModelRegistry::new());
        registry.register("default", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
        registry.register("other", Lhnn::new(LhnnConfig::default(), 7)).unwrap();
        let engine = ServeEngine::new(
            Arc::clone(&registry),
            EngineConfig { workers: 2, shards: 2, cache_capacity: 8, ..Default::default() },
        );
        let handle = engine.handle();
        // fill both shards with predictions from both models
        for seed in 0..4 {
            let (ops, feats) = design(60 + seed, 70, 6);
            handle
                .predict(&PredictRequest::new("default", Arc::clone(&ops), Arc::clone(&feats)))
                .unwrap();
            handle.predict(&PredictRequest::new("other", ops, feats)).unwrap();
        }
        assert_eq!(handle.cache_len(), 8);
        let old = registry.get("default").unwrap().version;
        let entry = handle.replace_model("default", Lhnn::new(LhnnConfig::default(), 99)).unwrap();
        assert_ne!(entry.version, old, "swap must change the serving version");
        assert_eq!(
            handle.cache_len(),
            4,
            "displaced version evicted from every shard, other model untouched"
        );
        // the swapped-in model serves (and re-fills the cache) normally
        let (ops, feats) = design(60, 70, 6);
        let reply = handle.predict(&PredictRequest::new("default", ops, feats)).unwrap();
        assert!(!reply.cached, "old version's entry must not answer for the new weights");
        assert_eq!(handle.cache_len(), 5);
        engine.shutdown();
    }

    #[test]
    fn worker_partition_covers_every_shard() {
        assert_eq!(partition_workers(4, 2), vec![2, 2]);
        assert_eq!(partition_workers(5, 2), vec![3, 2]);
        assert_eq!(partition_workers(1, 3), vec![1, 1, 1], "every shard gets a worker");
        assert_eq!(partition_workers(7, 3), vec![3, 2, 2]);
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let engine = engine_with_default_model(1, 4);
        let handle = engine.handle();
        let (ops, feats) = design(5, 80, 6);
        engine.shutdown();
        let err = handle.predict(&PredictRequest::new("default", ops, feats)).unwrap_err();
        assert!(matches!(err, ServeError::ShuttingDown | ServeError::WorkerLost));
    }

    /// Serve-layer bug sweep: a forward that panics must cost only its own
    /// requester (`WorkerLost`) — the worker, its locks and the engine all
    /// keep serving afterwards.
    #[test]
    fn panicking_forward_does_not_brick_the_engine() {
        let engine = engine_with_default_model(2, 16);
        let handle = engine.handle();
        let (ops, feats) = design(8, 80, 6);
        // Operators whose declared node counts match the features (so
        // admission passes) but whose matrices are inconsistent: the
        // forward's dimension asserts fire inside the worker.
        let bad_ops = Arc::new(GraphOps {
            gnc_sum: Arc::new(CsrMatrix::empty(3, 3)),
            gnc_mean: Arc::new(CsrMatrix::empty(3, 3)),
            gcn_mean: Arc::new(CsrMatrix::empty(3, 3)),
            lattice_mean: Arc::new(CsrMatrix::empty(3, 3)),
            num_gcells: ops.num_gcells,
            num_gnets: ops.num_gnets,
        });
        let poisoned_req = PredictRequest::new("default", bad_ops, Arc::clone(&feats));
        let err = handle.predict(&poisoned_req).unwrap_err();
        assert!(matches!(err, ServeError::WorkerLost), "got {err:?}");
        // the engine is alive: the well-formed design still serves, stats
        // still snapshot, the cache still fills
        let ok = handle.predict(&PredictRequest::new("default", ops, feats)).unwrap();
        assert!(ok.prediction.cls_prob.is_finite());
        let stats = handle.stats();
        assert!(stats.requests >= 1);
        assert_eq!(handle.cache_len(), 1);
        engine.shutdown();
    }

    /// Poisoned re-derivable locks recover instead of cascading panics:
    /// deliberately poison a shard's stats mutex and confirm every surface
    /// that crosses it still works.
    #[test]
    fn poisoned_stats_mutex_recovers() {
        let engine = engine_with_default_model(1, 4);
        let handle = engine.handle();
        let shared = Arc::clone(&handle.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.shards[0].stats.lock().unwrap();
            panic!("poison the stats mutex");
        })
        .join();
        assert!(handle.shared.shards[0].stats.lock().is_err(), "mutex really poisoned");
        let (ops, feats) = design(9, 80, 6);
        let ok = handle.predict(&PredictRequest::new("default", ops, feats)).unwrap();
        assert!(ok.prediction.cls_prob.is_finite());
        assert_eq!(handle.stats().requests, 1, "stats keep counting after recovery");
        engine.shutdown();
    }
}
