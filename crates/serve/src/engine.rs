//! The inference engine: bounded request queue, worker pool,
//! micro-batching and the synchronous client API.
//!
//! # Architecture
//!
//! ```text
//!  ServeHandle::predict ──► cache fast path ──► hit? reply immediately
//!        │ miss
//!        ▼
//!  bounded queue (Mutex<VecDeque> + Condvars, backpressure when full)
//!        │
//!        ▼ drain up to `max_batch` jobs per wake-up
//!  worker threads (one scratch Tape each; tape-free forwards in parallel)
//!        │ identical jobs in a batch are deduplicated: one forward,
//!        │ every requester gets the shared Arc<Prediction>
//!        ▼
//!  LRU prediction cache + latency/throughput stats
//! ```
//!
//! Requests are answered synchronously: `predict` blocks the calling
//! thread until its reply arrives, so N placer threads naturally keep up
//! to N requests in flight. Shutdown is cooperative — workers drain the
//! queue they were handed and exit; unserved requests observe
//! [`ServeError::ShuttingDown`].

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lh_graph::FeatureSet;
use lhnn::{GraphOps, InferenceScratch, Prediction};

use crate::cache::{CacheKey, PredictionCache};
use crate::error::{Result, ServeError};
use crate::registry::{ModelEntry, ModelRegistry};
use crate::stats::{ServeStats, StatsInner};

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing forwards (default: available parallelism).
    pub workers: usize,
    /// Maximum queued (accepted, unserved) requests before submitters
    /// block — the backpressure bound.
    pub queue_depth: usize,
    /// Maximum jobs a worker drains per wake-up (micro-batch size).
    pub max_batch: usize,
    /// LRU prediction-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Intra-op compute threads: 0 (default) leaves the shared
    /// `neurograd` pool as configured; a positive value rebuilds it with
    /// that many lanes when the engine starts.
    ///
    /// All workers *share* one compute pool rather than each assuming a
    /// serial forward: a worker's forward fans its kernels out across the
    /// pool, and because the kernel backend is bitwise
    /// thread-count-invariant this never changes a prediction (the
    /// `served_prediction_is_bitwise_identical` proptest covers it).
    pub compute_threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            queue_depth: 256,
            max_batch: 8,
            cache_capacity: 128,
            compute_threads: 0,
        }
    }
}

/// One congestion-inference request.
#[derive(Debug, Clone)]
pub struct PredictRequest {
    /// Registry name of the model to serve with.
    pub model: String,
    /// Graph operators of the design (shared; typically built once per
    /// placement iteration).
    pub ops: Arc<GraphOps>,
    /// Input features of the design.
    pub features: Arc<FeatureSet>,
    /// Per-request congestion threshold applied to channel-0
    /// probabilities for [`ServeReply::congested_fraction`].
    pub threshold: f32,
}

impl PredictRequest {
    /// A request against `model` with the conventional 0.5 threshold.
    pub fn new(model: &str, ops: Arc<GraphOps>, features: Arc<FeatureSet>) -> Self {
        Self { model: model.to_string(), ops, features, threshold: 0.5 }
    }

    /// Sets the congestion threshold.
    #[must_use]
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        self.threshold = threshold;
        self
    }
}

/// The answer to one request.
#[derive(Debug, Clone)]
pub struct ServeReply {
    /// The prediction (shared with the cache and concurrent requesters).
    pub prediction: Arc<Prediction>,
    /// Whether the prediction came from the cache or from deduplication
    /// against an identical in-flight request (no forward was run for it).
    pub cached: bool,
    /// Fraction of G-cells whose channel-0 congestion probability meets
    /// the request's threshold.
    pub congested_fraction: f64,
    /// Submission-to-reply latency as measured by the engine.
    pub latency: Duration,
}

struct Job {
    entry: Arc<ModelEntry>,
    ops: Arc<GraphOps>,
    features: Arc<FeatureSet>,
    key: CacheKey,
    threshold: f32,
    submitted: Instant,
    reply: mpsc::Sender<ServeReply>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Single-flight marker: the first worker to claim a key computes; every
/// concurrent worker with the same key waits for the result instead of
/// duplicating the forward pass.
#[derive(Default)]
struct InFlight {
    done: Mutex<InFlightState>,
    cv: Condvar,
}

#[derive(Default, Clone)]
enum InFlightState {
    /// The owner is still computing.
    #[default]
    Pending,
    /// The owner finished; the shared result is here.
    Done(Arc<Prediction>),
    /// The owner's forward panicked; waiters must compute for themselves.
    Abandoned,
}

struct Shared {
    registry: Arc<ModelRegistry>,
    cfg: EngineConfig,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cache: Mutex<PredictionCache>,
    in_flight: Mutex<HashMap<CacheKey, Arc<InFlight>>>,
    stats: Mutex<StatsInner>,
    started: Instant,
}

/// The engine: owns the worker pool; hand out [`ServeHandle`]s to use it.
///
/// Dropping (or [`ServeEngine::shutdown`]) stops the workers; requests
/// still queued are abandoned and their submitters receive
/// [`ServeError::WorkerLost`], new submissions [`ServeError::ShuttingDown`].
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServeEngine({} workers)", self.workers.len())
    }
}

impl ServeEngine {
    /// Starts `cfg.workers` long-lived worker threads over `registry`.
    ///
    /// With `cfg.compute_threads > 0` the shared intra-op compute pool is
    /// rebuilt to that width first (process-wide — see
    /// [`neurograd::pool::configure_threads`]).
    pub fn new(registry: Arc<ModelRegistry>, cfg: EngineConfig) -> Self {
        if cfg.compute_threads > 0 {
            neurograd::pool::configure_threads(cfg.compute_threads);
        }
        let workers_n = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            registry,
            cache: Mutex::new(PredictionCache::new(cfg.cache_capacity)),
            in_flight: Mutex::new(HashMap::new()),
            stats: Mutex::new(StatsInner::new()),
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            started: Instant::now(),
            cfg,
        });
        let workers = (0..workers_n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lhnn-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// A convenience engine with default tuning but an explicit thread
    /// count (the knob benchmarks sweep).
    pub fn with_workers(registry: Arc<ModelRegistry>, workers: usize) -> Self {
        Self::new(registry, EngineConfig { workers, ..EngineConfig::default() })
    }

    /// A cloneable client handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle { shared: Arc::clone(&self.shared) }
    }

    /// Stops accepting work, wakes every worker and joins them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.shutdown = true;
            // Abandoned jobs: dropping them closes their reply channels,
            // so blocked submitters observe WorkerLost rather than hanging.
            q.jobs.clear();
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Cloneable, thread-safe client of a [`ServeEngine`].
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServeHandle")
    }
}

impl ServeHandle {
    /// Serves one request, blocking until the prediction is available.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for unregistered names,
    /// [`ServeError::Incompatible`] when the inputs do not fit the model,
    /// [`ServeError::ShuttingDown`] / [`ServeError::WorkerLost`] around
    /// engine shutdown.
    pub fn predict(&self, request: &PredictRequest) -> Result<ServeReply> {
        let submitted = Instant::now();
        let (entry, key) = self.admit(request)?;
        // Fast path: answer from the cache without touching the queue.
        // (The guard is scoped to the lookup — never held across other locks.)
        let hit = self.shared.cache.lock().expect("cache lock").get(&key);
        if let Some(hit) = hit {
            let latency = submitted.elapsed();
            self.shared.stats.lock().expect("stats lock").record_request(latency, true);
            return Ok(reply_from(hit, true, request.threshold, latency));
        }
        let rx = self.enqueue(entry, request, key, submitted)?;
        rx.recv().map_err(|_| ServeError::WorkerLost)
    }

    /// Serves many requests, keeping all of them in flight at once.
    ///
    /// Replies come back in request order; each slot fails independently
    /// (one unknown model does not sink the batch).
    pub fn predict_batch(&self, requests: &[PredictRequest]) -> Vec<Result<ServeReply>> {
        let submitted = Instant::now();
        // Phase 1: admit + enqueue everything (cache hits answered inline).
        let pending: Vec<Result<PendingReply>> = requests
            .iter()
            .map(|request| {
                let (entry, key) = self.admit(request)?;
                let hit = self.shared.cache.lock().expect("cache lock").get(&key);
                if let Some(hit) = hit {
                    let latency = submitted.elapsed();
                    self.shared.stats.lock().expect("stats lock").record_request(latency, true);
                    return Ok(PendingReply::Ready(reply_from(
                        hit,
                        true,
                        request.threshold,
                        latency,
                    )));
                }
                let rx = self.enqueue(Arc::clone(&entry), request, key, submitted)?;
                Ok(PendingReply::InFlight(rx))
            })
            .collect();
        // Phase 2: collect in order.
        pending
            .into_iter()
            .map(|p| match p {
                Ok(PendingReply::Ready(r)) => Ok(r),
                Ok(PendingReply::InFlight(rx)) => rx.recv().map_err(|_| ServeError::WorkerLost),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// A snapshot of the engine's counters and latency percentiles.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.lock().expect("stats lock").snapshot(self.shared.started.elapsed())
    }

    /// Number of engine worker threads.
    pub fn workers(&self) -> usize {
        self.shared.cfg.workers.max(1)
    }

    /// Width of the shared intra-op compute pool the workers' forwards fan
    /// out over (the process-wide `neurograd` pool).
    pub fn compute_threads(&self) -> usize {
        neurograd::pool::current_threads()
    }

    /// Number of predictions currently cached.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.lock().expect("cache lock").len()
    }

    /// Drops every cached prediction.
    pub fn clear_cache(&self) {
        self.shared.cache.lock().expect("cache lock").clear();
    }

    /// The registry this engine serves from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    fn admit(&self, request: &PredictRequest) -> Result<(Arc<ModelEntry>, CacheKey)> {
        let entry = self
            .shared
            .registry
            .get(&request.model)
            .ok_or_else(|| ServeError::UnknownModel(request.model.clone()))?;
        let cfg = entry.model.config();
        if request.features.gcell.cols() != cfg.gcell_in_dim
            || request.features.gnet.cols() != cfg.gnet_in_dim
        {
            return Err(ServeError::Incompatible(format!(
                "feature dims ({}, {}) do not match model `{}` input dims ({}, {})",
                request.features.gcell.cols(),
                request.features.gnet.cols(),
                entry.name,
                cfg.gcell_in_dim,
                cfg.gnet_in_dim
            )));
        }
        if request.features.gcell.rows() != request.ops.num_gcells {
            return Err(ServeError::Incompatible(format!(
                "features describe {} g-cells, operators {}",
                request.features.gcell.rows(),
                request.ops.num_gcells
            )));
        }
        // FeatureSet::build pads an empty g-net block to one zero row, so
        // the operators' column count is num_gnets.max(1).
        if request.features.gnet.rows() != request.ops.num_gnets.max(1) {
            return Err(ServeError::Incompatible(format!(
                "features describe {} g-nets, operators {}",
                request.features.gnet.rows(),
                request.ops.num_gnets
            )));
        }
        let key = CacheKey {
            model: entry.version,
            ops: request.ops.fingerprint(),
            features: request.features.fingerprint(),
        };
        Ok((entry, key))
    }

    fn enqueue(
        &self,
        entry: Arc<ModelEntry>,
        request: &PredictRequest,
        key: CacheKey,
        submitted: Instant,
    ) -> Result<mpsc::Receiver<ServeReply>> {
        let (tx, rx) = mpsc::channel();
        let job = Job {
            entry,
            ops: Arc::clone(&request.ops),
            features: Arc::clone(&request.features),
            key,
            threshold: request.threshold,
            submitted,
            reply: tx,
        };
        let mut q = self.shared.queue.lock().expect("queue lock");
        while q.jobs.len() >= self.shared.cfg.queue_depth.max(1) {
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            q = self.shared.not_full.wait(q).expect("queue lock");
        }
        if q.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        q.jobs.push_back(job);
        drop(q);
        self.shared.not_empty.notify_one();
        Ok(rx)
    }
}

enum PendingReply {
    Ready(ServeReply),
    InFlight(mpsc::Receiver<ServeReply>),
}

fn reply_from(
    prediction: Arc<Prediction>,
    cached: bool,
    threshold: f32,
    latency: Duration,
) -> ServeReply {
    let rows = prediction.cls_prob.rows().max(1);
    let congested = (0..prediction.cls_prob.rows())
        .filter(|&r| prediction.cls_prob[(r, 0)] >= threshold)
        .count();
    ServeReply { prediction, cached, congested_fraction: congested as f64 / rows as f64, latency }
}

fn worker_loop(shared: &Shared) {
    let mut scratch = InferenceScratch::new();
    loop {
        let batch: Vec<Job> = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if !q.jobs.is_empty() {
                    break;
                }
                if q.shutdown {
                    return;
                }
                q = shared.not_empty.wait(q).expect("queue lock");
            }
            let n = q.jobs.len().min(shared.cfg.max_batch.max(1));
            let batch = q.jobs.drain(..n).collect();
            drop(q);
            shared.not_full.notify_all();
            batch
        };
        shared.stats.lock().expect("stats lock").record_batch(batch.len());
        // Same-key jobs in the batch share one forward pass. Lock scopes
        // are kept explicit: the cache guard must be released before the
        // (long) forward pass and before any other lock is taken. Jobs
        // whose key is owned by ANOTHER worker are deferred to the end of
        // the batch so a slow peer never head-of-line-blocks work this
        // worker could run immediately.
        let mut local: HashMap<CacheKey, Arc<Prediction>> = HashMap::new();
        let mut deferred: Vec<(Job, Arc<InFlight>)> = Vec::new();
        for job in batch {
            let in_batch = local.get(&job.key).map(Arc::clone);
            let (prediction, cached) = if let Some(p) = in_batch {
                (p, true)
            } else {
                // Another worker (or an earlier batch) may have filled the
                // cache since the submitter's fast-path miss.
                let from_cache = shared.cache.lock().expect("cache lock").get(&job.key);
                if let Some(p) = from_cache {
                    local.insert(job.key, Arc::clone(&p));
                    (p, true)
                } else {
                    // Single-flight: the first claimant computes;
                    // concurrent claimants wait for its result (after
                    // finishing the rest of their own batch).
                    match claim_key(shared, job.key) {
                        Ok(marker) => match compute_owned(shared, &job, &marker, &mut scratch) {
                            Some((p, cached)) => {
                                local.insert(job.key, Arc::clone(&p));
                                (p, cached)
                            }
                            // Forward panicked: marker cleaned up, reply
                            // dropped (requester sees WorkerLost), worker
                            // keeps serving.
                            None => continue,
                        },
                        Err(marker) => {
                            deferred.push((job, marker));
                            continue;
                        }
                    }
                }
            };
            send_reply(shared, &job, prediction, cached);
        }
        // Second pass: resolve waits on keys owned by other workers.
        for (job, first_marker) in deferred {
            let mut marker = first_marker;
            loop {
                let state = {
                    let mut done = marker.done.lock().expect("marker lock");
                    while matches!(*done, InFlightState::Pending) {
                        done = marker.cv.wait(done).expect("marker lock");
                    }
                    done.clone()
                };
                match state {
                    InFlightState::Done(p) => {
                        send_reply(shared, &job, p, true);
                        break;
                    }
                    InFlightState::Abandoned => {
                        // The owner's forward panicked on ITS inputs (only
                        // key-equal to ours); retry the claim protocol.
                        // compute_owned re-checks the cache after claiming.
                        match claim_key(shared, job.key) {
                            Ok(m) => {
                                if let Some((p, cached)) =
                                    compute_owned(shared, &job, &m, &mut scratch)
                                {
                                    send_reply(shared, &job, p, cached);
                                }
                                break;
                            }
                            // another worker re-claimed first: wait on it
                            Err(m) => marker = m,
                        }
                    }
                    InFlightState::Pending => unreachable!("waited out of Pending above"),
                }
            }
        }
    }
}

/// Claims `key` in the single-flight map: `Ok` hands the caller ownership
/// (it must publish via `compute_owned`), `Err` returns the current
/// owner's marker to wait on.
fn claim_key(shared: &Shared, key: CacheKey) -> std::result::Result<Arc<InFlight>, Arc<InFlight>> {
    let mut map = shared.in_flight.lock().expect("in-flight lock");
    match map.get(&key) {
        Some(m) => Err(Arc::clone(m)),
        None => {
            let m = Arc::new(InFlight::default());
            map.insert(key, Arc::clone(&m));
            Ok(m)
        }
    }
}

/// Resolves the forward for a claimed key, publishing the result to the
/// cache and the single-flight marker. The cache is re-checked first —
/// another worker may have finished (and unclaimed) this key between the
/// caller's miss and its claim — so the returned flag reports whether the
/// prediction was cached. Returns `None` (after unclaiming the key and
/// waking waiters) if the forward panics, so one malformed request cannot
/// wedge the pool — see `ServeError::WorkerLost`.
fn compute_owned(
    shared: &Shared,
    job: &Job,
    marker: &Arc<InFlight>,
    scratch: &mut InferenceScratch,
) -> Option<(Arc<Prediction>, bool)> {
    let recheck = shared.cache.lock().expect("cache lock").get(&job.key);
    let outcome = match recheck {
        Some(p) => Ok((p, true)),
        None => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            (Arc::new(job.entry.model.predict_into(&job.ops, &job.features, scratch)), false)
        })),
    };
    let (result, state) = match outcome {
        Ok((p, cached)) => {
            if !cached {
                shared.stats.lock().expect("stats lock").record_computed();
                // cache before unmarking, so latecomers that miss the
                // marker hit the cache
                shared.cache.lock().expect("cache lock").insert(job.key, Arc::clone(&p));
            }
            (Some((Arc::clone(&p), cached)), InFlightState::Done(p))
        }
        Err(_) => (None, InFlightState::Abandoned),
    };
    shared.in_flight.lock().expect("in-flight lock").remove(&job.key);
    *marker.done.lock().expect("marker lock") = state;
    marker.cv.notify_all();
    result
}

fn send_reply(shared: &Shared, job: &Job, prediction: Arc<Prediction>, cached: bool) {
    let latency = job.submitted.elapsed();
    shared.stats.lock().expect("stats lock").record_request(latency, cached);
    // A requester that gave up (dropped the receiver) is fine.
    let _ = job.reply.send(reply_from(prediction, cached, job.threshold, latency));
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhnn::{Lhnn, LhnnConfig};

    fn design(seed: u64, n_cells: usize, grid: u32) -> (Arc<GraphOps>, Arc<FeatureSet>) {
        let (ops, feats) = lhnn_data::serving_inputs(seed, n_cells, grid).expect("build design");
        (Arc::new(ops), Arc::new(feats))
    }

    fn engine_with_default_model(workers: usize, cache: usize) -> ServeEngine {
        let registry = Arc::new(ModelRegistry::new());
        registry.register("default", Lhnn::new(LhnnConfig::default(), 0)).unwrap();
        ServeEngine::new(
            registry,
            EngineConfig { workers, cache_capacity: cache, ..Default::default() },
        )
    }

    #[test]
    fn serves_and_caches() {
        let engine = engine_with_default_model(2, 16);
        let handle = engine.handle();
        let (ops, feats) = design(1, 90, 6);
        let req = PredictRequest::new("default", ops, feats);
        let cold = handle.predict(&req).unwrap();
        assert!(!cold.cached);
        let warm = handle.predict(&req).unwrap();
        assert!(warm.cached, "second identical request must hit the cache");
        assert!(warm.prediction.cls_prob.approx_eq(&cold.prediction.cls_prob, 0.0));
        let stats = handle.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.computed, 1);
        assert!(stats.cache_hit_rate > 0.0);
        assert_eq!(handle.cache_len(), 1);
        engine.shutdown();
    }

    #[test]
    fn batch_mixes_models_and_errors_independently() {
        let engine = engine_with_default_model(2, 16);
        let handle = engine.handle();
        let (ops, feats) = design(2, 80, 6);
        let good = PredictRequest::new("default", Arc::clone(&ops), Arc::clone(&feats));
        let unknown = PredictRequest::new("nope", ops, feats);
        let replies = handle.predict_batch(&[good.clone(), unknown, good]);
        assert_eq!(replies.len(), 3);
        assert!(replies[0].is_ok());
        assert!(matches!(replies[1], Err(ServeError::UnknownModel(_))));
        assert!(replies[2].is_ok());
    }

    #[test]
    fn per_request_threshold_changes_fraction() {
        let engine = engine_with_default_model(1, 4);
        let handle = engine.handle();
        let (ops, feats) = design(3, 80, 6);
        let lo = handle
            .predict(
                &PredictRequest::new("default", Arc::clone(&ops), Arc::clone(&feats))
                    .with_threshold(0.0),
            )
            .unwrap();
        let hi = handle
            .predict(&PredictRequest::new("default", ops, feats).with_threshold(1.1))
            .unwrap();
        assert!((lo.congested_fraction - 1.0).abs() < 1e-12, "threshold 0 flags everything");
        assert_eq!(hi.congested_fraction, 0.0, "threshold >1 flags nothing");
        // the second request hit the cache — threshold is per-request, not
        // part of the key
        assert!(hi.cached);
    }

    #[test]
    fn incompatible_inputs_rejected_at_submission() {
        let engine = engine_with_default_model(1, 4);
        let handle = engine.handle();
        let (ops, feats) = design(4, 80, 6);
        let narrow =
            Arc::new(FeatureSet { gnet: feats.gnet.clone(), gcell: feats.gcell.slice_cols(0, 3) });
        let err = handle.predict(&PredictRequest::new("default", ops, narrow)).unwrap_err();
        assert!(matches!(err, ServeError::Incompatible(_)));
    }

    #[test]
    fn mismatched_gnet_rows_rejected_at_submission() {
        // ops from one design, features from another with equal g-cell
        // count but different g-net count: must be rejected up front, not
        // panic a worker.
        let engine = engine_with_default_model(1, 4);
        let handle = engine.handle();
        let (ops_a, feats_a) = design(6, 80, 6);
        let (_, feats_b) = design(7, 120, 6);
        assert_eq!(feats_a.gcell.rows(), feats_b.gcell.rows(), "same grid, same g-cells");
        assert_ne!(feats_a.gnet.rows(), feats_b.gnet.rows(), "different g-net counts");
        let err = handle
            .predict(&PredictRequest::new("default", Arc::clone(&ops_a), feats_b))
            .unwrap_err();
        assert!(matches!(err, ServeError::Incompatible(_)), "got {err:?}");
        // the pool is still alive and serves the matching pair
        let ok = handle.predict(&PredictRequest::new("default", ops_a, feats_a)).unwrap();
        assert!(ok.prediction.cls_prob.is_finite());
    }

    #[test]
    fn concurrent_clients_all_get_answers() {
        let engine = engine_with_default_model(4, 64);
        let handle = engine.handle();
        let designs: Vec<_> = (0..4).map(|s| design(10 + s, 70, 6)).collect();
        std::thread::scope(|scope| {
            for (ops, feats) in &designs {
                for _ in 0..3 {
                    let h = handle.clone();
                    let ops = Arc::clone(ops);
                    let feats = Arc::clone(feats);
                    scope.spawn(move || {
                        let r = h.predict(&PredictRequest::new("default", ops, feats)).unwrap();
                        assert!(r.prediction.cls_prob.is_finite());
                    });
                }
            }
        });
        let stats = handle.stats();
        assert_eq!(stats.requests, 12);
        // 4 unique designs → exactly 4 forwards; duplicates are served by
        // the cache, in-batch dedup or single-flight waiting
        assert_eq!(stats.computed, 4, "single-flight must deduplicate concurrent work");
        engine.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let engine = engine_with_default_model(1, 4);
        let handle = engine.handle();
        let (ops, feats) = design(5, 80, 6);
        engine.shutdown();
        let err = handle.predict(&PredictRequest::new("default", ops, feats)).unwrap_err();
        assert!(matches!(err, ServeError::ShuttingDown | ServeError::WorkerLost));
    }
}
