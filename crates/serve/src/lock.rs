//! Poison-tolerant locking for the serving layer.
//!
//! `std::sync::Mutex` poisons itself when a thread panics while holding
//! the guard. The serving layer holds its locks around state that falls
//! into two classes:
//!
//! * **Re-derivable / advisory** — the prediction cache (worst case: a
//!   recompute), latency counters, the single-flight map (markers are
//!   cleaned up by their owners; an abandoned marker only costs waiters a
//!   retry), the request queue (a `VecDeque` is structurally coherent
//!   after any single panicking operation) and the registry map (models
//!   are validated *before* insertion). For these, cascading the poison
//!   into every later caller turns one worker panic into a total outage —
//!   exactly the failure mode a multi-tenant engine must not have — so
//!   the helpers here recover the guard and carry on.
//! * **Not re-derivable** — a session's pipeline state mid-update. Those
//!   paths do NOT use these helpers blindly: they track coherence
//!   explicitly (see `session::SessionCore`) and surface
//!   [`crate::ServeError::Poisoned`] instead of guessing.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a mutex guarding re-derivable state, recovering from poison.
pub(crate) fn recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks an `RwLock` guarding re-derivable state.
pub(crate) fn read_recover<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks an `RwLock` guarding re-derivable state.
pub(crate) fn write_recover<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_after_a_panicking_holder() {
        let m = Arc::new(Mutex::new(7u32));
        let poisoner = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(m.lock().is_err(), "the mutex really is poisoned");
        assert_eq!(*recover(&m), 7, "recovery hands the state back");
        *recover(&m) = 9;
        assert_eq!(*recover(&m), 9);
    }

    #[test]
    fn rwlock_recovery() {
        let l = Arc::new(RwLock::new(1u32));
        let poisoner = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.write().unwrap();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*read_recover(&l), 1);
        *write_recover(&l) = 2;
        assert_eq!(*read_recover(&l), 2);
    }
}
