//! Engine-wide observability: the metrics registry, pre-registered
//! handles for the hot-path series, and the flight recorder.
//!
//! One [`EngineObs`] per engine, built when the engine starts and shared
//! (via `Arc`s inside the handles) with every shard, worker and session.
//! The whole catalog is registered **eagerly** so a metrics dump always
//! carries every series — a grep for `lhnn_fallbacks_total` works even
//! on an engine that never fell back. With `EngineConfig::metrics` off,
//! the registry and recorder are built disabled: every record collapses
//! to one relaxed load (counters) or nothing (span timers skip the clock
//! read), and flight events are dropped before formatting.

use std::sync::Arc;

use lhnn_obs::{
    Counter, FlightRecorder, Gauge, Histogram, Registry, PREDICT_STAGES, UPDATE_STAGES,
};

/// How many flight events an engine retains (newest win).
pub(crate) const FLIGHT_CAPACITY: usize = 256;

/// The engine's registry, flight recorder and pre-resolved handles for
/// everything the request hot path records.
#[derive(Debug, Clone)]
pub(crate) struct EngineObs {
    pub(crate) registry: Arc<Registry>,
    pub(crate) flight: Arc<FlightRecorder>,
    /// Requests answered (mirror of the exact `ServeStats` counter).
    pub(crate) requests: Counter,
    /// Requests answered from a cache or by dedup.
    pub(crate) cache_hits: Counter,
    /// Forward passes executed.
    pub(crate) computed: Counter,
    /// Worker wake-ups that processed at least one predict job.
    pub(crate) batches: Counter,
    /// Cross-design block-diagonal forwards (one dispatch, many requests).
    pub(crate) batched_forwards: Counter,
    /// Pipelined session updates applied by workers.
    pub(crate) session_updates: Counter,
    /// End-to-end request latency (submission to reply).
    pub(crate) request_us: Histogram,
    /// Queue-wait span: admission to worker pickup.
    pub(crate) stage_queue: Histogram,
    /// Cache-lookup span (submitter fast path and worker recheck).
    pub(crate) stage_cache: Histogram,
    /// High-water queue depth across all shards.
    pub(crate) queue_depth_high: Gauge,
}

impl EngineObs {
    /// Builds the engine's observability plane. `enabled = false` builds
    /// the disabled registry/recorder pair (the `EngineConfig::metrics`
    /// off-switch).
    pub(crate) fn new(enabled: bool) -> Self {
        let registry = Arc::new(if enabled { Registry::new() } else { Registry::disabled() });
        let flight = Arc::new(if enabled {
            FlightRecorder::new(FLIGHT_CAPACITY)
        } else {
            FlightRecorder::disabled()
        });
        // Pre-register the full stage catalog (sessions register the
        // update stages lazily per design too, but an engine with no
        // sessions should still dump every canonical series).
        for stage in PREDICT_STAGES.iter().chain(UPDATE_STAGES.iter()) {
            registry.stage(stage);
        }
        registry.counter("lhnn_fallbacks_total");
        Self {
            requests: registry.counter("lhnn_requests_total"),
            cache_hits: registry.counter("lhnn_cache_hits_total"),
            computed: registry.counter("lhnn_computed_total"),
            batches: registry.counter("lhnn_batches_total"),
            batched_forwards: registry.counter("lhnn_batched_forwards_total"),
            session_updates: registry.counter("lhnn_session_updates_total"),
            request_us: registry.histogram("lhnn_request_us"),
            stage_queue: registry.stage("queue"),
            stage_cache: registry.stage("cache"),
            queue_depth_high: registry.gauge("lhnn_queue_depth_high"),
            registry,
            flight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_preregistered() {
        let obs = EngineObs::new(true);
        let snap = obs.registry.snapshot();
        // every canonical series is present before any traffic
        for key in [
            "lhnn_requests_total",
            "lhnn_cache_hits_total",
            "lhnn_computed_total",
            "lhnn_batches_total",
            "lhnn_batched_forwards_total",
            "lhnn_session_updates_total",
            "lhnn_fallbacks_total",
        ] {
            assert!(snap.get(key).is_some(), "missing {key}");
        }
        for stage in PREDICT_STAGES.iter().chain(UPDATE_STAGES.iter()) {
            let key = format!("lhnn_stage_us{{stage=\"{stage}\"}}");
            assert!(snap.get(&key).is_some(), "missing {key}");
        }
        assert!(snap.get("lhnn_request_us").is_some());
        assert!(snap.get("lhnn_queue_depth_high").is_some());
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = EngineObs::new(false);
        obs.requests.inc();
        obs.request_us.observe(10);
        assert!(obs.stage_queue.start().is_none());
        obs.flight.record(lhnn_obs::FlightEventKind::HotSwap, "m", "v1 -> v2");
        let snap = obs.registry.snapshot();
        assert_eq!(snap.counter("lhnn_requests_total"), 0);
        assert_eq!(snap.histogram("lhnn_request_us").unwrap().count, 0);
        assert!(obs.flight.snapshot().is_empty());
    }
}
