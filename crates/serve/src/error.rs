//! Error type of the serving layer.

use lhnn::ModelIoError;

/// Errors surfaced by the registry and the inference engine.
#[derive(Debug)]
pub enum ServeError {
    /// No model registered under the requested name.
    UnknownModel(String),
    /// A model failed registry validation, or a request's inputs do not
    /// match the resolved model's architecture.
    Incompatible(String),
    /// Loading a checkpoint failed (I/O, format or architecture mismatch).
    Model(ModelIoError),
    /// A name is already registered (use `replace` to hot-swap).
    AlreadyRegistered(String),
    /// A placement-loop session could not build or rebuild its pipeline
    /// (e.g. every net filtered out at the current placement).
    Session(String),
    /// State behind a lock was lost to a panic and cannot be re-derived
    /// (e.g. a session pipeline wedged mid-update). Unlike re-derivable
    /// engine state — caches, stats, queues — which recovers from mutex
    /// poisoning transparently, this error is permanent for the surface
    /// that returns it: drop and reopen it.
    Poisoned(String),
    /// The engine is shutting down; the request was not accepted.
    ShuttingDown,
    /// The worker serving this request died before replying (a panic in
    /// the forward pass). Other workers keep serving.
    WorkerLost,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(name) => write!(f, "no model registered as `{name}`"),
            ServeError::Incompatible(msg) => write!(f, "incompatible request: {msg}"),
            ServeError::Model(e) => write!(f, "checkpoint rejected: {e}"),
            ServeError::AlreadyRegistered(name) => {
                write!(f, "model `{name}` is already registered")
            }
            ServeError::Session(msg) => write!(f, "session pipeline failed: {msg}"),
            ServeError::Poisoned(msg) => write!(f, "state lost to a panic: {msg}"),
            ServeError::ShuttingDown => write!(f, "inference engine is shutting down"),
            ServeError::WorkerLost => write!(f, "worker died before replying"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelIoError> for ServeError {
    fn from(e: ModelIoError) -> Self {
        ServeError::Model(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ServeError>;
