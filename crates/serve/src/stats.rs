//! Latency and throughput accounting for the engine.
//!
//! Each shard owns one [`StatsInner`]; a [`ServeStats`] snapshot
//! aggregates every shard's counters and merges their latency rings
//! before computing percentiles, and carries a per-shard breakdown so a
//! hot design monopolising one shard is visible at a glance.
//!
//! Per-request latencies (submission to reply, cache hits included) land
//! in a fixed-size ring so the memory footprint is bounded no matter how
//! long the engine runs; percentiles are nearest-rank over the rings'
//! current contents. Counters (requests, cache hits, computed forwards,
//! batches, session updates) are exact over the whole lifetime.
//!
//! Ring entries carry an **engine-wide admission stamp** (a logical clock
//! shared by every shard of one engine). Merging rings for the aggregate
//! percentiles keeps only the most recent [`RING`] entries by stamp, so a
//! shard that went idle an hour ago cannot skew today's p99 with its
//! stale ring — the aggregate describes the last `RING` requests the
//! *engine* served, whatever their shard mix.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const RING: usize = 4096;

/// One ring slot: when the request was admitted (engine-wide logical
/// order) and how long it took.
#[derive(Debug, Clone, Copy)]
struct RingEntry {
    stamp: u64,
    us: u64,
}

/// Mutable accumulator, one per shard, behind that shard's stats mutex.
#[derive(Debug, Clone)]
pub(crate) struct StatsInner {
    requests: u64,
    cache_hits: u64,
    computed: u64,
    batches: u64,
    batched_jobs: u64,
    batched_forwards: u64,
    batched_forward_jobs: u64,
    session_updates: u64,
    total_latency_us: u128,
    /// Engine-wide logical clock, shared by every shard's accumulator.
    clock: Arc<AtomicU64>,
    ring: Vec<RingEntry>,
    next: usize,
}

impl StatsInner {
    /// A standalone accumulator with its own clock (single-shard tests).
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        Self::with_clock(Arc::new(AtomicU64::new(0)))
    }

    /// An accumulator stamping its ring from `clock`. Every shard of one
    /// engine shares the same clock so merged rings have a total recency
    /// order.
    pub(crate) fn with_clock(clock: Arc<AtomicU64>) -> Self {
        Self {
            requests: 0,
            cache_hits: 0,
            computed: 0,
            batches: 0,
            batched_jobs: 0,
            batched_forwards: 0,
            batched_forward_jobs: 0,
            session_updates: 0,
            total_latency_us: 0,
            clock,
            ring: Vec::with_capacity(RING),
            next: 0,
        }
    }

    pub(crate) fn record_request(&mut self, latency: Duration, cache_hit: bool) {
        self.requests += 1;
        if cache_hit {
            self.cache_hits += 1;
        }
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.total_latency_us += u128::from(us);
        let entry = RingEntry { stamp: self.clock.fetch_add(1, Ordering::Relaxed), us };
        if self.ring.len() < RING {
            self.ring.push(entry);
        } else {
            self.ring[self.next] = entry;
        }
        self.next = (self.next + 1) % RING;
    }

    pub(crate) fn record_computed(&mut self) {
        self.computed += 1;
    }

    pub(crate) fn record_batch(&mut self, jobs: usize) {
        self.batches += 1;
        self.batched_jobs += jobs as u64;
    }

    /// One cross-design block-diagonal forward that served `jobs`
    /// requests in a single model dispatch.
    pub(crate) fn record_batched_forward(&mut self, jobs: usize) {
        self.batched_forwards += 1;
        self.batched_forward_jobs += jobs as u64;
    }

    pub(crate) fn record_session_updates(&mut self, applied: usize) {
        self.session_updates += applied as u64;
    }

    /// A copy taken under the shard's stats lock, so aggregation can run
    /// without holding any lock.
    pub(crate) fn clone_for_snapshot(&self) -> StatsInner {
        self.clone()
    }

    /// Single-shard snapshot (kept for unit tests; the engine snapshots
    /// through [`aggregate`]).
    #[cfg(test)]
    pub(crate) fn snapshot(&self, uptime: Duration) -> ServeStats {
        aggregate(std::slice::from_ref(self), &[1], uptime)
    }
}

/// Nearest-rank percentile over an ascending-sorted latency list:
/// `ceil(p/100 * n)`, 1-indexed; 0 when empty.
fn pct_of(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil().max(1.0) as usize;
    sorted_us[rank.min(sorted_us.len()) - 1]
}

/// Builds an aggregate [`ServeStats`] over every shard's accumulator.
///
/// Counters sum; latency percentiles are nearest-rank over the merged
/// rings, **recency-weighted**: when the shards together hold more than
/// one ring's worth of samples, only the newest [`RING`] by engine-wide
/// stamp survive the merge (so a one-shard engine reports exactly what
/// it did before sharding existed, and an idle shard's stale ring cannot
/// bias the aggregate). `per_shard[i]` carries shard `i`'s own counters
/// and its own-ring p50/p99.
pub(crate) fn aggregate(
    shards: &[StatsInner],
    workers_per_shard: &[usize],
    uptime: Duration,
) -> ServeStats {
    let mut merged: Vec<RingEntry> = Vec::with_capacity(shards.iter().map(|s| s.ring.len()).sum());
    for s in shards {
        merged.extend_from_slice(&s.ring);
    }
    if merged.len() > RING {
        merged.sort_unstable_by(|x, y| y.stamp.cmp(&x.stamp));
        merged.truncate(RING);
    }
    let mut lat: Vec<u64> = merged.iter().map(|e| e.us).collect();
    lat.sort_unstable();
    let requests: u64 = shards.iter().map(|s| s.requests).sum();
    let cache_hits: u64 = shards.iter().map(|s| s.cache_hits).sum();
    let computed: u64 = shards.iter().map(|s| s.computed).sum();
    let batches: u64 = shards.iter().map(|s| s.batches).sum();
    let batched_jobs: u64 = shards.iter().map(|s| s.batched_jobs).sum();
    let batched_forwards: u64 = shards.iter().map(|s| s.batched_forwards).sum();
    let batched_forward_jobs: u64 = shards.iter().map(|s| s.batched_forward_jobs).sum();
    let session_updates: u64 = shards.iter().map(|s| s.session_updates).sum();
    let total_latency_us: u128 = shards.iter().map(|s| s.total_latency_us).sum();
    let secs = uptime.as_secs_f64();
    ServeStats {
        requests,
        cache_hits,
        computed,
        cache_hit_rate: if requests == 0 { 0.0 } else { cache_hits as f64 / requests as f64 },
        batches,
        mean_batch_size: if batches == 0 { 0.0 } else { batched_jobs as f64 / batches as f64 },
        batched_forwards,
        batched_forward_jobs,
        session_updates,
        p50_us: pct_of(&lat, 50.0),
        p95_us: pct_of(&lat, 95.0),
        p99_us: pct_of(&lat, 99.0),
        mean_us: if requests == 0 { 0.0 } else { total_latency_us as f64 / requests as f64 },
        throughput_rps: if secs > 0.0 { requests as f64 / secs } else { 0.0 },
        uptime,
        per_shard: shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut own: Vec<u64> = s.ring.iter().map(|e| e.us).collect();
                own.sort_unstable();
                ShardStats {
                    shard: i,
                    workers: workers_per_shard.get(i).copied().unwrap_or(0),
                    requests: s.requests,
                    cache_hits: s.cache_hits,
                    computed: s.computed,
                    session_updates: s.session_updates,
                    p50_us: pct_of(&own, 50.0),
                    p99_us: pct_of(&own, 99.0),
                }
            })
            .collect(),
    }
}

/// One shard's slice of the aggregate counters.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index (stable for the engine's lifetime).
    pub shard: usize,
    /// Worker threads pinned to this shard.
    pub workers: usize,
    /// Requests answered by this shard (cache hits included).
    pub requests: u64,
    /// Requests this shard answered from its prediction cache or by
    /// deduplication.
    pub cache_hits: u64,
    /// Forward passes this shard's workers executed.
    pub computed: u64,
    /// Pipelined session updates this shard's workers applied
    /// (inline drains on caller threads are not counted here).
    pub session_updates: u64,
    /// Median latency over this shard's own ring, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency over this shard's own ring, microseconds
    /// (tail latency under work stealing is a per-shard property).
    pub p99_us: u64,
}

/// An immutable snapshot of engine counters and latency percentiles,
/// aggregated across shards.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Requests answered (cache hits included).
    pub requests: u64,
    /// Requests answered from a prediction cache (fast path or worker
    /// side) or deduplicated against an identical in-batch request.
    pub cache_hits: u64,
    /// Forward passes actually executed.
    pub computed: u64,
    /// `cache_hits / requests` (0 when idle).
    pub cache_hit_rate: f64,
    /// Worker wake-ups that processed at least one job.
    pub batches: u64,
    /// Mean jobs drained per worker wake-up (micro-batching factor).
    pub mean_batch_size: f64,
    /// Cross-design block-diagonal forwards: distinct same-shape stateless
    /// requests coalesced into one model dispatch. Each member request
    /// still counts in `computed` (its forward really ran, fused into the
    /// batch), so `computed - batched_forward_jobs + batched_forwards` is
    /// the number of model dispatches actually issued.
    pub batched_forwards: u64,
    /// Requests served by those block-diagonal forwards.
    pub batched_forward_jobs: u64,
    /// Pipelined session updates applied by engine workers.
    pub session_updates: u64,
    /// Median request latency, microseconds (over the engine's last 4096
    /// requests, whatever their shard mix).
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Mean latency over the whole lifetime, microseconds.
    pub mean_us: f64,
    /// Requests per second since the engine started.
    pub throughput_rps: f64,
    /// Time since the engine started.
    pub uptime: Duration,
    /// Per-shard counter breakdown (length = shard count).
    pub per_shard: Vec<ShardStats>,
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} req ({} computed, {:.1}% cache hits) | p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms | {:.1} req/s | mean batch {:.2}",
            self.requests,
            self.computed,
            self.cache_hit_rate * 100.0,
            self.p50_us as f64 / 1000.0,
            self.p95_us as f64 / 1000.0,
            self.p99_us as f64 / 1000.0,
            self.throughput_rps,
            self.mean_batch_size,
        )?;
        if self.batched_forwards > 0 {
            write!(
                f,
                " | {} cross-design forwards ({} reqs)",
                self.batched_forwards, self.batched_forward_jobs
            )?;
        }
        if self.per_shard.len() > 1 {
            write!(f, " | {} shards:", self.per_shard.len())?;
            for s in &self.per_shard {
                write!(
                    f,
                    " [{}: {} req, {} fwd, {} upd, p99 {:.2} ms]",
                    s.shard,
                    s.requests,
                    s.computed,
                    s.session_updates,
                    s.p99_us as f64 / 1000.0
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = StatsInner::new();
        for us in 1..=100u64 {
            s.record_request(Duration::from_micros(us), false);
        }
        let snap = s.snapshot(Duration::from_secs(1));
        assert_eq!(snap.p50_us, 50);
        assert_eq!(snap.p95_us, 95);
        assert_eq!(snap.p99_us, 99);
        assert_eq!(snap.requests, 100);
        assert!((snap.throughput_rps - 100.0).abs() < 1e-9);
        assert!((snap.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn hit_rate_counts() {
        let mut s = StatsInner::new();
        s.record_request(Duration::from_micros(5), true);
        s.record_request(Duration::from_micros(5), false);
        s.record_computed();
        let snap = s.snapshot(Duration::from_millis(10));
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.computed, 1);
        assert!((snap.cache_hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let snap = StatsInner::new().snapshot(Duration::ZERO);
        assert_eq!(snap.p50_us, 0);
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.cache_hit_rate, 0.0);
        assert_eq!(snap.throughput_rps, 0.0);
    }

    #[test]
    fn ring_is_bounded() {
        let mut s = StatsInner::new();
        for i in 0..(RING as u64 + 100) {
            s.record_request(Duration::from_micros(i), false);
        }
        assert_eq!(s.ring.len(), RING);
        // the oldest 100 samples were overwritten: min is now >= 100 or a
        // wrapped recent value, so p50 reflects recent traffic
        let snap = s.snapshot(Duration::from_secs(1));
        assert!(snap.p50_us > 0);
    }

    #[test]
    fn batch_factor() {
        let mut s = StatsInner::new();
        s.record_batch(1);
        s.record_batch(7);
        let snap = s.snapshot(Duration::from_secs(1));
        assert!((snap.mean_batch_size - 4.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_merges_shards() {
        let mut a = StatsInner::new();
        let mut b = StatsInner::new();
        // shard a: fast requests; shard b: slow ones
        for _ in 0..50 {
            a.record_request(Duration::from_micros(10), true);
        }
        for _ in 0..50 {
            b.record_request(Duration::from_micros(1000), false);
            b.record_computed();
        }
        b.record_session_updates(3);
        let shards = [a, b];
        let snap = aggregate(&shards, &[2, 2], Duration::from_secs(1));
        assert_eq!(snap.requests, 100);
        assert_eq!(snap.computed, 50);
        assert_eq!(snap.cache_hits, 50);
        assert_eq!(snap.session_updates, 3);
        // merged percentiles straddle the two shards' latency bands
        assert_eq!(snap.p50_us, 10);
        assert_eq!(snap.p95_us, 1000);
        assert_eq!(snap.per_shard.len(), 2);
        assert_eq!(snap.per_shard[0].requests, 50);
        assert_eq!(snap.per_shard[0].workers, 2);
        assert_eq!(snap.per_shard[1].computed, 50);
        assert_eq!(snap.per_shard[1].session_updates, 3);
        // per-shard tails come from each shard's own ring
        assert_eq!(snap.per_shard[0].p99_us, 10);
        assert_eq!(snap.per_shard[1].p99_us, 1000);
        assert!((snap.cache_hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn idle_shard_does_not_skew_aggregate_percentiles() {
        // One engine-wide clock, as the engine wires it.
        let clock = Arc::new(AtomicU64::new(0));
        let mut idle = StatsInner::with_clock(Arc::clone(&clock));
        let mut hot = StatsInner::with_clock(Arc::clone(&clock));
        // The idle shard served 100 slow requests long ago...
        for _ in 0..100 {
            idle.record_request(Duration::from_micros(10_000), false);
        }
        // ...then the hot shard served a full ring of fast traffic.
        for _ in 0..RING {
            hot.record_request(Duration::from_micros(100), false);
        }
        let shards = [idle, hot];
        let snap = aggregate(&shards, &[1, 1], Duration::from_secs(1));
        // Recency-weighted merge: only the newest RING samples count, so
        // the stale 10 ms requests fall out of the aggregate tail (a
        // plain concatenation would report p99 = 10_000 here).
        assert_eq!(snap.p99_us, 100);
        assert_eq!(snap.p50_us, 100);
        // The idle shard's own history stays visible in the breakdown.
        assert_eq!(snap.per_shard[0].p99_us, 10_000);
        assert_eq!(snap.per_shard[1].p99_us, 100);
    }

    #[test]
    fn display_includes_shard_breakdown_when_sharded() {
        let mut a = StatsInner::new();
        a.record_request(Duration::from_micros(10), false);
        let one = aggregate(std::slice::from_ref(&a), &[1], Duration::from_secs(1));
        assert!(!format!("{one}").contains("shards:"));
        let shards = [a, StatsInner::new()];
        let two = aggregate(&shards, &[1, 1], Duration::from_secs(1));
        let text = format!("{two}");
        assert!(text.contains("2 shards:"), "got {text}");
        assert!(text.contains("[0: 1 req"), "got {text}");
        assert!(text.contains("p99"), "got {text}");
    }
}
