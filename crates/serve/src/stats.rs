//! Latency and throughput accounting for the engine.
//!
//! Per-request latencies (submission to reply, cache hits included) land
//! in a fixed-size ring so the memory footprint is bounded no matter how
//! long the engine runs; percentiles are nearest-rank over the ring's
//! current contents. Counters (requests, cache hits, computed forwards,
//! batches) are exact over the whole lifetime.

use std::time::Duration;

const RING: usize = 4096;

/// Mutable accumulator, lives behind the engine's stats mutex.
#[derive(Debug)]
pub(crate) struct StatsInner {
    requests: u64,
    cache_hits: u64,
    computed: u64,
    batches: u64,
    batched_jobs: u64,
    total_latency_us: u128,
    ring: Vec<u64>,
    next: usize,
}

impl StatsInner {
    pub(crate) fn new() -> Self {
        Self {
            requests: 0,
            cache_hits: 0,
            computed: 0,
            batches: 0,
            batched_jobs: 0,
            total_latency_us: 0,
            ring: Vec::with_capacity(RING),
            next: 0,
        }
    }

    pub(crate) fn record_request(&mut self, latency: Duration, cache_hit: bool) {
        self.requests += 1;
        if cache_hit {
            self.cache_hits += 1;
        }
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.total_latency_us += u128::from(us);
        if self.ring.len() < RING {
            self.ring.push(us);
        } else {
            self.ring[self.next] = us;
        }
        self.next = (self.next + 1) % RING;
    }

    pub(crate) fn record_computed(&mut self) {
        self.computed += 1;
    }

    pub(crate) fn record_batch(&mut self, jobs: usize) {
        self.batches += 1;
        self.batched_jobs += jobs as u64;
    }

    pub(crate) fn snapshot(&self, uptime: Duration) -> ServeStats {
        let mut sorted = self.ring.clone();
        sorted.sort_unstable();
        let pct = |p: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            // nearest-rank: ceil(p/100 * n), 1-indexed
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            sorted[rank.min(sorted.len()) - 1]
        };
        let secs = uptime.as_secs_f64();
        ServeStats {
            requests: self.requests,
            cache_hits: self.cache_hits,
            computed: self.computed,
            cache_hit_rate: if self.requests == 0 {
                0.0
            } else {
                self.cache_hits as f64 / self.requests as f64
            },
            batches: self.batches,
            mean_batch_size: if self.batches == 0 {
                0.0
            } else {
                self.batched_jobs as f64 / self.batches as f64
            },
            p50_us: pct(50.0),
            p95_us: pct(95.0),
            p99_us: pct(99.0),
            mean_us: if self.requests == 0 {
                0.0
            } else {
                self.total_latency_us as f64 / self.requests as f64
            },
            throughput_rps: if secs > 0.0 { self.requests as f64 / secs } else { 0.0 },
            uptime,
        }
    }
}

/// An immutable snapshot of engine counters and latency percentiles.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Requests answered (cache hits included).
    pub requests: u64,
    /// Requests answered from the prediction cache (fast path or worker
    /// side) or deduplicated against an identical in-batch request.
    pub cache_hits: u64,
    /// Forward passes actually executed.
    pub computed: u64,
    /// `cache_hits / requests` (0 when idle).
    pub cache_hit_rate: f64,
    /// Worker wake-ups that processed at least one job.
    pub batches: u64,
    /// Mean jobs drained per worker wake-up (micro-batching factor).
    pub mean_batch_size: f64,
    /// Median request latency, microseconds (over the last 4096 requests).
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Mean latency over the whole lifetime, microseconds.
    pub mean_us: f64,
    /// Requests per second since the engine started.
    pub throughput_rps: f64,
    /// Time since the engine started.
    pub uptime: Duration,
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} req ({} computed, {:.1}% cache hits) | p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms | {:.1} req/s | mean batch {:.2}",
            self.requests,
            self.computed,
            self.cache_hit_rate * 100.0,
            self.p50_us as f64 / 1000.0,
            self.p95_us as f64 / 1000.0,
            self.p99_us as f64 / 1000.0,
            self.throughput_rps,
            self.mean_batch_size,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = StatsInner::new();
        for us in 1..=100u64 {
            s.record_request(Duration::from_micros(us), false);
        }
        let snap = s.snapshot(Duration::from_secs(1));
        assert_eq!(snap.p50_us, 50);
        assert_eq!(snap.p95_us, 95);
        assert_eq!(snap.p99_us, 99);
        assert_eq!(snap.requests, 100);
        assert!((snap.throughput_rps - 100.0).abs() < 1e-9);
        assert!((snap.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn hit_rate_counts() {
        let mut s = StatsInner::new();
        s.record_request(Duration::from_micros(5), true);
        s.record_request(Duration::from_micros(5), false);
        s.record_computed();
        let snap = s.snapshot(Duration::from_millis(10));
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.computed, 1);
        assert!((snap.cache_hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let snap = StatsInner::new().snapshot(Duration::ZERO);
        assert_eq!(snap.p50_us, 0);
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.cache_hit_rate, 0.0);
        assert_eq!(snap.throughput_rps, 0.0);
    }

    #[test]
    fn ring_is_bounded() {
        let mut s = StatsInner::new();
        for i in 0..(RING as u64 + 100) {
            s.record_request(Duration::from_micros(i), false);
        }
        assert_eq!(s.ring.len(), RING);
        // the oldest 100 samples were overwritten: min is now >= 100 or a
        // wrapped recent value, so p50 reflects recent traffic
        let snap = s.snapshot(Duration::from_secs(1));
        assert!(snap.p50_us > 0);
    }

    #[test]
    fn batch_factor() {
        let mut s = StatsInner::new();
        s.record_batch(1);
        s.record_batch(7);
        let snap = s.snapshot(Duration::from_secs(1));
        assert!((snap.mean_batch_size - 4.0).abs() < 1e-12);
    }
}
