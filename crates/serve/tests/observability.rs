//! Observability must be a pure read-out: metrics on vs off changes no
//! prediction bit at any worker count, snapshotting under load never
//! deadlocks or tears, the exposition carries the canonical series, and
//! the flight recorder captures the engine's notable events.

use std::sync::Arc;

use lh_graph::FeatureSet;
use lhnn::{GraphOps, Lhnn, LhnnConfig, Prediction};
use lhnn_serve::obs::{parse_prometheus, FlightEventKind};
use lhnn_serve::{EngineConfig, ModelRegistry, PredictRequest, ServeEngine, SessionConfig};
use proptest::prelude::*;
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_netlist::{CellId, Circuit, GcellGrid, Placement, PlacementDelta, Point};
use vlsi_place::GlobalPlacer;

fn registry() -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", Lhnn::new(LhnnConfig::default(), 0)).expect("register");
    registry
}

fn serving_design(seed: u64, n_cells: usize, grid: u32) -> (Arc<GraphOps>, Arc<FeatureSet>) {
    let (ops, features) = lhnn_data::serving_inputs(seed, n_cells, grid).expect("build design");
    (Arc::new(ops), Arc::new(features))
}

fn session_design(seed: u64) -> (Arc<Circuit>, Placement, GcellGrid) {
    let cfg = SynthConfig { seed, n_cells: 90, grid_nx: 6, grid_ny: 6, ..SynthConfig::default() };
    let synth = generate(&cfg).expect("synth");
    let grid = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &grid).expect("place");
    (Arc::new(synth.circuit), placed.placement, grid)
}

/// Drives one placement loop (update + predict per step) and returns the
/// predictions, so runs against differently-configured engines can be
/// compared bit for bit.
fn drive_loop(engine: &ServeEngine, seed: u64, steps: u32) -> Vec<Arc<Prediction>> {
    let (circuit, placement, grid) = session_design(seed);
    let die = circuit.die;
    let mut session = engine
        .handle()
        .open_session(SessionConfig::new("m"), circuit, placement, grid.clone())
        .expect("open session");
    let mut predictions = vec![session.predict().expect("cold predict").prediction];
    for step in 0..steps {
        let id = CellId(step);
        let p = session.with_pipeline(|pl| pl.placement().position(id));
        let np = die.clamp(Point::new(p.x + grid.gcell_width() * 1.25, p.y));
        session.update(&PlacementDelta::single(id, np)).expect("update");
        predictions.push(session.predict().expect("predict").prediction);
    }
    predictions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The instrumentation off-switch is bitwise invisible: a placement
    /// loop served with full metrics equals the same loop served with
    /// metrics off, at every worker/shard count.
    #[test]
    fn metrics_do_not_change_predictions(
        seed in 0u64..500,
        workers in 1usize..5,
        shards in 1usize..3,
        steps in 1u32..4,
    ) {
        let base = EngineConfig { workers, shards, ..EngineConfig::default() };
        let on = ServeEngine::new(registry(), EngineConfig { metrics: true, ..base.clone() });
        let off = ServeEngine::new(registry(), EngineConfig { metrics: false, ..base });
        prop_assert!(on.handle().metrics_enabled());
        prop_assert!(!off.handle().metrics_enabled());
        let with_metrics = drive_loop(&on, seed, steps);
        let without = drive_loop(&off, seed, steps);
        prop_assert_eq!(with_metrics.len(), without.len());
        for (a, b) in with_metrics.iter().zip(&without) {
            // tolerance 0.0 = bitwise equality
            prop_assert!(a.cls_prob.approx_eq(&b.cls_prob, 0.0));
            prop_assert!(a.reg.approx_eq(&b.reg, 0.0));
        }
        // the instrumented run actually recorded: requests flowed and the
        // per-stage splice/forward spans saw the session's forwards
        let snap = on.handle().metrics_snapshot();
        prop_assert!(snap.counter("lhnn_requests_total") >= u64::from(steps) + 1);
        prop_assert!(snap.counter("lhnn_computed_total") >= 1);
        let off_snap = off.handle().metrics_snapshot();
        prop_assert_eq!(off_snap.counter("lhnn_requests_total"), 0);
        on.shutdown();
        off.shutdown();
    }
}

/// Snapshotting and rendering while the engine is under concurrent load
/// must never deadlock and never tear: after quiescing, the mirrored
/// counters agree with the exact `ServeStats` accounting.
#[test]
fn snapshot_under_load_never_deadlocks_or_tears() {
    let engine = ServeEngine::new(
        registry(),
        EngineConfig { workers: 4, shards: 2, cache_capacity: 64, ..EngineConfig::default() },
    );
    let handle = engine.handle();
    let designs: Vec<_> = (0..4).map(|s| serving_design(70 + s, 70, 6)).collect();
    std::thread::scope(|scope| {
        for (ops, features) in &designs {
            let h = handle.clone();
            let ops = Arc::clone(ops);
            let features = Arc::clone(features);
            scope.spawn(move || {
                for _ in 0..5 {
                    let req = PredictRequest::new("m", Arc::clone(&ops), Arc::clone(&features));
                    h.predict(&req).expect("predict under load");
                }
            });
        }
        // concurrent observers: snapshot, render, parse, drain flight
        for _ in 0..2 {
            let h = handle.clone();
            scope.spawn(move || {
                for _ in 0..10 {
                    let snap = h.metrics_snapshot();
                    let text = snap.to_prometheus();
                    assert!(!parse_prometheus(&text).is_empty());
                    assert!(!snap.to_json().is_empty());
                    let _ = h.flight_events();
                }
            });
        }
    });
    // Quiesced: every replied request was mirrored exactly once, into the
    // counter and into the latency histogram.
    let exact = handle.stats();
    let snap = handle.metrics_snapshot();
    assert_eq!(snap.counter("lhnn_requests_total"), exact.requests);
    assert_eq!(snap.counter("lhnn_computed_total"), exact.computed);
    assert_eq!(snap.counter("lhnn_cache_hits_total"), exact.cache_hits);
    assert_eq!(snap.histogram("lhnn_request_us").expect("latency histogram").count, exact.requests);
    engine.shutdown();
}

/// The rendered exposition carries the canonical series the CI smoke
/// greps for, and round-trips through the parser.
#[test]
fn exposition_contains_canonical_series() {
    let engine =
        ServeEngine::new(registry(), EngineConfig { workers: 2, ..EngineConfig::default() });
    let handle = engine.handle();
    // one session loop so the update/forward stages all record
    let _ = drive_loop(&engine, 3, 2);
    let snap = handle.metrics_snapshot();
    let text = snap.to_prometheus();
    for needle in ["lhnn_requests_total", "lhnn_stage_us{stage=\"splice\"}", "lhnn_fallbacks_total"]
    {
        assert!(text.contains(needle), "exposition must carry {needle}:\n{text}");
    }
    let parsed = parse_prometheus(&text);
    let requests = parsed
        .iter()
        .find(|s| s.name == "lhnn_requests_total" && s.labels.is_empty())
        .expect("requests series");
    assert_eq!(requests.value as u64, snap.counter("lhnn_requests_total"));
    engine.shutdown();
}

/// Hot-swapping a model on a live engine leaves a flight event behind.
#[test]
fn flight_recorder_captures_hot_swaps() {
    let engine = ServeEngine::new(registry(), EngineConfig::default());
    let handle = engine.handle();
    handle.replace_model("m", Lhnn::new(LhnnConfig::default(), 9)).expect("swap");
    let events = handle.flight_events();
    let swap =
        events.iter().find(|e| e.kind == FlightEventKind::HotSwap).expect("hot-swap flight event");
    assert_eq!(swap.scope, "m");
    assert!(swap.detail.contains("->"), "detail names both versions: {}", swap.detail);
    engine.shutdown();
}

/// A wedging session panic lands in the flight recorder with the design
/// as scope — and a metrics-off engine records no event for the same
/// crash.
#[test]
fn flight_recorder_captures_session_wedges() {
    for metrics in [true, false] {
        let engine =
            ServeEngine::new(registry(), EngineConfig { metrics, ..EngineConfig::default() });
        let handle = engine.handle();
        let (circuit, placement, grid) = session_design(21);
        let n_cells = circuit.num_cells() as u32;
        let mut session = handle
            .open_session(SessionConfig::new("m").with_design("wedge-me"), circuit, placement, grid)
            .expect("open session");
        // a delta referencing a cell outside the circuit panics mid-apply
        let bogus = PlacementDelta::single(CellId(n_cells + 7), Point::new(1.0, 1.0));
        assert!(session.update(&bogus).is_err());
        let wedges: Vec<_> = handle
            .flight_events()
            .into_iter()
            .filter(|e| e.kind == FlightEventKind::Wedged)
            .collect();
        if metrics {
            assert_eq!(wedges.len(), 1, "exactly one wedge event");
            assert_eq!(wedges[0].scope, "wedge-me");
        } else {
            assert!(wedges.is_empty(), "metrics off must drop flight events");
        }
        // the merged per-session view reports either way
        let view = session.observability();
        assert_eq!(view.design, "wedge-me");
        assert_eq!(view.shard, session.shard());
        engine.shutdown();
    }
}
