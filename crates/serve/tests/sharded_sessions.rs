//! Properties of the sharded, pipelined session layer.
//!
//! 1. **Interleaving parity**: any interleaving of
//!    `open_session`/`submit_update`/`predict` across D designs and S
//!    shards, driven by D concurrent client threads, yields predictions
//!    and final pipeline states bitwise identical to a serial replay on a
//!    single-shard, single-worker engine.
//! 2. **Cache isolation**: a hot design hammering its shard cannot evict
//!    another design's cached prediction on a different shard.

use std::sync::Arc;

use lhnn::{CongestionModel, HybridNet, HybridNetConfig, Lhnn, LhnnConfig, Prediction};
use lhnn_serve::{EngineConfig, ModelRegistry, ServeEngine, SessionConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_netlist::{CellId, Circuit, GcellGrid, Placement, PlacementDelta, Point};
use vlsi_place::GlobalPlacer;

struct Design {
    name: String,
    circuit: Arc<Circuit>,
    placement: Placement,
    grid: GcellGrid,
    /// The delta sequence this design's client replays, with a flag for
    /// "predict after this delta" (the final delta always predicts).
    script: Vec<(PlacementDelta, bool)>,
}

/// Builds a design plus a deterministic delta script from one seed.
fn scripted_design(tag: usize, seed: u64, n_deltas: usize) -> Design {
    let cfg = SynthConfig {
        name: format!("design-{tag}-{seed}"),
        seed,
        n_cells: 80,
        grid_nx: 6,
        grid_ny: 6,
        ..SynthConfig::default()
    };
    let synth = generate(&cfg).expect("synth");
    let grid = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &grid).expect("place");
    let circuit = Arc::new(synth.circuit);
    let die = circuit.die;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut reference = placed.placement.clone();
    let mut script = Vec::new();
    for i in 0..n_deltas {
        // move a couple of cells by ~1.25 g-cells in a seed-dependent
        // direction; the reference placement tracks the moves so scripted
        // positions stay in-die and meaningful
        let mut delta = PlacementDelta::new();
        for _ in 0..rng.gen_range(1usize..3) {
            let id = CellId(rng.gen_range(0u32..circuit.num_cells() as u32));
            let p = reference.position(id);
            let dx = (rng.gen_range(0i32..5) - 2) as f32 * 0.8 * grid.gcell_width();
            let dy = (rng.gen_range(0i32..5) - 2) as f32 * 0.8 * grid.gcell_height();
            let np = die.clamp(Point::new(p.x + dx, p.y + dy));
            reference.set_position(id, np);
            delta.push(id, np);
        }
        let predict_here = i + 1 == n_deltas || rng.gen_range(0u32..3) == 0;
        script.push((delta, predict_here));
    }
    Design { name: cfg.name, circuit, placement: placed.placement, grid, script }
}

/// A registry serving one model of the chosen architecture (0 = LHNN,
/// 1 = HybridNet) under the name `"m"`.
fn registry(model_kind: usize) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    let model: Box<dyn CongestionModel> = match model_kind % 2 {
        0 => Box::new(Lhnn::new(LhnnConfig::default(), 0)),
        _ => Box::new(HybridNet::new(HybridNetConfig::default(), 0)),
    };
    registry.register_boxed("m", model).expect("register");
    registry
}

/// Drives one design's script through a session; `pipelined` uses
/// `submit_update` tickets (waited lazily by the next predict), the
/// serial mode blocks on every update. Returns every prediction plus the
/// final `(ops, features)` fingerprints.
fn drive(
    engine: &ServeEngine,
    design: &Design,
    pipelined: bool,
) -> (Vec<Arc<Prediction>>, (u64, u64)) {
    let handle = engine.handle();
    let mut session = handle
        .open_session(
            SessionConfig::new("m").with_design(&design.name),
            Arc::clone(&design.circuit),
            design.placement.clone(),
            design.grid.clone(),
        )
        .expect("open session");
    let mut predictions = Vec::new();
    for (delta, predict_here) in &design.script {
        if pipelined {
            // fire-and-forget: predict (or a later update's drain) applies it
            drop(session.submit_update(delta));
        } else {
            session.update(delta).expect("update");
        }
        if *predict_here {
            predictions.push(session.predict().expect("predict").prediction);
        }
    }
    (predictions, session.fingerprints().expect("fingerprints"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn interleaved_sessions_match_serial_replay(
        base_seed in 0u64..500,
        model_kind in 0usize..2,
        n_designs in 2usize..5,
        shards in 1usize..4,
        workers in 1usize..5,
        n_deltas in 2usize..5,
    ) {
        let designs: Vec<Design> = (0..n_designs)
            .map(|d| scripted_design(d, base_seed + d as u64 * 101, n_deltas))
            .collect();

        // Concurrent, pipelined, sharded: one client thread per design.
        let engine = ServeEngine::new(
            registry(model_kind),
            EngineConfig { workers, shards, ..EngineConfig::default() },
        );
        let concurrent: Vec<(Vec<Arc<Prediction>>, (u64, u64))> = std::thread::scope(|scope| {
            let joins: Vec<_> = designs
                .iter()
                .map(|design| scope.spawn(|| drive(&engine, design, true)))
                .collect();
            joins.into_iter().map(|j| j.join().expect("client thread")).collect()
        });
        engine.shutdown();

        // Serial replay: single shard, single worker, blocking updates,
        // one design at a time.
        let serial_engine = ServeEngine::new(
            registry(model_kind),
            EngineConfig { workers: 1, shards: 1, ..EngineConfig::default() },
        );
        for (design, (got_preds, got_fps)) in designs.iter().zip(&concurrent) {
            let (want_preds, want_fps) = drive(&serial_engine, design, false);
            prop_assert_eq!(got_fps, &want_fps, "final state diverged for {}", design.name);
            prop_assert_eq!(
                got_preds.len(),
                want_preds.len(),
                "prediction count diverged for {}",
                design.name
            );
            for (step, (got, want)) in got_preds.iter().zip(&want_preds).enumerate() {
                prop_assert!(
                    got.cls_prob.approx_eq(&want.cls_prob, 0.0)
                        && got.reg.approx_eq(&want.reg, 0.0),
                    "prediction {step} of {} not bitwise equal to serial replay",
                    design.name
                );
            }
        }
        serial_engine.shutdown();
    }
}

/// Finds a design name that maps to a different shard than `other` maps to.
fn name_on_other_shard(handle: &lhnn_serve::ServeHandle, other: &str) -> String {
    let taken = handle.shard_of_design(other);
    (0..)
        .map(|i| format!("cold-design-{i}"))
        .find(|name| handle.shard_of_design(name) != taken)
        .expect("some name lands on another shard")
}

#[test]
fn hot_design_cannot_evict_another_shards_cache() {
    let hot = scripted_design(0, 7, 0);
    let engine = ServeEngine::new(
        registry(0),
        // tiny per-shard cache so the hot design's states overflow it
        EngineConfig { workers: 2, shards: 2, cache_capacity: 2, ..EngineConfig::default() },
    );
    let handle = engine.handle();
    let cold_name = name_on_other_shard(&handle, &hot.name);
    let cold = Design { name: cold_name.clone(), ..scripted_design(1, 8, 0) };
    let hot_shard = handle.shard_of_design(&hot.name);
    let cold_shard = handle.shard_of_design(&cold.name);
    assert_ne!(hot_shard, cold_shard);

    // cold design: one prediction, cached on its own shard
    let mut cold_session = handle
        .open_session(
            SessionConfig::new("m").with_design(&cold.name),
            Arc::clone(&cold.circuit),
            cold.placement.clone(),
            cold.grid.clone(),
        )
        .expect("open cold session");
    assert!(!cold_session.predict().expect("cold predict").cached);
    assert_eq!(handle.shard_cache_len(cold_shard), 1);

    // hot design: churn through many distinct placements — far more than
    // the per-shard cache holds — all on the hot shard
    let mut hot_session = handle
        .open_session(
            SessionConfig::new("m").with_design(&hot.name),
            Arc::clone(&hot.circuit),
            hot.placement.clone(),
            hot.grid.clone(),
        )
        .expect("open hot session");
    let die = hot.circuit.die;
    let mut computed = 0;
    for i in 0..8u32 {
        let id = CellId(i);
        let p = hot_session.with_pipeline(|pl| pl.placement().position(id));
        let np = die.clamp(Point::new(
            p.x + 1.25 * hot.grid.gcell_width(),
            p.y + 1.25 * hot.grid.gcell_height(),
        ));
        hot_session.update(&PlacementDelta::single(id, np)).expect("hot update");
        if !hot_session.predict().expect("hot predict").cached {
            computed += 1;
        }
    }
    assert!(computed > 2, "the hot design must overflow its own shard's cache ({computed})");
    assert!(handle.shard_cache_len(hot_shard) <= 2, "hot shard respects its own capacity");

    // the cold design's entry was untouchable: still a cache hit
    let warm = cold_session.predict().expect("cold re-predict");
    assert!(warm.cached, "hot design A must not evict design B's cache entry on another shard");
    engine.shutdown();
}
