//! Property: serving is a transparent wrapper — for random designs, any
//! worker count, any cache state and EITHER architecture,
//! [`ServeHandle::predict`] returns predictions bitwise-identical to a
//! direct [`CongestionModel::predict`] call.

use std::sync::Arc;

use lh_graph::FeatureSet;
use lhnn::{CongestionModel, GraphOps, HybridNet, HybridNetConfig, Lhnn, LhnnConfig};
use lhnn_serve::{EngineConfig, ModelRegistry, PredictRequest, ServeEngine};
use proptest::prelude::*;

fn design(seed: u64, n_cells: usize, grid: u32) -> (Arc<GraphOps>, Arc<FeatureSet>) {
    let (ops, features) = lhnn_data::serving_inputs(seed, n_cells, grid).expect("build design");
    (Arc::new(ops), Arc::new(features))
}

/// One model of each registered architecture, by proptest-drawn index.
fn build_model(kind: usize, seed: u64) -> Box<dyn CongestionModel> {
    match kind % 2 {
        0 => Box::new(Lhnn::new(LhnnConfig::default(), seed)),
        _ => Box::new(HybridNet::new(HybridNetConfig::default(), seed)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cold cache, warm cache and every worker AND shard count agree
    /// bitwise with the direct forward — for BOTH architectures.
    #[test]
    fn served_prediction_is_bitwise_identical(
        design_seed in 0u64..1000,
        model_seed in 0u64..1000,
        model_kind in 0usize..2,
        n_cells in 60usize..140,
        grid in 6u32..10,
        workers in 1usize..5,
        shards in 1usize..4,
        cache_capacity in 0usize..8,
    ) {
        let (ops, features) = design(design_seed, n_cells, grid);
        let model = build_model(model_kind, model_seed);
        let direct = model.predict(&ops, &features);

        let registry = Arc::new(ModelRegistry::new());
        registry.register_boxed("m", model).expect("register");
        let engine = ServeEngine::new(
            registry,
            EngineConfig { workers, shards, cache_capacity, ..Default::default() },
        );
        let handle = engine.handle();
        let req = PredictRequest::new("m", ops, features);

        // cold (computed) and repeated (cached when capacity > 0) replies
        let cold = handle.predict(&req).expect("cold predict");
        let warm = handle.predict(&req).expect("warm predict");
        prop_assert!(!cold.cached);
        prop_assert_eq!(warm.cached, cache_capacity > 0);
        for reply in [&cold, &warm] {
            // tolerance 0.0 = bitwise equality
            prop_assert!(direct.cls_prob.approx_eq(&reply.prediction.cls_prob, 0.0));
            prop_assert!(direct.reg.approx_eq(&reply.prediction.reg, 0.0));
        }

        // a concurrent burst through the pool agrees too
        let replies = handle.predict_batch(&vec![req; 4]);
        for reply in replies {
            let reply = reply.expect("batch predict");
            prop_assert!(direct.cls_prob.approx_eq(&reply.prediction.cls_prob, 0.0));
            prop_assert!(direct.reg.approx_eq(&reply.prediction.reg, 0.0));
        }
        engine.shutdown();
    }
}

/// Bitwise equality, not `approx_eq`: `-0.0 == 0.0` must not mask a
/// changed float sequence.
fn bitwise_eq(a: &neurograd::Matrix, b: &neurograd::Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The cross-design batching primitive: a block-diagonal stack of K
    /// designs' operators with row-stacked features forwards to outputs
    /// whose per-design row slices are bitwise identical to K individual
    /// forwards. Dense layers are row-local and each block's sparse rows
    /// see exactly that block's entries (shifted columns, same order), so
    /// this holds even for designs of different sizes — the engine only
    /// fuses same-shape groups, a scheduling choice, not a correctness
    /// requirement.
    #[test]
    fn block_diagonal_batched_forward_matches_individual_forwards(
        model_seed in 0u64..1000,
        seeds in proptest::collection::vec(0u64..1000, 2..5),
        n_cells in 60usize..120,
        grid in 6u32..9,
    ) {
        let model = Lhnn::new(LhnnConfig::default(), model_seed);
        let designs: Vec<_> = seeds
            .iter()
            .enumerate()
            // vary n_cells per block so block sizes genuinely differ
            .map(|(i, &s)| design(s, n_cells + 7 * i, grid))
            .collect();

        let individual: Vec<_> =
            designs.iter().map(|(ops, feats)| model.predict(ops, feats)).collect();

        let ops_refs: Vec<&GraphOps> = designs.iter().map(|(o, _)| o.as_ref()).collect();
        let block_ops = GraphOps::block_diag(&ops_refs);
        let vstack = |pick: &dyn Fn(&FeatureSet) -> &neurograd::Matrix| {
            let cols = pick(&designs[0].1).cols();
            let mut data = Vec::new();
            for (_, feats) in &designs {
                data.extend_from_slice(pick(feats).as_slice());
            }
            let rows = data.len() / cols;
            neurograd::Matrix::from_vec(rows, cols, data).expect("vstack")
        };
        let batched_feats =
            FeatureSet { gcell: vstack(&|f| &f.gcell), gnet: vstack(&|f| &f.gnet) };
        let batched = model.predict(&block_ops, &batched_feats);

        let mut offset = 0;
        for ((_, feats), single) in designs.iter().zip(&individual) {
            let n = feats.gcell.rows();
            let ch = single.cls_prob.cols();
            let slice = |m: &neurograd::Matrix| {
                neurograd::Matrix::from_vec(
                    n,
                    ch,
                    m.as_slice()[offset * ch..(offset + n) * ch].to_vec(),
                )
                .expect("row slice")
            };
            prop_assert!(bitwise_eq(&slice(&batched.cls_prob), &single.cls_prob));
            prop_assert!(bitwise_eq(&slice(&batched.reg), &single.reg));
            offset += n;
        }
    }
}

/// End-to-end: distinct same-shape stateless requests landing in one
/// worker micro-batch fuse into a block-diagonal forward, every reply is
/// bitwise identical to a direct forward, and per-design accounting
/// (`computed`, cache entries) is preserved alongside the new
/// `batched_forwards` counters.
#[test]
fn engine_fuses_same_shape_requests_and_replies_bitwise() {
    // same config + seed builds bitwise-identical weights, so the local
    // copy is a faithful reference for the registered model
    let model = Lhnn::new(LhnnConfig::default(), 7);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("m", Lhnn::new(LhnnConfig::default(), 7)).expect("register");
    let engine = ServeEngine::new(
        registry,
        EngineConfig { workers: 1, shards: 1, cache_capacity: 64, ..Default::default() },
    );
    let handle = engine.handle();

    // A large design occupies the single worker while the small
    // same-shape requests pile up in the queue behind it, so they drain
    // as one micro-batch.
    let (big_ops, big_feats) = design(99, 1500, 16);
    let blocker = {
        let handle = handle.clone();
        let req = PredictRequest::new("m", big_ops, big_feats);
        std::thread::spawn(move || handle.predict(&req).expect("blocker"))
    };
    std::thread::sleep(std::time::Duration::from_millis(30));

    // Same ops, perturbed features: identical shapes, distinct
    // fingerprints — different "designs" as far as keys are concerned.
    let (ops, base) = design(5, 90, 6);
    let variants: Vec<Arc<FeatureSet>> = (0..3)
        .map(|k| {
            let mut g = base.gcell.as_slice().to_vec();
            g[0] += 0.25 * (k + 1) as f32;
            let gcell =
                neurograd::Matrix::from_vec(base.gcell.rows(), base.gcell.cols(), g).unwrap();
            Arc::new(FeatureSet { gcell, gnet: base.gnet.clone() })
        })
        .collect();
    let clients: Vec<_> = variants
        .iter()
        .map(|feats| {
            let handle = handle.clone();
            let req = PredictRequest::new("m", Arc::clone(&ops), Arc::clone(feats));
            std::thread::spawn(move || handle.predict(&req).expect("variant"))
        })
        .collect();

    blocker.join().expect("blocker thread");
    let replies: Vec<_> = clients.into_iter().map(|c| c.join().expect("client")).collect();
    for (feats, reply) in variants.iter().zip(&replies) {
        let direct = model.predict(&ops, feats);
        assert!(bitwise_eq(&direct.cls_prob, &reply.prediction.cls_prob));
        assert!(bitwise_eq(&direct.reg, &reply.prediction.reg));
    }

    let stats = handle.stats();
    assert_eq!(stats.computed, 4, "blocker + every fused member counts as computed");
    assert!(stats.batched_forwards >= 1, "the piled-up batch fused: {stats}");
    assert!(stats.batched_forward_jobs >= 2, "fused dispatch covered multiple designs");
    engine.shutdown();
}
